"""GraphWord2Vec: distributed Word2Vec on a graph-analytics substrate.

Reproduction of "Distributed Training of Embeddings using Graph Analytics"
(Gill et al.): Skip-Gram training formulated as a distributed graph problem
on a D-Galois/Gluon-style BSP framework, synchronized with projection-based
*model combiners* instead of gradient averaging.

Quickstart::

    from repro import (
        SyntheticCorpusSpec, generate_corpus, Word2VecParams,
        GraphWord2Vec, evaluate_analogies,
    )

    corpus, questions = generate_corpus(SyntheticCorpusSpec(num_tokens=100_000))
    trainer = GraphWord2Vec(corpus, Word2VecParams(epochs=8), num_hosts=8)
    result = trainer.train()
    print(evaluate_analogies(result.model, corpus.vocabulary, questions))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.cluster import FaultConfig, FaultReport, FaultSchedule
from repro.core import (
    AvgCombiner,
    ModelCombiner,
    SumCombiner,
    combine_pair,
    combine_sequence,
    get_combiner,
)
from repro.eval import evaluate_analogies, most_similar
from repro.serve import (
    EmbeddingStore,
    ExactIndex,
    LSHIndex,
    LoadConfig,
    QueryEngine,
    ServeReport,
    run_load,
)
from repro.text import (
    AnalogyQuestionSet,
    Corpus,
    SyntheticCorpusSpec,
    UnigramTable,
    Vocabulary,
    generate_corpus,
)
from repro.w2v import (
    GraphWord2Vec,
    SharedMemoryWord2Vec,
    Word2VecModel,
    Word2VecParams,
)

__version__ = "0.1.0"

__all__ = [
    "AvgCombiner",
    "ModelCombiner",
    "SumCombiner",
    "combine_pair",
    "combine_sequence",
    "get_combiner",
    "evaluate_analogies",
    "most_similar",
    "AnalogyQuestionSet",
    "Corpus",
    "SyntheticCorpusSpec",
    "UnigramTable",
    "Vocabulary",
    "generate_corpus",
    "GraphWord2Vec",
    "SharedMemoryWord2Vec",
    "Word2VecModel",
    "Word2VecParams",
    "FaultConfig",
    "FaultSchedule",
    "FaultReport",
    "EmbeddingStore",
    "ExactIndex",
    "LSHIndex",
    "QueryEngine",
    "LoadConfig",
    "ServeReport",
    "run_load",
    "__version__",
]
