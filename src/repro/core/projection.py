"""Reference (scalar-path) projection math from paper §3.

These operate on single 1-D gradient vectors and exist as the readable,
obviously-correct specification; the vectorized many-node implementation in
:mod:`repro.core.combiners` is property-tested against them.

Given gradients g1, g2 with angle θ:

- projection of g2 onto g1:      (g1·g2 / ‖g1‖²) · g1
- orthogonal component g2':       g2 − proj_g1(g2), with
  ‖g2'‖² = ‖g2‖²·(1 − cos²θ)  (Eq. 4), hence ‖g2'‖ ≤ ‖g2‖,
- combined step:                  g = g1 + g2'.

Extension to k gradients is by induction: fold each next gradient into the
running combination via the same projection.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "project_onto",
    "orthogonal_component",
    "cosine",
    "combine_pair",
    "combine_sequence",
]

# Below this squared norm a gradient is treated as zero: projecting onto a
# (numerically) zero vector is ill-defined and the correct combination with a
# zero gradient is the other gradient unchanged.
_EPS_SQ = 1e-30


def project_onto(v: np.ndarray, onto: np.ndarray) -> np.ndarray:
    """Orthogonal projection of ``v`` onto the line spanned by ``onto``."""
    v = np.asarray(v, dtype=np.float64)
    onto = np.asarray(onto, dtype=np.float64)
    denom = float(onto @ onto)
    if denom <= _EPS_SQ:
        return np.zeros_like(v)
    return (float(onto @ v) / denom) * onto


def orthogonal_component(v: np.ndarray, against: np.ndarray) -> np.ndarray:
    """Component of ``v`` orthogonal to ``against`` (the paper's g2')."""
    return np.asarray(v, dtype=np.float64) - project_onto(v, against)


def cosine(a: np.ndarray, b: np.ndarray) -> float:
    """cos θ between two vectors; 0.0 if either is (numerically) zero."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    na, nb = float(a @ a), float(b @ b)
    if na <= _EPS_SQ or nb <= _EPS_SQ:
        return 0.0
    return float(a @ b) / np.sqrt(na * nb)


def combine_pair(g1: np.ndarray, g2: np.ndarray) -> np.ndarray:
    """Model-combine two gradients: g1 + (g2 projected off g1)."""
    g1 = np.asarray(g1, dtype=np.float64)
    return g1 + orthogonal_component(g2, g1)


def combine_sequence(gradients: Sequence[np.ndarray] | Iterable[np.ndarray]) -> np.ndarray:
    """Inductive model combination of an ordered gradient sequence.

    Empty input is invalid (there is no dimension to produce); a single
    gradient combines to itself.
    """
    it = iter(gradients)
    try:
        combined = np.asarray(next(it), dtype=np.float64).copy()
    except StopIteration:
        raise ValueError("combine_sequence requires at least one gradient") from None
    for g in it:
        combined += orthogonal_component(g, combined)
    return combined
