"""The paper's primary contribution: gradient/model combiners (§3).

When several hosts train replicas of the same model between synchronization
points, their accumulated updates ("gradients" at sync granularity) must be
reduced to one update.  Summing diverges when the gradients are aligned;
averaging degenerates toward batch gradient descent as hosts grow.  The
*model combiner* projects each additional gradient onto the orthogonal
complement of what has already been combined, which provably (first order)
decreases every contributing loss without exceeding any single gradient's
step size — so the sequential learning rate remains safe at any host count.
"""

from repro.core.combiners import (
    AvgCombiner,
    GradientCombiner,
    KeepFirstCombiner,
    ModelCombiner,
    SumCombiner,
    get_combiner,
)
from repro.core.projection import (
    combine_pair,
    combine_sequence,
    cosine,
    orthogonal_component,
    project_onto,
)
from repro.core.validity import direction_validity, ValidityReport

__all__ = [
    "GradientCombiner",
    "SumCombiner",
    "AvgCombiner",
    "ModelCombiner",
    "KeepFirstCombiner",
    "get_combiner",
    "project_onto",
    "orthogonal_component",
    "cosine",
    "combine_pair",
    "combine_sequence",
    "direction_validity",
    "ValidityReport",
]
