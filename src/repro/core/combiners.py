"""Vectorized gradient combiners for Gluon's reduce phase.

During synchronization the master proxy of each node receives one delta per
contributing host and must reduce them to a single update.  Contributions
arrive host by host as ``(rows, deltas)`` pairs — ``rows`` indexes a compact
array of the nodes touched this round, ``deltas`` holds one ``dim``-vector
per row.  A combiner is therefore a small streaming state machine:

    state = combiner.create(num_rows, dim)
    state.accumulate(rows_host0, deltas_host0)
    state.accumulate(rows_host1, deltas_host1)
    combined = state.result()          # (num_rows, dim)

Rows never repeat *within* one contribution (a host reports each node once
per round); they do repeat across contributions — that is exactly the
conflict the combiner resolves.

Combiners provided (paper §3 and §5.3):

- :class:`SumCombiner` — Δ = Σ_h Δ_h (ALLREDUCE-sum; diverges for aligned
  gradients once the effective step exceeds the stable learning rate),
- :class:`AvgCombiner` — Δ = (1/k)Σ Δ_h over the k contributors
  (mini-batch averaging; converges but increasingly batch-like with hosts),
- :class:`ModelCombiner` — the paper's combiner: fold each contribution in
  via projection onto the orthogonal complement of the running combination,
- :class:`KeepFirstCombiner` — baseline that drops all but the first
  contribution (what MC degenerates to when gradients are parallel).

The inductive fold is order-dependent; hosts are folded in ascending host id
everywhere in this library (an ablation benchmark measures the effect).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

__all__ = [
    "GradientCombiner",
    "CombineState",
    "SumCombiner",
    "AvgCombiner",
    "ModelCombiner",
    "KeepFirstCombiner",
    "get_combiner",
]

# Squared-norm threshold below which a running combination is treated as
# zero for projection purposes (see repro.core.projection._EPS_SQ).
_EPS_SQ = 1e-30


class CombineState(ABC):
    """Accumulates per-host contributions for one sync round."""

    def __init__(self, num_rows: int, dim: int):
        if num_rows < 0 or dim <= 0:
            raise ValueError(f"invalid state shape ({num_rows}, {dim})")
        self.num_rows = int(num_rows)
        self.dim = int(dim)

    def _validate(self, rows: np.ndarray, deltas: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        rows = np.asarray(rows, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.float64)
        if rows.ndim != 1:
            raise ValueError(f"rows must be 1-D, got shape {rows.shape}")
        if deltas.shape != (len(rows), self.dim):
            raise ValueError(
                f"deltas shape {deltas.shape} != ({len(rows)}, {self.dim})"
            )
        if rows.size:
            if rows.min() < 0 or rows.max() >= self.num_rows:
                raise IndexError("row index out of range")
            if len(np.unique(rows)) != len(rows):
                raise ValueError("duplicate rows within a single contribution")
        return rows, deltas

    @abstractmethod
    def accumulate(self, rows: np.ndarray, deltas: np.ndarray) -> None:
        """Fold in one host's contribution."""

    @abstractmethod
    def result(self) -> np.ndarray:
        """Combined update, shape ``(num_rows, dim)`` float64."""


class GradientCombiner(ABC):
    """Factory for :class:`CombineState`; stateless and reusable."""

    name: str = "abstract"

    @abstractmethod
    def create(self, num_rows: int, dim: int) -> CombineState:
        ...

    def combine_dense(self, gradients: Sequence[np.ndarray]) -> np.ndarray:
        """Convenience: combine a list of ``(dim,)`` or ``(n, dim)`` gradients.

        Every gradient contributes to every row (fully dense contributions).
        """
        grads = [np.atleast_2d(np.asarray(g, dtype=np.float64)) for g in gradients]
        if not grads:
            raise ValueError("need at least one gradient")
        n, dim = grads[0].shape
        state = self.create(n, dim)
        rows = np.arange(n, dtype=np.int64)
        for g in grads:
            if g.shape != (n, dim):
                raise ValueError(f"inconsistent gradient shape {g.shape}")
            state.accumulate(rows, g)
        out = state.result()
        return out[0] if n == 1 and np.asarray(gradients[0]).ndim == 1 else out


# --------------------------------------------------------------------------
# SUM
# --------------------------------------------------------------------------
class _SumState(CombineState):
    def __init__(self, num_rows: int, dim: int):
        super().__init__(num_rows, dim)
        self._acc = np.zeros((num_rows, dim), dtype=np.float64)

    def accumulate(self, rows: np.ndarray, deltas: np.ndarray) -> None:
        rows, deltas = self._validate(rows, deltas)
        self._acc[rows] += deltas

    def result(self) -> np.ndarray:
        return self._acc


class SumCombiner(GradientCombiner):
    name = "sum"

    def create(self, num_rows: int, dim: int) -> CombineState:
        return _SumState(num_rows, dim)


# --------------------------------------------------------------------------
# AVG
# --------------------------------------------------------------------------
class _AvgState(CombineState):
    def __init__(self, num_rows: int, dim: int):
        super().__init__(num_rows, dim)
        self._acc = np.zeros((num_rows, dim), dtype=np.float64)
        self._counts = np.zeros(num_rows, dtype=np.int64)

    def accumulate(self, rows: np.ndarray, deltas: np.ndarray) -> None:
        rows, deltas = self._validate(rows, deltas)
        self._acc[rows] += deltas
        self._counts[rows] += 1

    def result(self) -> np.ndarray:
        divisor = np.maximum(self._counts, 1).astype(np.float64)
        return self._acc / divisor[:, None]


class AvgCombiner(GradientCombiner):
    name = "avg"

    def create(self, num_rows: int, dim: int) -> CombineState:
        return _AvgState(num_rows, dim)


# --------------------------------------------------------------------------
# Model combiner (paper §3)
# --------------------------------------------------------------------------
class _ModelCombinerState(CombineState):
    def __init__(self, num_rows: int, dim: int):
        super().__init__(num_rows, dim)
        self._combined = np.zeros((num_rows, dim), dtype=np.float64)
        self._seen = np.zeros(num_rows, dtype=bool)

    def accumulate(self, rows: np.ndarray, deltas: np.ndarray) -> None:
        rows, deltas = self._validate(rows, deltas)
        if rows.size == 0:
            return
        first = ~self._seen[rows]
        if first.any():
            fr = rows[first]
            self._combined[fr] = deltas[first]
            self._seen[fr] = True
        later = ~first
        if later.any():
            lr = rows[later]
            d = deltas[later]
            g = self._combined[lr]
            denom = np.einsum("ij,ij->i", g, g)
            dot = np.einsum("ij,ij->i", g, d)
            # Projection coefficient; zero where the running combination is
            # (numerically) zero so the contribution passes through unchanged.
            coeff = np.where(denom > _EPS_SQ, dot / np.where(denom > _EPS_SQ, denom, 1.0), 0.0)
            self._combined[lr] = g + (d - coeff[:, None] * g)

    def result(self) -> np.ndarray:
        return self._combined


class ModelCombiner(GradientCombiner):
    """Projection-based combination honoring SGD's inter-step dependence."""

    name = "mc"

    def create(self, num_rows: int, dim: int) -> CombineState:
        return _ModelCombinerState(num_rows, dim)


# --------------------------------------------------------------------------
# Keep-first (diagnostic baseline)
# --------------------------------------------------------------------------
class _KeepFirstState(CombineState):
    def __init__(self, num_rows: int, dim: int):
        super().__init__(num_rows, dim)
        self._combined = np.zeros((num_rows, dim), dtype=np.float64)
        self._seen = np.zeros(num_rows, dtype=bool)

    def accumulate(self, rows: np.ndarray, deltas: np.ndarray) -> None:
        rows, deltas = self._validate(rows, deltas)
        first = ~self._seen[rows]
        fr = rows[first]
        self._combined[fr] = deltas[first]
        self._seen[fr] = True

    def result(self) -> np.ndarray:
        return self._combined


class KeepFirstCombiner(GradientCombiner):
    name = "keep_first"

    def create(self, num_rows: int, dim: int) -> CombineState:
        return _KeepFirstState(num_rows, dim)


_REGISTRY: dict[str, GradientCombiner] = {
    c.name: c for c in (SumCombiner(), AvgCombiner(), ModelCombiner(), KeepFirstCombiner())
}


def get_combiner(name: str) -> GradientCombiner:
    """Look up a combiner by its registry name (``sum``/``avg``/``mc``/``keep_first``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown combiner {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
