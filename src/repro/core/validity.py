"""Validity of update directions (paper §3).

The paper calls an update direction ``h`` *valid* w.r.t. a loss ``L`` at
model ``w`` if (1) ``L(w − αh) ≤ L(w)`` and (2) ``‖h‖ ≤ ‖∂L/∂w‖``.  Working
at first order with the gradient ``g = ∂L/∂w`` (the same Taylor argument the
paper uses), (1) becomes ``h·g ≥ 0``.

:func:`direction_validity` evaluates both conditions for a candidate
direction against each contributing gradient; the test-suite asserts them for
the model combiner's projected components and the library exposes them so
users can instrument their own reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

__all__ = ["ValidityReport", "direction_validity"]

# Relative slack for floating-point comparisons of the analytic identities.
_RTOL = 1e-9


@dataclass(frozen=True)
class ValidityReport:
    """First-order validity of one direction against one gradient."""

    first_order_decrease: float  # h · g  (≥ 0 required)
    direction_norm: float  # ‖h‖
    gradient_norm: float  # ‖g‖

    @property
    def decreases_loss(self) -> bool:
        return self.first_order_decrease >= -_RTOL * max(
            1.0, self.direction_norm * self.gradient_norm
        )

    @property
    def step_bounded(self) -> bool:
        return self.direction_norm <= self.gradient_norm * (1.0 + _RTOL) + 1e-12

    @property
    def valid(self) -> bool:
        return self.decreases_loss and self.step_bounded


def direction_validity(direction: np.ndarray, gradient: np.ndarray) -> ValidityReport:
    """Evaluate paper-§3 validity of ``direction`` w.r.t. loss gradient ``gradient``."""
    h = np.asarray(direction, dtype=np.float64)
    g = np.asarray(gradient, dtype=np.float64)
    if h.shape != g.shape:
        raise ValueError(f"shape mismatch: {h.shape} vs {g.shape}")
    return ValidityReport(
        first_order_decrease=float(h @ g),
        direction_norm=float(np.linalg.norm(h)),
        gradient_norm=float(np.linalg.norm(g)),
    )
