"""Whole-package call graph and lightweight type environment.

This is the indexing layer under :mod:`repro.analysis.dataflow`.  It
parses every file in the analyzed tree once and answers three questions
for the rule passes:

1. *What does this name refer to?* — imports, module-level defs, nested
   defs, and class methods are indexed into a single namespace of
   qualified names (``repro.w2v.steps.RoundWork.apply``).
2. *What does this call resolve to?* — ``Name`` calls resolve through
   enclosing scopes and imports; ``self.m(...)`` through the receiver's
   class and bases; ``obj.m(...)`` through a best-effort type
   environment built from annotations, constructor calls, and a few
   container idioms (dict/list literals and comprehensions).
3. *What type does this expression have?* — a deliberately small
   nominal lattice: ``("cls", qname)``, ``("dictof", T)``,
   ``("listof", T)``.  Types the program does not define (``np.ndarray``,
   or classes outside the analyzed file set) stay nominal: the dotted
   annotation text is kept so rules can still match on the class *name*
   (``FieldSync``, ``BitVector``) without resolving the class body.

Everything here is approximate by design.  The analyzer trades soundness
at the edges (unresolvable calls simply produce no edge) for zero false
noise from the dynamic features it cannot see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "dotted_name",
    "type_basename",
]

# TypeRef: ("cls", qname) | ("dictof", TypeRef) | ("listof", TypeRef)
TypeRef = tuple

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)

_MAX_TYPE_DEPTH = 6


def dotted_name(node: ast.expr) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains to a dotted string, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def type_basename(tref: Optional[TypeRef]) -> Optional[str]:
    """Last dotted segment of a nominal class type (``FieldSync``), else None."""
    if tref and tref[0] == "cls":
        return tref[1].rsplit(".", 1)[-1]
    return None


@dataclass
class ModuleInfo:
    name: str
    path: str
    source: str
    tree: ast.Module
    is_package: bool = False
    imports: dict = field(default_factory=dict)  # alias -> dotted target
    constants: dict = field(default_factory=dict)  # NAME -> int|str|float literal
    functions: dict = field(default_factory=dict)  # top-level name -> FunctionInfo
    classes: dict = field(default_factory=dict)  # top-level name -> ClassInfo

    @property
    def package(self) -> str:
        if self.is_package:
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""


@dataclass
class ClassInfo:
    qname: str
    name: str
    module: ModuleInfo
    node: ast.ClassDef
    bases: tuple = ()  # raw dotted base names
    methods: dict = field(default_factory=dict)  # name -> FunctionInfo
    attr_types: dict = field(default_factory=dict)  # attr -> TypeRef


@dataclass
class FunctionInfo:
    qname: str
    name: str
    module: ModuleInfo
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]
    cls: Optional[ClassInfo] = None
    parent: Optional["FunctionInfo"] = None
    children: dict = field(default_factory=dict)  # nested def name -> FunctionInfo
    declared_effects: Optional[dict] = None  # {"reads": (...), "writes": (...)}

    @property
    def arg_names(self) -> list:
        a = self.node.args
        return [x.arg for x in (*a.posonlyargs, *a.args, *a.kwonlyargs)]

    @property
    def params(self) -> list:
        """Argument names excluding a leading self/cls on methods."""
        names = self.arg_names
        if self.cls is not None and names and names[0] in ("self", "cls"):
            return names[1:]
        return names

    @property
    def is_method(self) -> bool:
        return self.cls is not None


def _module_name_for(path: Path) -> str:
    parts = list(path.resolve().with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    else:
        keep = [parts[-1]]
        parent = path.resolve().parent
        while (parent / "__init__.py").exists():
            keep.insert(0, parent.name)
            parent = parent.parent
        parts = keep
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def _parse_declared_effects(node) -> Optional[dict]:
    """Read a ``@declare_effects(reads=..., writes=...)`` decorator off the AST."""
    for deco in getattr(node, "decorator_list", []):
        if not isinstance(deco, ast.Call):
            continue
        name = dotted_name(deco.func) or ""
        if name.rsplit(".", 1)[-1] != "declare_effects":
            continue
        spec = {"reads": (), "writes": ()}
        for kw in deco.keywords:
            if kw.arg not in spec or not isinstance(kw.value, (ast.Tuple, ast.List)):
                continue
            items = []
            for elt in kw.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    items.append(elt.value)
            spec[kw.arg] = tuple(items)
        return spec
    return None


class Program:
    """Index of every module in the analyzed file set."""

    def __init__(self) -> None:
        self.modules: dict = {}  # module name -> ModuleInfo
        self.modules_by_path: dict = {}  # str path -> ModuleInfo
        self.functions: dict = {}  # qname -> FunctionInfo
        self.classes: dict = {}  # qname -> ClassInfo
        self._declared_by_name: dict = {}  # bare name -> [FunctionInfo with effects]
        self._env_cache: dict = {}
        self._attr_types_done: set = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, files) -> "Program":
        """Parse and index ``files`` (iterable of paths to .py files)."""
        program = cls()
        for path in files:
            path = Path(path)
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                raise
            mod = ModuleInfo(
                name=_module_name_for(path),
                path=str(path),
                source=source,
                tree=tree,
                is_package=path.name == "__init__.py",
            )
            program.modules[mod.name] = mod
            program.modules_by_path[mod.path] = mod
            program._index_module(mod)
        # Attribute types need the full function index, so resolve lazily
        # via class_attr_types(); nothing else to do up front.
        return program

    def _index_module(self, mod: ModuleInfo) -> None:
        for node in mod.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    mod.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    pkg_parts = mod.package.split(".") if mod.package else []
                    if node.level > 1:
                        pkg_parts = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                    base = ".".join(pkg_parts + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    mod.imports[alias.asname or alias.name] = f"{base}.{alias.name}" if base else alias.name
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    value = node.value
                    if isinstance(value, ast.UnaryOp) and isinstance(value.op, ast.USub):
                        value = value.operand
                        if isinstance(value, ast.Constant) and isinstance(value.value, (int, float)):
                            mod.constants[target.id] = -value.value
                        continue
                    if isinstance(value, ast.Constant) and isinstance(value.value, (int, float, str)):
                        mod.constants[target.id] = value.value

        self._index_body(mod, mod.tree.body, prefix=mod.name, cls=None, parent=None)

    def _index_body(self, mod, body, prefix, cls, parent) -> None:
        for node in body:
            if isinstance(node, _FUNC_NODES):
                self._index_function(mod, node, prefix, cls, parent)
            elif isinstance(node, ast.ClassDef) and parent is None and cls is None:
                cinfo = ClassInfo(
                    qname=f"{prefix}.{node.name}",
                    name=node.name,
                    module=mod,
                    node=node,
                    bases=tuple(filter(None, (dotted_name(b) for b in node.bases))),
                )
                mod.classes[node.name] = cinfo
                self.classes[cinfo.qname] = cinfo
                self._index_body(mod, node.body, prefix=cinfo.qname, cls=cinfo, parent=None)

    def _index_function(self, mod, node, prefix, cls, parent) -> FunctionInfo:
        finfo = FunctionInfo(
            qname=f"{prefix}.{node.name}",
            name=node.name,
            module=mod,
            node=node,
            cls=cls,
            parent=parent,
            declared_effects=_parse_declared_effects(node),
        )
        self.functions[finfo.qname] = finfo
        if parent is not None:
            parent.children[node.name] = finfo
        elif cls is not None:
            cls.methods[node.name] = finfo
        else:
            mod.functions[node.name] = finfo
        if finfo.declared_effects is not None:
            self._declared_by_name.setdefault(node.name, []).append(finfo)
        # Index nested defs (operators passed to do_all live here).
        for child in _shallow_defs(node.body):
            self._index_function(mod, child, prefix=finfo.qname, cls=cls, parent=finfo)
        return finfo

    # ------------------------------------------------------------------
    # Name and call resolution
    # ------------------------------------------------------------------
    def expand_alias(self, mod: ModuleInfo, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        target = mod.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def resolve_name(self, finfo: FunctionInfo, name: str):
        """Resolve a bare name used inside ``finfo``.

        Returns a FunctionInfo, ClassInfo, ModuleInfo, or a dotted string
        for imports pointing outside the analyzed set, or None.
        """
        scope = finfo
        while scope is not None:
            if name in scope.children:
                return scope.children[name]
            scope = scope.parent
        if finfo.cls is not None and name in finfo.cls.methods:
            # Bare method-name calls do not happen in Python; skip.
            pass
        mod = finfo.module
        if name in mod.functions:
            return mod.functions[name]
        if name in mod.classes:
            return mod.classes[name]
        if name in mod.imports:
            dotted = mod.imports[name]
            return (
                self.functions.get(dotted)
                or self.classes.get(dotted)
                or self.modules.get(dotted)
                or dotted
            )
        return None

    def class_for_basename(self, dotted: str) -> Optional[ClassInfo]:
        return self.classes.get(dotted)

    def lookup_method(self, cinfo: ClassInfo, name: str, _seen=None) -> Optional[FunctionInfo]:
        if _seen is None:
            _seen = set()
        if cinfo.qname in _seen:
            return None
        _seen.add(cinfo.qname)
        if name in cinfo.methods:
            return cinfo.methods[name]
        for base in cinfo.bases:
            target = self.expand_alias(cinfo.module, base)
            base_cls = self.classes.get(target)
            if base_cls is None:
                # Base defined in the same module under its bare name.
                base_cls = cinfo.module.classes.get(base)
            if base_cls is not None:
                found = self.lookup_method(base_cls, name, _seen)
                if found is not None:
                    return found
        return None

    def resolve_call(self, finfo: FunctionInfo, call: ast.Call):
        """Resolve a call to target FunctionInfos.

        Returns ``(callees, receiver_expr)`` where ``receiver_expr`` is
        the ``obj`` of an ``obj.m(...)`` call (None for plain calls), and
        ``callees`` is a (possibly empty) list of FunctionInfo.
        """
        func = call.func
        if isinstance(func, ast.Name):
            target = self.resolve_name(finfo, func.id)
            if isinstance(target, FunctionInfo):
                return [target], None
            if isinstance(target, ClassInfo):
                return [], None  # constructor: fresh object, no tracked effects
            return [], None
        if not isinstance(func, ast.Attribute):
            return [], None
        recv = func.value
        dotted = dotted_name(func)
        if dotted is not None:
            expanded = self.expand_alias(finfo.module, dotted)
            hit = self.functions.get(expanded)
            if hit is not None and hit.cls is None:
                return [hit], None
        # self.m(...) / cls.m(...)
        if isinstance(recv, ast.Name) and recv.id in ("self", "cls") and finfo.cls is not None:
            method = self.lookup_method(finfo.cls, func.attr)
            if method is not None:
                return [method], recv
            return [], recv
        # typed receiver
        tref = self.expr_type(recv, finfo)
        base = type_basename(tref)
        if base is not None:
            cinfo = self.classes.get(tref[1])
            if cinfo is None:
                for cand in self.classes.values():
                    if cand.name == base:
                        cinfo = cand
                        break
            if cinfo is not None:
                method = self.lookup_method(cinfo, func.attr)
                if method is not None:
                    return [method], recv
        # last resort: a unique effect-declaring method of that name
        declared = self._declared_by_name.get(func.attr, [])
        if len(declared) == 1:
            return list(declared), recv
        return [], recv

    def bind_args(self, callee: FunctionInfo, call: ast.Call, *, skip_self: bool):
        """Map callee parameter names to actual-argument AST expressions."""
        names = callee.arg_names
        if skip_self and names and names[0] in ("self", "cls"):
            names = names[1:]
        bound = {}
        for i, actual in enumerate(call.args):
            if isinstance(actual, ast.Starred):
                break
            if i < len(names):
                bound[names[i]] = actual
        for kw in call.keywords:
            if kw.arg is not None:
                bound[kw.arg] = kw.value
        return bound

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def resolve_annotation(self, ann, mod: ModuleInfo, depth: int = 0) -> Optional[TypeRef]:
        if ann is None or depth > _MAX_TYPE_DEPTH:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            # X | None -> X
            for side in (ann.left, ann.right):
                if not (isinstance(side, ast.Constant) and side.value is None):
                    return self.resolve_annotation(side, mod, depth + 1)
            return None
        if isinstance(ann, ast.Subscript):
            base = dotted_name(ann.value)
            base_last = (base or "").rsplit(".", 1)[-1]
            inner = ann.slice
            if base_last in ("Optional",):
                return self.resolve_annotation(inner, mod, depth + 1)
            if base_last in ("list", "List", "Sequence", "tuple", "Tuple"):
                elt = inner.elts[0] if isinstance(inner, ast.Tuple) and inner.elts else inner
                sub = self.resolve_annotation(elt, mod, depth + 1)
                return ("listof", sub) if sub else None
            if base_last in ("dict", "Dict", "Mapping", "MutableMapping"):
                if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
                    sub = self.resolve_annotation(inner.elts[1], mod, depth + 1)
                    return ("dictof", sub) if sub else None
            return None
        dotted = dotted_name(ann)
        if dotted is None:
            return None
        expanded = self.expand_alias(mod, dotted)
        if expanded in self.classes:
            return ("cls", expanded)
        last = expanded.rsplit(".", 1)[-1]
        if last and last[0].isupper():
            return ("cls", expanded)  # nominal: class outside the analyzed set
        return None

    def local_env(self, finfo: FunctionInfo) -> dict:
        """name -> TypeRef for locals of ``finfo`` (approximate, memoized)."""
        cached = self._env_cache.get(finfo.qname)
        if cached is not None:
            return cached
        self._env_cache[finfo.qname] = env = {}
        args = finfo.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            tref = self.resolve_annotation(arg.annotation, finfo.module)
            if tref is not None:
                env[arg.arg] = tref
        # Two passes so later assignments can see earlier inferred types.
        for _ in range(2):
            for stmt in _shallow_stmts(finfo.node):
                self._infer_stmt(stmt, finfo, env)
        return env

    def _infer_stmt(self, stmt, finfo, env) -> None:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            tref = self.resolve_annotation(stmt.annotation, finfo.module)
            if tref is not None:
                env[stmt.target.id] = tref
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                tref = self.expr_type(stmt.value, finfo, env)
                if tref is not None:
                    env[target.id] = tref
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._infer_loop_target(stmt.target, stmt.iter, finfo, env)

    def _infer_loop_target(self, target, iter_expr, finfo, env) -> None:
        iter_t = self.expr_type(iter_expr, finfo, env)
        if isinstance(target, ast.Name):
            if iter_t is not None and iter_t[0] == "listof":
                env[target.id] = iter_t[1]
        elif isinstance(target, ast.Tuple) and isinstance(iter_expr, (ast.Tuple, ast.List)):
            # for (a, b, c) in ((x1, y1, z1), (x2, y2, z2)):
            rows = [r for r in iter_expr.elts if isinstance(r, ast.Tuple)]
            if rows and all(len(r.elts) == len(target.elts) for r in rows):
                for pos, name_node in enumerate(target.elts):
                    if not isinstance(name_node, ast.Name):
                        continue
                    col_types = {self.expr_type(r.elts[pos], finfo, env) for r in rows}
                    col_types.discard(None)
                    if len(col_types) == 1:
                        env[name_node.id] = col_types.pop()

    def expr_type(self, expr, finfo: FunctionInfo, env: Optional[dict] = None, depth: int = 0):
        if expr is None or depth > _MAX_TYPE_DEPTH:
            return None
        if env is None:
            env = self.local_env(finfo)
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return env[expr.id]
            scope = finfo.parent
            while scope is not None:
                outer = self._env_cache.get(scope.qname)
                if outer is None and depth == 0:
                    outer = self.local_env(scope)
                if outer and expr.id in outer:
                    return outer[expr.id]
                scope = scope.parent
            return None
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self" and finfo.cls is not None:
                return self.class_attr_types(finfo.cls).get(expr.attr)
            base_t = self.expr_type(expr.value, finfo, env, depth + 1)
            if base_t is not None and base_t[0] == "cls":
                cinfo = self.classes.get(base_t[1])
                if cinfo is not None:
                    return self.class_attr_types(cinfo).get(expr.attr)
            return None
        if isinstance(expr, ast.Subscript):
            base_t = self.expr_type(expr.value, finfo, env, depth + 1)
            if base_t is not None and base_t[0] in ("dictof", "listof"):
                return base_t[1]
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                target = self.resolve_name(finfo, func.id)
                if isinstance(target, ClassInfo):
                    return ("cls", target.qname)
                if isinstance(target, FunctionInfo):
                    return self.resolve_annotation(target.node.returns, target.module)
                if isinstance(target, str):
                    last = target.rsplit(".", 1)[-1]
                    if last and last[0].isupper():
                        return ("cls", target)
                return None
            dotted = dotted_name(func)
            if dotted is not None:
                expanded = self.expand_alias(finfo.module, dotted)
                if expanded in self.classes:
                    return ("cls", expanded)
                hit = self.functions.get(expanded)
                if hit is not None:
                    return self.resolve_annotation(hit.node.returns, hit.module)
                last = expanded.rsplit(".", 1)[-1]
                if last and last[0].isupper():
                    return ("cls", expanded)
            callees, _recv = self.resolve_call(finfo, expr)
            if len(callees) == 1 and not isinstance(callees[0].node, ast.Lambda):
                target = callees[0]
                return self.resolve_annotation(target.node.returns, target.module)
            return None
        if isinstance(expr, ast.Dict):
            vals = {self.expr_type(v, finfo, env, depth + 1) for v in expr.values if v is not None}
            vals.discard(None)
            if len(vals) == 1:
                return ("dictof", vals.pop())
            return None
        if isinstance(expr, ast.List):
            vals = {self.expr_type(v, finfo, env, depth + 1) for v in expr.elts}
            vals.discard(None)
            if len(vals) == 1:
                return ("listof", vals.pop())
            return None
        if isinstance(expr, ast.ListComp):
            sub = self.expr_type(expr.elt, finfo, env, depth + 1)
            return ("listof", sub) if sub else None
        if isinstance(expr, ast.DictComp):
            sub = self.expr_type(expr.value, finfo, env, depth + 1)
            return ("dictof", sub) if sub else None
        if isinstance(expr, ast.IfExp):
            return self.expr_type(expr.body, finfo, env, depth + 1)
        return None

    def class_attr_types(self, cinfo: ClassInfo) -> dict:
        """self.X types, from dataclass fields and __init__ assignments."""
        if cinfo.qname in self._attr_types_done:
            return cinfo.attr_types
        self._attr_types_done.add(cinfo.qname)
        for stmt in cinfo.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                tref = self.resolve_annotation(stmt.annotation, cinfo.module)
                if tref is not None:
                    cinfo.attr_types.setdefault(stmt.target.id, tref)
        init = cinfo.methods.get("__init__")
        if init is not None:
            env = self.local_env(init)
            for stmt in _shallow_stmts(init.node):
                target = None
                value = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    target, value = stmt.target, stmt.value
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    tref = None
                    if isinstance(stmt, ast.AnnAssign):
                        tref = self.resolve_annotation(stmt.annotation, cinfo.module)
                    if tref is None:
                        tref = self.expr_type(value, init, env)
                    if tref is not None:
                        cinfo.attr_types.setdefault(target.attr, tref)
        return cinfo.attr_types


def _shallow_defs(body):
    """Immediate function defs in a body, descending into compound
    statements but not into nested defs/classes/lambdas."""
    out = []
    stack = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, _FUNC_NODES):
            out.append(node)
            continue
        if isinstance(node, (ast.ClassDef, ast.Lambda)):
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.stmt, ast.excepthandler)):
                stack.append(child)
    return out


def _shallow_stmts(node):
    """All statements in a function body, not descending into nested defs."""
    out = []
    stack = list(node.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (*_FUNC_NODES, ast.ClassDef)):
            continue
        if isinstance(stmt, ast.stmt):
            out.append(stmt)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.stmt, ast.excepthandler)):
                stack.append(child)
    return out
