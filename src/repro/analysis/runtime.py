"""Runtime sanitizers: ``do_all`` race detection and Gluon protocol checking.

Both sanitizers are strictly observational — they read model state, never
write it, and draw no randomness — so a sanitized run is **bit-identical**
to an unsanitized one (pinned by ``tests/test_analysis_sanitizers.py``).

Race detection (:class:`DoAllRaceSanitizer` + :class:`SanitizedExecutor`)
works in *shadow* mode: the executor wrapper assigns every loop item its
own chunk id and instrumented operators report the NumPy row sets they
read/write via :func:`note_read` / :func:`note_write`.  After the loop
barrier, cross-chunk write–write and read–write overlaps are reported with
the offending chunk pair and a sample of the overlapping rows.  Treating
each item as its own chunk makes findings independent of the executor that
actually ran the loop (chunking is a scheduling knob, not a correctness
boundary): a race is reported even when the loop happened to run serially.

Protocol checking (:class:`GluonSyncChecker`) hooks the synchronizer's
reduce/broadcast rounds and tracks three per-(field, host) invariants:

- **dropped writes** — rows where ``array != base`` that were neither
  flagged in the round's update bit-vector nor part of the *expected
  residual* (PullModel legitimately leaves already-reduced deltas in
  place on rows it chose not to refresh);
- **stale reads** — a host updating a row whose replica went stale (its
  master changed in an earlier round without a broadcast reaching this
  host since);
- **redundant broadcasts** — received rows that neither changed at their
  master nor were requested through the plan's access mechanism.

A :func:`note_write` outside any sanitized loop is a no-op, so the
instrumentation can stay in place permanently at negligible cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import itertools
import os
import threading
from typing import Any, Callable, Sequence

import numpy as np

from repro.gluon.proxies import master_block_slice

__all__ = [
    "SANITIZE_ENV_VAR",
    "SanitizeFinding",
    "SanitizeError",
    "DoAllRaceSanitizer",
    "SanitizedExecutor",
    "GluonSyncChecker",
    "note_read",
    "note_write",
    "sanitize_from_env",
]

#: Environment variable enabling the sanitizers in components that consult
#: it (``GraphWord2Vec`` when ``sanitize=None``); how the CI job runs the
#: whole tier-1 suite under full checking.
SANITIZE_ENV_VAR = "REPRO_SANITIZE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def sanitize_from_env() -> bool:
    """Whether ``REPRO_SANITIZE`` requests sanitized execution."""
    return os.environ.get(SANITIZE_ENV_VAR, "").strip().lower() in _TRUTHY


#: Rows quoted per finding (full overlap sets can be huge).
_SAMPLE_ROWS = 8
#: Findings emitted per checked loop/round before truncation.
_MAX_FINDINGS_PER_CHECK = 16


def _sample(rows: np.ndarray) -> list[int]:
    return [int(r) for r in np.asarray(rows).ravel()[:_SAMPLE_ROWS]]


@dataclass(frozen=True)
class SanitizeFinding:
    """One observed violation, with enough context to locate it."""

    checker: str  # "do_all" | "gluon"
    kind: str  # e.g. "write-write", "dropped-write", "stale-read"
    message: str
    details: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.checker}:{self.kind}] {self.message}"


class SanitizeError(RuntimeError):
    """Raised at a checking barrier when any sanitizer collected findings."""

    def __init__(self, findings: Sequence[SanitizeFinding], context: str = ""):
        self.findings = list(findings)
        where = f" ({context})" if context else ""
        body = "\n".join(f"  {f}" for f in self.findings)
        super().__init__(
            f"{len(self.findings)} sanitizer finding(s){where}:\n{body}"
        )


# ----------------------------------------------------------------------
# do_all race detection
# ----------------------------------------------------------------------
class _ChunkAccess:
    """Row sets one chunk reported; written only by the executing thread."""

    __slots__ = ("chunk_id", "reads", "writes")

    def __init__(self, chunk_id: int):
        self.chunk_id = chunk_id
        # (array id, label, rows) triples.
        self.reads: list[tuple[int, str, np.ndarray]] = []
        self.writes: list[tuple[int, str, np.ndarray]] = []

    def note(self, array: np.ndarray, rows: Any, mode: str, label: str | None) -> None:
        rows = np.asarray(rows)
        entry = (id(array), label or f"array@{id(array):#x}", rows)
        (self.writes if mode == "w" else self.reads).append(entry)


class _LoopRecord:
    """All chunks of one sanitized ``do_all`` loop."""

    __slots__ = ("name", "chunks", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.chunks: list[_ChunkAccess] = []
        self._lock = threading.Lock()

    def add(self, chunk: _ChunkAccess) -> None:
        with self._lock:
            self.chunks.append(chunk)


_ctx = threading.local()


def note_write(array: np.ndarray, rows: Any, label: str | None = None) -> None:
    """Report rows of ``array`` the current loop item writes.

    No-op unless called from inside a :class:`SanitizedExecutor` run, so
    instrumented operators cost one thread-local lookup when sanitizers
    are off.  ``rows`` must not be mutated afterwards (a reference is
    kept until the loop barrier).
    """
    record = getattr(_ctx, "record", None)
    if record is not None:
        record.note(array, rows, "w", label)


def note_read(array: np.ndarray, rows: Any, label: str | None = None) -> None:
    """Report rows of ``array`` the current loop item reads (see
    :func:`note_write`)."""
    record = getattr(_ctx, "record", None)
    if record is not None:
        record.note(array, rows, "r", label)


class DoAllRaceSanitizer:
    """Collects and checks shadow access records of sanitized loops."""

    name = "do_all"

    def __init__(self) -> None:
        self.findings: list[SanitizeFinding] = []
        self.loops_checked = 0
        self._lock = threading.Lock()

    def check_loop(self, loop: _LoopRecord) -> list[SanitizeFinding]:
        """Analyze one finished loop; appends and returns new findings."""
        per_array: dict[int, dict[int, tuple[str, list[np.ndarray], list[np.ndarray]]]] = {}
        for chunk in loop.chunks:
            for arr_id, label, rows in chunk.writes:
                slot = per_array.setdefault(arr_id, {}).setdefault(
                    chunk.chunk_id, (label, [], [])
                )
                slot[1].append(rows)
            for arr_id, label, rows in chunk.reads:
                slot = per_array.setdefault(arr_id, {}).setdefault(
                    chunk.chunk_id, (label, [], [])
                )
                slot[2].append(rows)

        new: list[SanitizeFinding] = []

        def union(parts: list[np.ndarray]) -> np.ndarray:
            if not parts:
                return np.empty(0, dtype=np.int64)
            return np.unique(np.concatenate([np.asarray(p).ravel() for p in parts]))

        for arr_id, by_chunk in per_array.items():
            if len(by_chunk) < 2:
                continue
            resolved = {
                cid: (label, union(w), union(r))
                for cid, (label, w, r) in by_chunk.items()
            }
            for a, b in itertools.combinations(sorted(resolved), 2):
                if len(new) >= _MAX_FINDINGS_PER_CHECK:
                    break
                label, wa, ra = resolved[a]
                _, wb, rb = resolved[b]
                ww = np.intersect1d(wa, wb, assume_unique=True)
                if ww.size:
                    new.append(
                        SanitizeFinding(
                            self.name,
                            "write-write",
                            f"loop {loop.name}: chunks {a} and {b} both write "
                            f"{label} rows {_sample(ww)} ({ww.size} overlapping)",
                            {
                                "loop": loop.name,
                                "chunks": (a, b),
                                "array": label,
                                "rows": _sample(ww),
                                "overlap": int(ww.size),
                            },
                        )
                    )
                for (ca, cb, w, r) in ((a, b, wa, rb), (b, a, wb, ra)):
                    rw = np.intersect1d(w, r, assume_unique=True)
                    if rw.size:
                        new.append(
                            SanitizeFinding(
                                self.name,
                                "read-write",
                                f"loop {loop.name}: chunk {ca} writes {label} rows "
                                f"{_sample(rw)} that chunk {cb} reads "
                                f"({rw.size} overlapping)",
                                {
                                    "loop": loop.name,
                                    "chunks": (ca, cb),
                                    "array": label,
                                    "rows": _sample(rw),
                                    "overlap": int(rw.size),
                                },
                            )
                        )

        with self._lock:
            self.findings.extend(new)
            self.loops_checked += 1
        return new


class SanitizedExecutor:
    """Executor wrapper that shadow-records per-chunk access sets.

    Wraps any :class:`~repro.galois.do_all.DoAllExecutor`; the inner
    executor still runs the loop (serial or thread pool), while each item
    executes with a thread-local access record bound for
    :func:`note_read`/:func:`note_write`.  Item order, chunk scheduling
    and exception semantics are untouched, so results are exactly those
    of the inner executor.
    """

    def __init__(
        self,
        inner: Any,
        sanitizer: DoAllRaceSanitizer,
        name: str = "do_all",
    ):
        self.inner = inner
        self.sanitizer = sanitizer
        self.name = name
        self._loop_counter = itertools.count()

    def run(self, items: Sequence[Any], operator: Callable[[Any], None]) -> None:
        items = list(items)
        if not items:
            self.inner.run(items, operator)
            return
        loop = _LoopRecord(f"{self.name}#{next(self._loop_counter)}")

        def shadowed(index: int) -> None:
            chunk = _ChunkAccess(index)
            _ctx.record = chunk
            try:
                operator(items[index])
            finally:
                _ctx.record = None
                loop.add(chunk)

        try:
            self.inner.run(range(len(items)), shadowed)
        finally:
            # Check even on operator failure: access records collected
            # before the error still carry race evidence.
            self.sanitizer.check_loop(loop)


# ----------------------------------------------------------------------
# Gluon synchronization protocol checking
# ----------------------------------------------------------------------
def _empty_ids() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


def _concat_sorted(parts: Sequence[np.ndarray]) -> np.ndarray:
    nonempty = [np.asarray(p, dtype=np.int64) for p in parts if len(p)]
    if not nonempty:
        return _empty_ids()
    return np.sort(np.concatenate(nonempty))


class GluonSyncChecker:
    """Tracks per-field dirty/stale invariants across sync rounds.

    Attach via ``synchronizer.checker = checker`` (both the embedding and
    output synchronizers may share one instance; state is keyed by field
    name).  The checker observes ``sync_replicated`` entry and exit plus
    ``restore_host``, and — for the BSP value-mode loop — per-round
    outcomes through :meth:`observe_bsp_round`.
    """

    name = "gluon"

    def __init__(self) -> None:
        self.findings: list[SanitizeFinding] = []
        self.rounds_observed = 0
        # Expected residual per (field, host): rows where array != base is
        # legitimate because the delta was already reduced but the plan
        # chose not to refresh the row (PullModel).
        self._residual: dict[tuple[str, int], np.ndarray] = {}
        # Stale rows per (field, host): master changed, no broadcast
        # received by this host since.
        self._stale: dict[tuple[str, int], np.ndarray] = {}
        # Bounded-staleness audit (async engine): the next round each
        # (field, host) clock may start, and the fold frontier per field.
        self._async_clock: dict[tuple[str, int], int] = {}
        self._async_folds: dict[str, int] = {}

    def reset_state(self) -> None:
        """Forget residual/stale tracking (e.g. after a checkpoint load)."""
        self._residual.clear()
        self._stale.clear()
        self._async_clock.clear()
        self._async_folds.clear()

    # -- bounded-staleness hooks (async engine) -------------------------
    def note_async_step(
        self,
        field_name: str,
        host: int,
        round_index: int,
        folds_done: int,
        staleness: int,
    ) -> None:
        """A host is starting ``round_index`` with ``folds_done`` folds behind it.

        Asserts the SSP contract: a host may lead the sync frontier by at
        most ``staleness`` rounds, and its own per-(field, host) clock only
        ever moves forward.  Called by the async engine before every step;
        any violation is a scheduler bug, never legal behavior.
        """
        lead = round_index - folds_done
        if lead > staleness:
            self.findings.append(
                SanitizeFinding(
                    self.name,
                    "staleness-exceeded",
                    f"field {field_name!r}: host {host} starts round "
                    f"{round_index} with only {folds_done} folds done — lead "
                    f"{lead} exceeds the staleness bound {staleness}",
                    {
                        "field": field_name,
                        "host": host,
                        "round": round_index,
                        "folds_done": folds_done,
                        "staleness": staleness,
                    },
                )
            )
        expected = self._async_clock.get((field_name, host), 0)
        if round_index < expected or folds_done > round_index:
            self.findings.append(
                SanitizeFinding(
                    self.name,
                    "clock-skew",
                    f"field {field_name!r}: host {host} starts round "
                    f"{round_index} out of order (next expected "
                    f"{expected}, folds done {folds_done})",
                    {
                        "field": field_name,
                        "host": host,
                        "round": round_index,
                        "expected": expected,
                        "folds_done": folds_done,
                    },
                )
            )
        self._async_clock[(field_name, host)] = round_index + 1

    def note_async_fold(self, field_name: str, round_index: int) -> None:
        """The sync frontier folded ``round_index`` for ``field_name``.

        Folds must advance one round at a time (the frontier is the min of
        the host clocks, which only moves in unit steps).
        """
        # The first fold observed seeds the ledger (a resumed run's
        # frontier starts wherever the checkpoint left it).
        expected = self._async_folds.get(field_name, round_index)
        if round_index != expected:
            self.findings.append(
                SanitizeFinding(
                    self.name,
                    "fold-skipped",
                    f"field {field_name!r}: fold of round {round_index} "
                    f"arrived out of order (expected {expected})",
                    {
                        "field": field_name,
                        "round": round_index,
                        "expected": expected,
                    },
                )
            )
        self._async_folds[field_name] = round_index + 1

    # -- sync_replicated hooks ------------------------------------------
    def before_replicated(self, field_sync: Any, bounds: np.ndarray, updated: Sequence[Any]) -> None:
        """Entry hook: validate writes against flags, before any mutation."""
        name = field_sync.name
        emitted = 0
        for h, bits in enumerate(updated):
            flagged = bits.indices()
            arr = field_sync.arrays[h]
            base = field_sync.bases[h]
            neq = arr != base
            if np.issubdtype(arr.dtype, np.floating):
                # NaN != NaN: rows that diverged to NaN on both sides are
                # equal for protocol purposes (divergence is a legitimate
                # training outcome, not a dropped write).
                neq &= ~(np.isnan(arr) & np.isnan(base))
            dirty = np.flatnonzero(neq.any(axis=1)).astype(np.int64)
            allowed = flagged
            residual = self._residual.get((name, h))
            if residual is not None and residual.size:
                allowed = np.union1d(flagged, residual)
            dropped = np.setdiff1d(dirty, allowed, assume_unique=False)
            if dropped.size and emitted < _MAX_FINDINGS_PER_CHECK:
                emitted += 1
                self.findings.append(
                    SanitizeFinding(
                        self.name,
                        "dropped-write",
                        f"field {name!r}: host {h} wrote rows {_sample(dropped)} "
                        f"({dropped.size} total) without flagging them in the "
                        "update bit-vector; the deltas will never be reduced",
                        {"field": name, "host": h, "rows": _sample(dropped)},
                    )
                )
            stale = self._stale.get((name, h))
            if stale is not None and stale.size and flagged.size:
                hit = np.intersect1d(flagged, stale, assume_unique=True)
                if hit.size and emitted < _MAX_FINDINGS_PER_CHECK:
                    emitted += 1
                    self.findings.append(
                        SanitizeFinding(
                            self.name,
                            "stale-read",
                            f"field {name!r}: host {h} updated rows {_sample(hit)} "
                            f"({hit.size} total) whose replica is stale (master "
                            "changed without a broadcast reaching this host)",
                            {"field": name, "host": h, "rows": _sample(hit)},
                        )
                    )

    def after_replicated(
        self,
        field_sync: Any,
        bounds: np.ndarray,
        plan: Any,
        updated: Sequence[Any],
        changed_per_master: Sequence[np.ndarray],
        received_per_host: Sequence[np.ndarray],
        accessed_next: Sequence[np.ndarray] | None,
    ) -> None:
        """Exit hook: audit the broadcast and roll the stale/residual state."""
        name = field_sync.name
        changed_all = _concat_sorted(changed_per_master)  # blocks disjoint => unique
        emitted = 0
        for h in range(len(field_sync.arrays)):
            recv = np.asarray(received_per_host[h], dtype=np.int64)
            if recv.size:
                justified = np.isin(recv, changed_all)
                if plan.requires_access_sets and accessed_next is not None:
                    acc = np.asarray(accessed_next[h], dtype=np.int64)
                    justified |= np.isin(recv, acc)
                redundant = recv[~justified]
                if redundant.size and emitted < _MAX_FINDINGS_PER_CHECK:
                    emitted += 1
                    self.findings.append(
                        SanitizeFinding(
                            self.name,
                            "redundant-broadcast",
                            f"field {name!r}: host {h} received rows "
                            f"{_sample(redundant)} ({redundant.size} total) that "
                            "neither changed at their master nor were requested "
                            "by the plan's access mechanism",
                            {"field": name, "host": h, "rows": _sample(redundant)},
                        )
                    )

            block = master_block_slice(bounds, h)
            flagged = updated[h].indices()
            rebased = np.union1d(recv, np.asarray(changed_per_master[h], dtype=np.int64))
            residual = self._residual.get((name, h), _empty_ids())
            residual = np.setdiff1d(np.union1d(residual, flagged), rebased)
            self._residual[(name, h)] = residual

            foreign = changed_all[
                (changed_all < block.start) | (changed_all >= block.stop)
            ]
            stale = self._stale.get((name, h), _empty_ids())
            stale = np.setdiff1d(np.union1d(stale, foreign), recv)
            self._stale[(name, h)] = stale
        self.rounds_observed += 1

    def after_restore(self, field_sync: Any, host: int) -> None:
        """Crash recovery rebuilt ``host``'s replica: everything is fresh."""
        self._residual[(field_sync.name, host)] = _empty_ids()
        self._stale[(field_sync.name, host)] = _empty_ids()

    # -- BSP value-mode hook --------------------------------------------
    def observe_bsp_round(self, round_index: int, local_work: int, result: Any) -> None:
        """Value-mode rounds: synchronization may only change labels when
        some host did local work (masters cannot invent updates)."""
        if local_work == 0 and getattr(result, "any_changed", False):
            self.findings.append(
                SanitizeFinding(
                    self.name,
                    "phantom-sync",
                    f"BSP round {round_index}: synchronization changed labels "
                    "although no host performed local work",
                    {"round": round_index},
                )
            )
