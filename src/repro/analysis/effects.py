"""Effect declarations for the interprocedural dataflow analyzer.

Numeric kernels (the SGNS/CBOW update loops, BLAS-backed scoring) index
arrays through data the static analyzer cannot see — the training batch
decides which embedding rows a call touches.  Instead of teaching the
analyzer NumPy semantics, such functions *declare* their effects and the
analyzer (:mod:`repro.analysis.summaries`) trusts the declaration instead
of descending into the body.

The declaration is read from the **AST** of the decorator call, so the
grammar is restricted to string literals:

- ``"name"`` — the whole object is touched (any row may be read/written);
- ``"name[rows]"`` — a data-dependent row subset is touched (rows may
  overlap between two invocations);
- ``"name[<param>]"`` — rows derived from the named parameter (two calls
  with distinct values for that parameter touch disjoint rows).

``name`` is a parameter name, or ``self.attr`` for instance state.  At
runtime the decorator only attaches the declaration as
``__repro_effects__`` (for introspection and tests) and returns the
function unchanged — declaring effects costs nothing on the hot path.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["declare_effects"]

F = TypeVar("F", bound=Callable)


def declare_effects(
    *, reads: tuple[str, ...] | list[str] = (), writes: tuple[str, ...] | list[str] = ()
) -> Callable[[F], F]:
    """Declare the read/write effect sets of a function for the analyzer.

    See the module docstring for the target grammar.  The decorator is a
    runtime no-op apart from attaching ``__repro_effects__``.
    """
    reads = tuple(reads)
    writes = tuple(writes)
    for spec in (*reads, *writes):
        if not isinstance(spec, str) or not spec:
            raise TypeError(f"effect specs must be non-empty strings, got {spec!r}")

    def wrap(fn: F) -> F:
        fn.__repro_effects__ = {"reads": reads, "writes": writes}
        return fn

    return wrap
