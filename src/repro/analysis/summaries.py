"""Per-function summaries for the interprocedural dataflow analyzer.

For every function indexed by :mod:`repro.analysis.callgraph` this module
extracts a summary of what the function *does* to data that outlives a
single call:

- **Effects** — reads and writes of subscripted/attributed storage,
  abstracted to ``(root, attrs, select, index)`` where ``root`` names the
  owning object (a parameter, ``self``, a closed-over local, a module
  global), ``attrs`` is the attribute path, ``select`` collects the tags
  of intermediate subscripts (``works[host]`` → ``{host}``), and
  ``index`` the tags of the final subscript (``None`` means the whole
  object).  Tags name the parameters an index expression is derived
  from, plus the special tags ``"const"`` (literal-only), ``"other"``
  (data the analysis cannot attribute), and ``"master"`` (derived from a
  ``master_block_slice`` call — the confined-read contract).
- **Seed sites** — calls into :mod:`repro.util.rng` (``derive_seed``,
  ``keyed_rng``, ``spawn_rngs``) with each key argument abstracted to a
  constant, a parameter reference, or an opaque atom.
- **Flags / barriers** — whether the function marks written rows for the
  synchronizer (``set_many``, or ``set`` on a ``BitVector``) and whether
  it reaches a round barrier (``sync_replicated``/``sync_value``/
  ``snapshot_bases``).
- **Call sites and ``do_all`` operators** — resolved edges with argument
  bindings, so effects compose transitively (depth-limited).

Functions carrying ``@declare_effects`` are *not* descended into: their
declaration is the summary (see :mod:`repro.analysis.effects`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
import re
from typing import Optional

from .callgraph import FunctionInfo, Program, dotted_name, type_basename

__all__ = ["Effect", "SeedSite", "CallSite", "Summary", "SummaryBuilder"]

_MAX_DEPTH = 3
_MAX_EFFECTS = 400

_SEED_FUNCS = {"derive_seed", "keyed_rng", "spawn_rngs"}
_BARRIER_FUNCS = {"sync_replicated", "sync_value", "snapshot_bases"}
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "remove",
    "discard",
    "update",
    "setdefault",
    "push",
    "clear",
}
# Receivers whose mutation is chunk-safe by design (mirrors the list in
# repro.analysis.lint for REPRO005).
_SANCTIONED_TYPES = {
    "GAccumulator",
    "GReduceMax",
    "GReduceMin",
    "ChunkedWorklist",
    "Worklist",
    "DoAllRaceSanitizer",
}

_DECLARED_SPEC_RE = re.compile(r"^(?:(self)\.)?(\w+)(?:\[(\w+)\])?$")


@dataclass(frozen=True)
class Effect:
    mode: str  # "r" or "w"
    root: tuple  # (kind, name); kind in {"param","self","closure","global","var"}
    attrs: tuple
    select: frozenset
    index: Optional[frozenset]  # None == the whole object
    path: str
    line: int
    col: int
    gluon: Optional[str] = None  # "arrays"/"bases" when a FieldSync replica is touched
    via: str = ""  # qname of the function that performs the access

    def describe(self) -> str:
        kind, name = self.root
        if kind == "self":
            base = "self"
        elif kind == "global":
            base = name.split(":", 1)[-1]
        else:
            base = name
        return base + "".join(f".{a}" for a in self.attrs)


@dataclass(frozen=True)
class SeedSite:
    fn: str
    family: str  # "keyed" (derive_seed/keyed_rng) or "spawn"
    atoms: tuple  # ("const", v) | ("param", name) | ("opaque", ...)
    ref_tags: frozenset  # tags referenced anywhere in the key expression
    path: str
    line: int
    col: int


@dataclass
class CallSite:
    caller: str
    callees: list
    bound_exprs: dict  # callee param name -> actual AST expression
    bindings_abs: dict  # callee param name -> Effect-shaped abstraction or None
    binding_tags: dict  # callee param name -> frozenset of caller tags
    recv_abs: Optional["Abstraction"]
    recv_is_self: bool
    line: int
    col: int


@dataclass(frozen=True)
class Abstraction:
    root: tuple
    attrs: tuple
    select: frozenset
    gluon: Optional[str] = None


@dataclass
class Summary:
    finfo: FunctionInfo
    effects: list = field(default_factory=list)
    seeds: list = field(default_factory=list)
    calls: list = field(default_factory=list)
    doall_ops: list = field(default_factory=list)  # (op FunctionInfo, call node)
    has_flags: bool = False
    has_barrier: bool = False


def _shallow_nodes(fn_node):
    """Every AST node in a function body, excluding nested defs/lambdas."""
    stack = list(fn_node.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class SummaryBuilder:
    """Builds and memoizes per-function and transitive summaries."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._summaries: dict = {}
        self._name_tags: dict = {}
        self._locals: dict = {}
        self._derivs: dict = {}
        self._closure_cache: dict = {}
        self._lambda_counter = 0
        self._callers: Optional[dict] = None

    # ------------------------------------------------------------------
    # Tag and abstraction machinery
    # ------------------------------------------------------------------
    def name_tags(self, finfo: FunctionInfo) -> dict:
        cached = self._name_tags.get(finfo.qname)
        if cached is not None:
            return cached
        self._name_tags[finfo.qname] = tags = {}
        for p in finfo.params:
            tags[p] = frozenset({p})
        for _ in range(2):
            for node in _shallow_nodes(finfo.node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        tags[target.id] = self._value_tags(node.value, finfo)
                elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                    if node.value is not None:
                        tags[node.target.id] = self._value_tags(node.value, finfo)
                elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                    prior = tags.get(node.target.id, frozenset())
                    tags[node.target.id] = prior | self.tags_of_expr(node.value, finfo)
        return tags

    def _value_tags(self, value, finfo: FunctionInfo) -> frozenset:
        # x = slice(a, b) is an anchored chunk window: like a slice
        # expression, its identity is its anchor (see tags_of_expr).
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "slice"
            and value.args
        ):
            return self.tags_of_expr(value.args[0], finfo)
        return self.tags_of_expr(value, finfo)

    def local_names(self, finfo: FunctionInfo) -> set:
        """Every name bound inside ``finfo`` (params + any Store target)."""
        cached = self._locals.get(finfo.qname)
        if cached is not None:
            return cached
        names = set(finfo.params) | set(finfo.children)
        node = finfo.node
        if not isinstance(node, ast.Lambda):
            for sub in _shallow_nodes(node):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                    names.add(sub.id)
        self._locals[finfo.qname] = names
        return names

    def tags_of_expr(self, expr, finfo: FunctionInfo) -> frozenset:
        # A slice is identified by its anchor: ``out[start:end]`` with an
        # item-derived ``start`` is a chunk-private window even when the
        # stop bound mixes in loop extents (mirrors how the runtime
        # sanitizer treats per-chunk slice ranges as disjoint).
        if isinstance(expr, ast.Slice):
            anchor = expr.lower if expr.lower is not None else expr.upper
            if anchor is None:
                return frozenset({"other"})
            return self.tags_of_expr(anchor, finfo)
        tags = set()
        saw_symbol = False
        # name_tags() seeds its cache entry before filling it, so this
        # re-entrant call terminates (returning the partial map mid-build).
        local_tags = self.name_tags(finfo)
        params = set(finfo.params)
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func) or ""
                if name.rsplit(".", 1)[-1] == "master_block_slice":
                    tags.add("master")
            elif isinstance(node, ast.Name):
                saw_symbol = True
                if node.id in params:
                    tags.add(node.id)
                elif node.id in local_tags:
                    tags |= local_tags[node.id]
                elif node.id in finfo.module.constants:
                    tags.add("const")
                else:
                    tags.add("other")
            elif isinstance(node, ast.Attribute):
                saw_symbol = True
                if not isinstance(node.value, ast.Name) or node.value.id not in params:
                    tags.add("other")
        if not saw_symbol:
            tags.add("const")
        return frozenset(tags)

    def _local_derivations(self, finfo: FunctionInfo) -> dict:
        """name -> Abstraction for locals assigned from trackable storage."""
        cached = self._derivs.get(finfo.qname)
        if cached is not None:
            return cached
        self._derivs[finfo.qname] = derivs = {}
        for _ in range(2):
            for node in _shallow_nodes(finfo.node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        ab = self._abstract(node.value, finfo, allow_index=False)
                        if ab is not None and ab.root[0] in ("param", "self", "closure", "global"):
                            derivs[target.id] = ab
        return derivs

    def abstract_expr(self, expr, finfo: FunctionInfo):
        """Abstraction of a value/receiver expression (subscripts -> select)."""
        return self._abstract(expr, finfo, allow_index=False)

    def abstract_target(self, expr, finfo: FunctionInfo):
        """(Abstraction, index_tags) for a store target; index is the tags
        of the outermost subscript, or None for whole-object stores."""
        index = None
        node = expr
        if isinstance(node, ast.Subscript):
            index = self.tags_of_expr(node.slice, finfo)
            node = node.value
        ab = self._abstract(node, finfo, allow_index=False)
        return ab, index

    def _abstract(self, expr, finfo: FunctionInfo, *, allow_index: bool, depth: int = 0):
        if depth > 8:
            return None
        attrs = []
        select = set()
        gluon = None
        node = expr
        while True:
            if isinstance(node, ast.Subscript):
                select |= self.tags_of_expr(node.slice, finfo)
                node = node.value
            elif isinstance(node, ast.Attribute):
                if node.attr in ("arrays", "bases") and gluon is None:
                    owner_t = self.program.expr_type(node.value, finfo)
                    if type_basename(owner_t) == "FieldSync":
                        gluon = node.attr
                attrs.append(node.attr)
                node = node.value
            else:
                break
        attrs.reverse()
        root = self._root_of(node, finfo)
        if root is None:
            return None
        base_root, base_attrs, base_select, base_gluon = root
        return Abstraction(
            root=base_root,
            attrs=base_attrs + tuple(attrs),
            select=frozenset(base_select) | frozenset(select),
            gluon=gluon or base_gluon,
        )

    def _root_of(self, node, finfo: FunctionInfo):
        """Resolve the base of an access chain -> (root, attrs, select, gluon)."""
        if not isinstance(node, ast.Name):
            return None
        name = node.id
        if name in ("self", "cls") and finfo.cls is not None:
            return ("self", "self"), (), frozenset(), None
        if name in finfo.params:
            return ("param", name), (), frozenset(), None
        derivs = self._local_derivations(finfo)
        if name in derivs:
            d = derivs[name]
            return d.root, d.attrs, d.select, d.gluon
        # Assigned locally but with no trackable derivation?
        if name in self.local_names(finfo):
            return ("var", name), (), frozenset(), None
        # Enclosing function scopes (closure capture).
        scope = finfo.parent
        while scope is not None:
            if name in scope.params or name in self.local_names(scope):
                pd = self._local_derivations(scope).get(name)
                if pd is not None:
                    return pd.root, pd.attrs, pd.select, pd.gluon
                if name in scope.params:
                    return ("param", name), (), frozenset(), None
                return ("closure", name), (), frozenset(), None
            scope = scope.parent
        mod = finfo.module
        if name in mod.functions or name in mod.classes or name in mod.imports:
            return None  # functions/classes/modules are not data roots
        if name in mod.constants:
            return None
        # Unknown: module-level mutable state or a builtin.
        return ("global", f"{mod.name}:{name}"), (), frozenset(), None

    # ------------------------------------------------------------------
    # Direct summaries
    # ------------------------------------------------------------------
    def summary(self, finfo: FunctionInfo) -> Summary:
        cached = self._summaries.get(finfo.qname)
        if cached is not None:
            return cached
        self._summaries[finfo.qname] = s = Summary(finfo=finfo)
        path = finfo.module.path
        sanctioned_locals = self._sanctioned_locals(finfo)

        # A load like ``f.arrays[h][rows]`` should produce one effect for the
        # full chain, not one per nested subscript: record only maximal chains.
        inner_values = set()
        for node in _shallow_nodes(finfo.node):
            if isinstance(node, (ast.Subscript, ast.Attribute)):
                inner_values.add(id(node.value))

        for node in _shallow_nodes(finfo.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._record_store(s, target, finfo, path)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                self._record_store(s, node.target, finfo, path)
            elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
                if id(node) in inner_values:
                    continue
                ab, index = self.abstract_target(node, finfo)
                if ab is not None and ab.root[0] != "var":
                    s.effects.append(
                        Effect(
                            "r",
                            ab.root,
                            ab.attrs,
                            ab.select,
                            index,
                            path,
                            node.lineno,
                            node.col_offset,
                            gluon=ab.gluon,
                            via=finfo.qname,
                        )
                    )
            elif isinstance(node, ast.Call):
                self._record_call(s, node, finfo, path, sanctioned_locals)

        s.effects = s.effects[:_MAX_EFFECTS]
        return s

    def _sanctioned_locals(self, finfo: FunctionInfo) -> set:
        out = set()
        for node in _shallow_nodes(finfo.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
                if (
                    isinstance(target, ast.Name)
                    and isinstance(value, ast.Call)
                    and (dotted_name(value.func) or "").rsplit(".", 1)[-1] in _SANCTIONED_TYPES
                ):
                    out.add(target.id)
        # Closed-over sanctioned accumulators count too.
        scope = finfo.parent
        while scope is not None:
            out |= self._sanctioned_locals_shallow(scope)
            scope = scope.parent
        return out

    def _sanctioned_locals_shallow(self, finfo: FunctionInfo) -> set:
        out = set()
        for node in _shallow_nodes(finfo.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
                if (
                    isinstance(target, ast.Name)
                    and isinstance(value, ast.Call)
                    and (dotted_name(value.func) or "").rsplit(".", 1)[-1] in _SANCTIONED_TYPES
                ):
                    out.add(target.id)
        return out

    def _record_store(self, s, target, finfo, path) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(s, elt, finfo, path)
            return
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return
        ab, index = self.abstract_target(target, finfo)
        if ab is None:
            return
        s.effects.append(
            Effect(
                "w",
                ab.root,
                ab.attrs,
                ab.select,
                index,
                path,
                target.lineno,
                target.col_offset,
                gluon=ab.gluon,
                via=finfo.qname,
            )
        )

    def _record_call(self, s, call: ast.Call, finfo, path, sanctioned_locals) -> None:
        func = call.func
        fname = dotted_name(func) or ""
        last = fname.rsplit(".", 1)[-1]

        # Seed sites -------------------------------------------------
        if last in _SEED_FUNCS:
            self._record_seed(s, call, last, finfo, path)

        # Barriers ---------------------------------------------------
        if last in _BARRIER_FUNCS:
            s.has_barrier = True

        # np.copyto(dst, src) ---------------------------------------
        if last == "copyto" and len(call.args) >= 2:
            ab, index = self.abstract_target(call.args[0], finfo)
            if ab is not None:
                s.effects.append(
                    Effect(
                        "w", ab.root, ab.attrs, ab.select, index, path, call.lineno,
                        call.col_offset, gluon=ab.gluon, via=finfo.qname,
                    )
                )
            ab2, index2 = self.abstract_target(call.args[1], finfo)
            if ab2 is not None and ab2.root[0] != "var":
                s.effects.append(
                    Effect(
                        "r", ab2.root, ab2.attrs, ab2.select, index2, path, call.lineno,
                        call.col_offset, gluon=ab2.gluon, via=finfo.qname,
                    )
                )

        # Flag-setting and mutator methods --------------------------
        if isinstance(func, ast.Attribute):
            recv = func.value
            if func.attr == "set_many":
                s.has_flags = True
            elif func.attr == "set":
                recv_t = self.program.expr_type(recv, finfo)
                if type_basename(recv_t) == "BitVector":
                    s.has_flags = True
            if func.attr in _MUTATOR_METHODS:
                recv_name = recv.id if isinstance(recv, ast.Name) else None
                recv_t = self.program.expr_type(recv, finfo)
                sanctioned = recv_name in sanctioned_locals or type_basename(recv_t) in _SANCTIONED_TYPES
                if not sanctioned:
                    ab = self.abstract_expr(recv, finfo)
                    if ab is not None and ab.root[0] != "var":
                        s.effects.append(
                            Effect(
                                "w", ab.root, ab.attrs, ab.select, None, path, call.lineno,
                                call.col_offset, gluon=ab.gluon, via=finfo.qname,
                            )
                        )

        # do_all operators -------------------------------------------
        if last == "do_all":
            op_expr = None
            if len(call.args) >= 2:
                op_expr = call.args[1]
            else:
                for kw in call.keywords:
                    if kw.arg == "operator":
                        op_expr = kw.value
            op_fi = self._operator_function(op_expr, finfo)
            if op_fi is not None:
                s.doall_ops.append((op_fi, call))

        # Resolved call edges ----------------------------------------
        callees, recv = self.program.resolve_call(finfo, call)
        if callees:
            callee = callees[0]
            skip_self = recv is not None
            bound = self.program.bind_args(callee, call, skip_self=skip_self)
            recv_abs = None
            recv_is_self = False
            if recv is not None:
                if isinstance(recv, ast.Name) and recv.id in ("self", "cls"):
                    recv_is_self = True
                else:
                    recv_abs = self.abstract_expr(recv, finfo)
            s.calls.append(
                CallSite(
                    caller=finfo.qname,
                    callees=callees,
                    bound_exprs=bound,
                    bindings_abs={k: self.abstract_expr(v, finfo) for k, v in bound.items()},
                    binding_tags={k: self.tags_of_expr(v, finfo) for k, v in bound.items()},
                    recv_abs=recv_abs,
                    recv_is_self=recv_is_self,
                    line=call.lineno,
                    col=call.col_offset,
                )
            )

    def _operator_function(self, op_expr, finfo: FunctionInfo):
        if op_expr is None:
            return None
        if isinstance(op_expr, ast.Name):
            target = self.program.resolve_name(finfo, op_expr.id)
            if isinstance(target, FunctionInfo):
                return target
            return None
        if isinstance(op_expr, ast.Lambda):
            self._lambda_counter += 1
            qname = f"{finfo.qname}.<lambda#{self._lambda_counter}:{op_expr.lineno}>"
            lam = FunctionInfo(
                qname=qname,
                name="<lambda>",
                module=finfo.module,
                node=op_expr,
                cls=finfo.cls,
                parent=finfo,
            )
            self.program.functions[qname] = lam
            return lam
        return None

    def _record_seed(self, s, call: ast.Call, last: str, finfo, path) -> None:
        args = list(call.args)
        family = "keyed"
        if last == "spawn_rngs":
            family = "spawn"
            args = args[1:]
        if any(isinstance(a, ast.Starred) for a in args):
            return
        atoms = tuple(self.atom_of(a, finfo) for a in args)
        ref_tags = frozenset().union(*(self.tags_of_expr(a, finfo) for a in args)) if args else frozenset()
        s.seeds.append(
            SeedSite(
                fn=finfo.qname,
                family=family,
                atoms=atoms,
                ref_tags=ref_tags,
                path=path,
                line=call.lineno,
                col=call.col_offset,
            )
        )

    def atom_of(self, arg, finfo):
        """Abstract one seed-key argument: const, param reference, or opaque."""
        try:
            value = ast.literal_eval(arg)
            if isinstance(value, (int, str)):
                return ("const", value)
        except (ValueError, SyntaxError, TypeError):
            pass
        node = arg
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("int", "str")
            and len(node.args) == 1
        ):
            node = node.args[0]
        if isinstance(node, ast.Name):
            if node.id in finfo.params:
                return ("param", node.id)
            if node.id in finfo.module.constants:
                return ("const", finfo.module.constants[node.id])
        return (
            "opaque",
            finfo.qname,
            getattr(arg, "lineno", 0),
            getattr(arg, "col_offset", 0),
        )

    # ------------------------------------------------------------------
    # Transitive (closure) summaries
    # ------------------------------------------------------------------
    def closure_effects(self, finfo: FunctionInfo, depth: int = _MAX_DEPTH, _stack=frozenset()):
        key = (finfo.qname, depth)
        cached = self._closure_cache.get(key)
        if cached is not None:
            return cached
        if finfo.declared_effects is not None:
            out = self._declared_effect_list(finfo)
            self._closure_cache[key] = out
            return out
        s = self.summary(finfo)
        out = list(s.effects)
        if depth > 0:
            for call in s.calls:
                for callee in call.callees:
                    if callee.qname in _stack or callee.qname == finfo.qname:
                        continue
                    for eff in self.closure_effects(callee, depth - 1, _stack | {finfo.qname}):
                        composed = self._compose(eff, call, finfo)
                        if composed is not None:
                            out.append(composed)
        out = out[:_MAX_EFFECTS]
        self._closure_cache[key] = out
        return out

    def _declared_effect_list(self, finfo: FunctionInfo):
        out = []
        spec = finfo.declared_effects
        node = finfo.node
        path = finfo.module.path
        for mode, specs in (("r", spec["reads"]), ("w", spec["writes"])):
            for text in specs:
                m = _DECLARED_SPEC_RE.match(text)
                if m is None:
                    continue
                is_self, name, bracket = m.groups()
                if is_self:
                    root, attrs = ("self", "self"), (name,)
                else:
                    root, attrs = ("param", name), ()
                if bracket is None:
                    index = None
                elif bracket in finfo.params:
                    index = frozenset({bracket})
                else:
                    index = frozenset({"other"})
                gluon = None
                if not is_self:
                    ann = None
                    for a in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs):
                        if a.arg == name:
                            ann = a.annotation
                    tref = self.program.resolve_annotation(ann, finfo.module)
                    if type_basename(tref) == "FieldSync":
                        gluon = "arrays"
                out.append(
                    Effect(
                        mode, root, attrs, frozenset(), index, path,
                        getattr(node, "lineno", 1), getattr(node, "col_offset", 0),
                        gluon=gluon, via=finfo.qname,
                    )
                )
        return out

    def _compose(self, eff: Effect, call: CallSite, caller: FunctionInfo) -> Optional[Effect]:
        kind, name = eff.root
        if kind == "param":
            ab = call.bindings_abs.get(name)
            if ab is None:
                return None
            return replace(
                eff,
                root=ab.root,
                attrs=ab.attrs + eff.attrs,
                select=ab.select | self._remap_tags(eff.select, call),
                index=self._remap_tags(eff.index, call),
                path=caller.module.path,
                line=call.line,
                col=call.col,
                gluon=eff.gluon or ab.gluon,
            )
        if kind == "self":
            if call.recv_is_self:
                # self -> self: keep the callee's location so suppressions
                # can sit next to the defect.
                return replace(eff, index=self._remap_tags(eff.index, call),
                               select=self._remap_tags(eff.select, call) or frozenset())
            if call.recv_abs is not None:
                ab = call.recv_abs
                return replace(
                    eff,
                    root=ab.root,
                    attrs=ab.attrs + eff.attrs,
                    select=ab.select | self._remap_tags(eff.select, call),
                    index=self._remap_tags(eff.index, call),
                    path=caller.module.path,
                    line=call.line,
                    col=call.col,
                    gluon=eff.gluon or ab.gluon,
                )
            return None
        if kind == "global":
            return eff
        if kind == "closure":
            # Valid at the caller only if the callee is nested inside it
            # (the closed-over name is still in scope).
            scope = None
            for callee in call.callees:
                scope = callee.parent
                while scope is not None and scope.qname != caller.qname:
                    scope = scope.parent
                if scope is not None:
                    break
            return eff if scope is not None else None
        return None  # var roots are callee-local objects

    def _remap_tags(self, tags, call: CallSite):
        if tags is None:
            return None
        out = set()
        for tag in tags:
            if tag in ("const", "other", "master"):
                out.add(tag)
            elif tag in call.binding_tags:
                out |= call.binding_tags[tag]
            else:
                out.add("other")
        return frozenset(out)

    def closure_flags(self, finfo: FunctionInfo, depth: int = _MAX_DEPTH, _stack=frozenset()) -> bool:
        s = self.summary(finfo)
        if s.has_flags:
            return True
        if depth <= 0 or finfo.declared_effects is not None:
            return False
        for call in s.calls:
            for callee in call.callees:
                if callee.qname in _stack or callee.qname == finfo.qname:
                    continue
                if self.closure_flags(callee, depth - 1, _stack | {finfo.qname}):
                    return True
        return False

    def closure_barrier(self, finfo: FunctionInfo, depth: int = _MAX_DEPTH, _stack=frozenset()) -> bool:
        s = self.summary(finfo)
        if s.has_barrier:
            return True
        if depth <= 0 or finfo.declared_effects is not None:
            return False
        for call in s.calls:
            for callee in call.callees:
                if callee.qname in _stack or callee.qname == finfo.qname:
                    continue
                if self.closure_barrier(callee, depth - 1, _stack | {finfo.qname}):
                    return True
        return False

    def callers_map(self) -> dict:
        """qname -> set of caller qnames (call edges + do_all operator edges)."""
        if self._callers is not None:
            return self._callers
        self._callers = callers = {}
        for finfo in list(self.program.functions.values()):
            s = self.summary(finfo)
            for call in s.calls:
                for callee in call.callees:
                    callers.setdefault(callee.qname, set()).add(finfo.qname)
            for op_fi, _call in s.doall_ops:
                callers.setdefault(op_fi.qname, set()).add(finfo.qname)
        return callers

    def caller_sites(self, qname: str):
        """All (caller FunctionInfo, CallSite) pairs targeting ``qname``."""
        out = []
        for finfo in list(self.program.functions.values()):
            s = self.summary(finfo)
            for call in s.calls:
                if any(c.qname == qname for c in call.callees):
                    out.append((finfo, call))
        return out
