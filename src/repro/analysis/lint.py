"""AST-based determinism & concurrency linter.

Project-specific rules that encode the repository's determinism contract
(see ``docs/internals.md``, "Static analysis & sanitizers"):

- ``REPRO001`` (unseeded-rng): stochastic choices must flow through the
  seed tree.  Flags the stdlib ``random`` module and NumPy's *global*
  legacy RNG (``np.random.rand`` and friends), plus ``np.random.
  default_rng()`` called without a seed, everywhere except
  ``repro/util/rng.py``.
- ``REPRO002`` (seed-sequence): ``np.random.SeedSequence`` may only be
  touched inside ``repro.util.rng``; everyone else derives sub-seeds via
  ``derive_seed`` / ``keyed_rng`` / ``SeedSequenceTree`` so the seed
  derivation scheme has exactly one implementation.
- ``REPRO003`` (wall-clock): operator/compute code must not read the wall
  clock (``time.time`` / ``time.perf_counter`` / ``time.monotonic``) —
  timing is either the contention-independent ``time.thread_time`` or an
  injected :class:`~repro.galois.timers.StatTimer` clock.  Files that
  legitimately measure end-to-end wall-clock (the experiment harness)
  opt out with a file pragma.
- ``REPRO004`` (unordered-iter): synchronization/combiner code must not
  iterate sets or dict views of host/node ids — set order varies across
  processes and dict insertion order varies with message arrival, so any
  order-dependent fold downstream silently diverges across hosts.  Only
  applies under ``gluon/``, ``dgraph/``, ``cluster/``,
  ``core/combiners.py`` and ``w2v/distributed.py``.
- ``REPRO005`` (doall-closure): operators handed to ``do_all`` must not
  mutate closure state except through the sanctioned channels —
  accumulators/worklists (:mod:`repro.galois.accumulators`), or
  single-writer cells indexed by the operator's own parameter.

The interprocedural rule families (``REPRO101/102`` seed flow,
``REPRO111/112`` do_all effect overlaps, ``REPRO121/122`` gluon sync
protocol) live in :mod:`repro.analysis.dataflow` and run with
``--dataflow``; they report through the same reporters and suppression
machinery as the local rules above.

Suppression: append ``# repro: noqa[REPRO003]`` (or bare
``# repro: noqa`` for all rules) to the offending line, or opt a whole
file out of specific rules with ``# repro: allow-file[REPRO003]`` on any
line.  Suppressions should carry a justification comment.  Only real
comment tokens count — pragma-shaped text inside strings or docstrings
(like the ones in this paragraph) is inert.  ``--report-unused-noqa``
flags pragmas that no longer suppress anything (``REPRO900``).

Run as ``python -m repro.analysis [paths...]``; exits 0 when clean, 1
with findings, 2 on usage or syntax errors.
"""

from __future__ import annotations

import argparse
import ast
from dataclasses import dataclass, replace
import io
import json
from pathlib import Path, PurePath
import re
import sys
import tokenize
from typing import Iterable, Sequence

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "LOCAL_RULE_IDS",
    "lint_source",
    "lint_paths",
    "render_text",
    "render_json",
    "main",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int  # 1-based in finalized findings (text and JSON agree)
    message: str

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "name": RULES[self.rule].name if self.rule in RULES else self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        name = RULES[self.rule].name if self.rule in RULES else "?"
        return f"{self.path}:{self.line}:{self.col}: {self.rule}[{name}] {self.message}"


@dataclass(frozen=True)
class Rule:
    """Identity and one-line documentation of a lint rule."""

    id: str
    name: str
    summary: str


RULES: dict[str, Rule] = {
    "REPRO001": Rule(
        "REPRO001",
        "unseeded-rng",
        "stdlib random / NumPy global RNG / unseeded default_rng outside repro.util.rng",
    ),
    "REPRO002": Rule(
        "REPRO002",
        "seed-sequence",
        "direct np.random.SeedSequence use outside repro.util.rng "
        "(use derive_seed/keyed_rng/SeedSequenceTree)",
    ),
    "REPRO003": Rule(
        "REPRO003",
        "wall-clock",
        "wall-clock read in compute code (use time.thread_time or an injected StatTimer clock)",
    ),
    "REPRO004": Rule(
        "REPRO004",
        "unordered-iter",
        "iteration over a set or dict view in sync/combiner code (order is not "
        "deterministic across hosts; wrap in sorted())",
    ),
    "REPRO005": Rule(
        "REPRO005",
        "doall-closure",
        "do_all operator mutates closure state outside accumulators/worklists "
        "or param-indexed single-writer cells",
    ),
    # Interprocedural dataflow rules (repro.analysis.dataflow, --dataflow).
    "REPRO101": Rule(
        "REPRO101",
        "seed-collision",
        "two stochastic sites instantiate the same constant seed key; their "
        "'independent' streams are bit-identical",
    ),
    "REPRO102": Rule(
        "REPRO102",
        "seed-underkeyed",
        "seed key ignores an available per-host/per-round parameter; every "
        "value of it sees the same RNG stream",
    ),
    "REPRO111": Rule(
        "REPRO111",
        "doall-write-overlap",
        "do_all operator may write shared storage at a non-item-derived index "
        "(cross-chunk write-write overlap; static DoAllRaceSanitizer)",
    ),
    "REPRO112": Rule(
        "REPRO112",
        "doall-read-overlap",
        "do_all operator reads shared storage the same loop writes, outside "
        "its own item (cross-chunk read-write overlap)",
    ),
    "REPRO121": Rule(
        "REPRO121",
        "gluon-unflagged-write",
        "FieldSync mirror write can reach a round barrier without set_many "
        "flagging or a base rebase; sync_replicated would drop the delta",
    ),
    "REPRO122": Rule(
        "REPRO122",
        "gluon-stale-read",
        "FieldSync mirror read outside master_block_slice confinement may "
        "observe pre-sync staleness beyond PullModel's contract",
    ),
    "REPRO900": Rule(
        "REPRO900",
        "unused-suppression",
        "# repro: noqa[...] / allow-file[...] pragma that no longer "
        "suppresses anything (--report-unused-noqa)",
    ),
}

#: Rules produced by the file-local lint passes in this module (the
#: dataflow rules live in repro.analysis.dataflow; REPRO900 is meta).
LOCAL_RULE_IDS = frozenset({f"REPRO00{i}" for i in range(1, 6)})

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")
_ALLOW_FILE_RE = re.compile(r"#\s*repro:\s*allow-file\[([A-Za-z0-9_,\s]+)\]")

#: NumPy legacy global-RNG entry points (module-level ``np.random.<fn>``).
_NP_GLOBAL_FNS = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_integers",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "bytes",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "beta",
        "binomial",
        "poisson",
        "exponential",
        "gamma",
        "rayleigh",
        "get_state",
        "set_state",
    }
)

#: Wall-clock readers in the ``time`` module.  ``thread_time`` and
#: ``process_time`` are deliberately absent: they are the sanctioned
#: contention-independent clocks for operator timing.
_WALLCLOCK_FNS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
    }
)

#: Constructors whose instances an operator may mutate from a closure:
#: thread-safe reducibles and worklists with single-writer discipline.
_SANCTIONED_CTORS = frozenset(
    {
        "GAccumulator",
        "GReduceMax",
        "GReduceMin",
        "ChunkedWorklist",
        "Worklist",
        "DoAllRaceSanitizer",
    }
)

#: Mutating container method names an operator may not call on closure names.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "clear",
        "pop",
        "popitem",
        "setdefault",
        "update",
        "add",
        "discard",
        "push",
    }
)


# ----------------------------------------------------------------------
# Path scoping
# ----------------------------------------------------------------------
def _posix(path: str | PurePath) -> str:
    return "/" + PurePath(path).as_posix().lstrip("/")


def _is_rng_module(path: str) -> bool:
    return _posix(path).endswith("/util/rng.py")


def _in_sync_scope(path: str) -> bool:
    p = _posix(path)
    if any(seg in p for seg in ("/gluon/", "/dgraph/", "/cluster/")):
        return True
    return p.endswith("/core/combiners.py") or p.endswith("/w2v/distributed.py")


# ----------------------------------------------------------------------
# Import alias resolution
# ----------------------------------------------------------------------
class _Imports(ast.NodeVisitor):
    """Collects local names bound to the modules the rules care about."""

    def __init__(self) -> None:
        self.numpy: set[str] = set()  # names bound to the numpy module
        self.np_random: set[str] = set()  # names bound to numpy.random
        self.time: set[str] = set()  # names bound to the time module
        self.from_time: dict[str, str] = {}  # local name -> time.<fn>
        self.seed_sequence: set[str] = set()  # names bound to SeedSequence

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy" or alias.name.startswith("numpy."):
                if alias.asname and alias.name == "numpy.random":
                    self.np_random.add(local)
                else:
                    self.numpy.add(local)
            elif alias.name == "time":
                self.time.add(local)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.np_random.add(alias.asname or alias.name)
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name == "SeedSequence":
                    self.seed_sequence.add(alias.asname or alias.name)
        elif node.module == "time":
            for alias in node.names:
                self.from_time[alias.asname or alias.name] = f"time.{alias.name}"


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chains as a dotted string, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _np_random_member(expr: ast.expr, imports: _Imports) -> str | None:
    """The member name if ``expr`` is ``<numpy>.random.<member>`` (or an
    alias of ``numpy.random`` dotted with ``<member>``)."""
    dotted = _dotted(expr)
    if dotted is None:
        return None
    parts = dotted.split(".")
    if len(parts) == 3 and parts[0] in imports.numpy and parts[1] == "random":
        return parts[2]
    if len(parts) == 2 and parts[0] in imports.np_random:
        return parts[1]
    return None


# ----------------------------------------------------------------------
# Rule checkers
# ----------------------------------------------------------------------
def _check_rng(tree: ast.AST, imports: _Imports, path: str) -> list[Finding]:
    """REPRO001 + REPRO002."""
    if _is_rng_module(path):
        return []
    findings: list[Finding] = []

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    findings.append(
                        Finding(
                            "REPRO001",
                            path,
                            node.lineno,
                            node.col_offset,
                            "stdlib random is process-global and unseeded here; "
                            "draw from repro.util.rng instead",
                        )
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                findings.append(
                    Finding(
                        "REPRO001",
                        path,
                        node.lineno,
                        node.col_offset,
                        "stdlib random is process-global and unseeded here; "
                        "draw from repro.util.rng instead",
                    )
                )
            elif node.module == "numpy.random":
                for alias in node.names:
                    if alias.name == "SeedSequence":
                        findings.append(
                            Finding(
                                "REPRO002",
                                path,
                                node.lineno,
                                node.col_offset,
                                "import of numpy.random.SeedSequence outside "
                                "repro.util.rng; use derive_seed/keyed_rng",
                            )
                        )
        elif isinstance(node, ast.Attribute):
            member = _np_random_member(node, imports)
            if member == "SeedSequence":
                findings.append(
                    Finding(
                        "REPRO002",
                        path,
                        node.lineno,
                        node.col_offset,
                        "direct np.random.SeedSequence use outside repro.util.rng; "
                        "use derive_seed(*key) or keyed_rng(*key)",
                    )
                )
            elif member in _NP_GLOBAL_FNS:
                findings.append(
                    Finding(
                        "REPRO001",
                        path,
                        node.lineno,
                        node.col_offset,
                        f"np.random.{member} uses NumPy's global RNG; pass an "
                        "explicit seeded Generator (repro.util.rng)",
                    )
                )
        elif isinstance(node, ast.Call):
            member = _np_random_member(node.func, imports)
            if member == "default_rng" and not node.args and not node.keywords:
                findings.append(
                    Finding(
                        "REPRO001",
                        path,
                        node.lineno,
                        node.col_offset,
                        "np.random.default_rng() without a seed is entropy-seeded; "
                        "derive the seed from the run's seed tree",
                    )
                )
    return findings


def _check_wallclock(tree: ast.AST, imports: _Imports, path: str) -> list[Finding]:
    """REPRO003."""
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) == 2 and parts[0] in imports.time and parts[1] in _WALLCLOCK_FNS:
                findings.append(
                    Finding(
                        "REPRO003",
                        path,
                        node.lineno,
                        node.col_offset,
                        f"time.{parts[1]} reads the wall clock; operator/compute "
                        "timing must use time.thread_time or an injected "
                        "StatTimer clock",
                    )
                )
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _WALLCLOCK_FNS:
                    findings.append(
                        Finding(
                            "REPRO003",
                            path,
                            node.lineno,
                            node.col_offset,
                            f"from time import {alias.name} pulls a wall clock into "
                            "compute code; use time.thread_time or an injected "
                            "StatTimer clock",
                        )
                    )
    return findings


def _check_unordered_iter(tree: ast.AST, path: str) -> list[Finding]:
    """REPRO004 (only in sync/combiner scope)."""
    if not _in_sync_scope(path):
        return []
    findings: list[Finding] = []

    def iter_sites(node: ast.AST) -> Iterable[ast.expr]:
        if isinstance(node, ast.For):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter

    for node in ast.walk(tree):
        for it in iter_sites(node):
            reason: str | None = None
            if isinstance(it, (ast.Set, ast.SetComp)):
                reason = "a set expression"
            elif isinstance(it, ast.Call):
                if isinstance(it.func, ast.Name) and it.func.id in ("set", "frozenset"):
                    reason = f"{it.func.id}(...)"
                elif isinstance(it.func, ast.Attribute) and it.func.attr in (
                    "keys",
                    "values",
                    "items",
                ):
                    reason = f".{it.func.attr}() of a dict"
            if reason is not None:
                findings.append(
                    Finding(
                        "REPRO004",
                        path,
                        it.lineno,
                        it.col_offset,
                        f"iterating {reason}: set order is nondeterministic and dict "
                        "insertion order varies with message arrival across hosts; "
                        "iterate sorted(...) instead",
                    )
                )
    return findings


class _FuncIndex(ast.NodeVisitor):
    """Maps function names to their defs, and collects names constructed
    from sanctioned (accumulator/worklist) constructors."""

    def __init__(self) -> None:
        self.defs: dict[str, list[ast.FunctionDef | ast.AsyncFunctionDef]] = {}
        self.sanctioned_names: set[str] = set()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.defs.setdefault(node.name, []).append(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        ctor: str | None = None
        if isinstance(node.value, ast.Call):
            if isinstance(node.value.func, ast.Name):
                ctor = node.value.func.id
            elif isinstance(node.value.func, ast.Attribute):
                ctor = node.value.func.attr
        if ctor in _SANCTIONED_CTORS:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.sanctioned_names.add(target.id)
        self.generic_visit(node)


def _local_names(func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> set[str]:
    """Names bound inside ``func`` (params + assignment/loop/with targets)."""
    args = func.args
    names = {
        a.arg
        for a in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]
    }
    if isinstance(func, ast.Lambda):
        return names
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
            names.add(node.name)
    return names


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> set[str]:
    args = func.args
    return {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}


def _check_operator_body(
    func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
    index: _FuncIndex,
    path: str,
    call_line: int,
) -> list[Finding]:
    findings: list[Finding] = []
    local = _local_names(func)
    params = _param_names(func)

    def flag(node: ast.AST, what: str) -> None:
        findings.append(
            Finding(
                "REPRO005",
                path,
                node.lineno,
                node.col_offset,
                f"do_all operator (used at line {call_line}) {what}; route shared "
                "state through accumulators/worklists or param-indexed "
                "single-writer cells",
            )
        )

    def closure_name(expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name) and expr.id not in local:
            return expr.id
        return None

    def index_ok(slice_expr: ast.expr) -> bool:
        """A store index is single-writer when it derives from the
        operator's own scope and involves at least one variable (a
        constant index would make every invocation write one cell)."""
        names = [n.id for n in ast.walk(slice_expr) if isinstance(n, ast.Name)]
        if not names:
            return False
        return all(n in local or n in params for n in names)

    body = func.body if isinstance(func.body, list) else [func.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Nonlocal, ast.Global)):
                flag(node, f"declares {type(node).__name__.lower()} state and rebinds it")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        base = closure_name(target.value)
                        if base is not None and base not in index.sanctioned_names:
                            if not index_ok(target.slice):
                                flag(
                                    node,
                                    f"writes closure container {base!r} at an index "
                                    "not derived from the operator's parameters",
                                )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATOR_METHODS:
                    base = closure_name(node.func.value)
                    if base is not None and base not in index.sanctioned_names:
                        flag(
                            node,
                            f"calls mutating method .{node.func.attr}() on closure "
                            f"name {base!r}",
                        )
    return findings


def _check_doall_closures(tree: ast.AST, path: str) -> list[Finding]:
    """REPRO005."""
    index = _FuncIndex()
    index.visit(tree)
    findings: list[Finding] = []
    seen: set[int] = set()

    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
            continue
        if node.func.id != "do_all":
            continue
        operator: ast.expr | None = None
        if len(node.args) >= 2:
            operator = node.args[1]
        for kw in node.keywords:
            if kw.arg == "operator":
                operator = kw.value
        if operator is None:
            continue
        if isinstance(operator, ast.Lambda):
            findings.extend(_check_operator_body(operator, index, path, node.lineno))
        elif isinstance(operator, ast.Name):
            for func in index.defs.get(operator.id, []):
                if id(func) in seen:
                    continue
                seen.add(id(func))
                findings.extend(_check_operator_body(func, index, path, node.lineno))
    return findings


# ----------------------------------------------------------------------
# Suppression handling & entry points
# ----------------------------------------------------------------------
def _rule_ids(raw: str) -> set[str]:
    return {part.strip() for part in raw.split(",") if part.strip()}


@dataclass(frozen=True)
class _Pragma:
    kind: str  # "noqa" or "allow-file"
    line: int
    col: int  # 0-based column of the comment token
    rules: frozenset[str] | None  # None = all rules (bare noqa)


def _collect_pragmas(source: str) -> list[_Pragma]:
    """Suppression pragmas from *comment tokens* only.

    Tokenizing (rather than regex-scanning raw lines) keeps pragma-shaped
    text inside docstrings and string literals from acting as a live
    suppression — this module's own docstring documents the pragma syntax
    and must not thereby suppress anything.
    """
    pragmas: list[_Pragma] = []

    def scan(text: str, line: int, col: int) -> None:
        allow = _ALLOW_FILE_RE.search(text)
        if allow:
            pragmas.append(
                _Pragma("allow-file", line, col, frozenset(_rule_ids(allow.group(1))))
            )
        noqa = _NOQA_RE.search(text)
        if noqa:
            rules = frozenset(_rule_ids(noqa.group(1))) if noqa.group(1) else None
            pragmas.append(_Pragma("noqa", line, col, rules))

    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                scan(tok.string, tok.start[0], tok.start[1])
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unterminated constructs etc.: fall back to a raw line scan so a
        # broken file never silently loses its suppressions.
        pragmas.clear()
        for lineno, text in enumerate(source.splitlines(), start=1):
            scan(text, lineno, 0)
    return pragmas


def _apply_suppressions(findings: list[Finding], source: str) -> list[Finding]:
    file_allowed: set[str] = set()
    noqa_by_line: dict[int, set[str] | None] = {}  # None = all rules
    for pragma in _collect_pragmas(source):
        if pragma.kind == "allow-file":
            file_allowed |= set(pragma.rules or ())
        else:
            existing = noqa_by_line.get(pragma.line, set())
            if pragma.rules is None or existing is None:
                noqa_by_line[pragma.line] = None  # bare noqa wins: all rules
            else:
                noqa_by_line[pragma.line] = existing | set(pragma.rules)

    kept: list[Finding] = []
    for f in findings:
        if f.rule in file_allowed:
            continue
        rules = noqa_by_line.get(f.line, "missing")
        if rules is None or (isinstance(rules, set) and f.rule in rules):
            continue
        kept.append(f)
    return kept


def _finalize_findings(
    findings: list[Finding], source: str, select: Iterable[str] | None = None
) -> list[Finding]:
    """Shared post-processing for every pass: shift raw ``col_offset``
    columns to 1-based, filter by ``select``, apply suppressions, sort."""
    findings = [replace(f, col=f.col + 1) for f in findings]
    if select is not None:
        wanted = set(select)
        findings = [f for f in findings if f.rule in wanted]
    findings = _apply_suppressions(findings, source)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _raw_lint_findings(source: str, path: str = "<string>") -> list[Finding]:
    """The file-local rule findings, unsuppressed, with raw 0-based columns."""
    tree = ast.parse(source, filename=path)
    imports = _Imports()
    imports.visit(tree)
    findings: list[Finding] = []
    findings += _check_rng(tree, imports, path)
    findings += _check_wallclock(tree, imports, path)
    findings += _check_unordered_iter(tree, path)
    findings += _check_doall_closures(tree, path)
    return findings


def lint_source(
    source: str, path: str = "<string>", select: Iterable[str] | None = None
) -> list[Finding]:
    """Lint one module's source; returns suppression-filtered findings."""
    return _finalize_findings(_raw_lint_findings(source, path), source, select)


def _collect_files(paths: Sequence[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
        else:
            raise FileNotFoundError(f"not a python file or directory: {p}")
    return files


def lint_paths(
    paths: Sequence[str | Path], select: Iterable[str] | None = None
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: list[Finding] = []
    for file in _collect_files(paths):
        findings.extend(
            lint_source(file.read_text(encoding="utf-8"), str(file), select=select)
        )
    return findings


def _unused_suppressions(
    sources: dict[str, str],
    raw_by_file: dict[str, list[Finding]],
    checked_rules: frozenset[str] | set[str],
) -> list[Finding]:
    """REPRO900 findings for pragmas that no longer suppress anything.

    ``raw_by_file`` must hold *unsuppressed* findings from every pass that
    actually ran; ``checked_rules`` names those passes' rules.  A pragma
    mentioning only rules outside ``checked_rules`` is left alone — this
    run cannot tell whether it is stale.  REPRO900 findings are exempt
    from suppression on purpose: a stale bare ``# repro: noqa`` would
    otherwise suppress its own staleness report.
    """
    findings: list[Finding] = []
    for path, source in sources.items():
        raw = raw_by_file.get(path, [])
        rules_by_line: dict[int, set[str]] = {}
        rules_in_file: set[str] = set()
        for f in raw:
            rules_by_line.setdefault(f.line, set()).add(f.rule)
            rules_in_file.add(f.rule)
        for pragma in _collect_pragmas(source):
            if pragma.kind == "noqa":
                hit_rules = rules_by_line.get(pragma.line, set())
                if pragma.rules is None:
                    if hit_rules:
                        continue
                    detail = "bare '# repro: noqa' suppresses nothing on this line"
                else:
                    relevant = pragma.rules & checked_rules
                    if not relevant:
                        continue
                    stale = sorted(relevant - hit_rules)
                    if not stale:
                        continue
                    detail = (
                        f"noqa[{', '.join(stale)}] suppresses nothing on this line"
                    )
            else:  # allow-file
                relevant = (pragma.rules or frozenset()) & checked_rules
                if not relevant:
                    continue
                stale = sorted(relevant - rules_in_file)
                if not stale:
                    continue
                detail = (
                    f"allow-file[{', '.join(stale)}] suppresses nothing in this file"
                )
            findings.append(
                Finding(
                    "REPRO900",
                    path,
                    pragma.line,
                    pragma.col + 1,
                    f"{detail}; remove the stale pragma",
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings


def render_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "repro.analysis: clean"
    lines = [f.render() for f in findings]
    lines.append(f"repro.analysis: {len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    return json.dumps(
        {
            "findings": [f.as_dict() for f in findings],
            "counts": dict(sorted(counts.items())),
            "total": len(findings),
        },
        indent=2,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="determinism & concurrency linter for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument("--format", choices=["text", "json"], default="text")
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to enable (default: all)",
    )
    parser.add_argument(
        "--dataflow",
        action="store_true",
        help="also run the interprocedural dataflow passes (REPRO1xx)",
    )
    parser.add_argument(
        "--report-unused-noqa",
        action="store_true",
        help="flag noqa/allow-file pragmas that no longer suppress anything "
        "(REPRO900, judged against the passes that ran)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.id}  {rule.name:20s} {rule.summary}")
        return 0

    select = _rule_ids(args.select) if args.select else None
    if select:
        unknown = select - set(RULES)
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
    try:
        files = _collect_files(args.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    sources = {str(f): f.read_text(encoding="utf-8") for f in files}
    raw_by_file: dict[str, list[Finding]] = {}
    try:
        for path, source in sources.items():
            raw_by_file[path] = _raw_lint_findings(source, path)
        if args.dataflow:
            from . import dataflow as _dataflow

            for f in _dataflow.analyze_files(files):
                raw_by_file.setdefault(f.path, []).append(f)
    except SyntaxError as exc:
        print(f"error: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for path, source in sources.items():
        findings.extend(_finalize_findings(raw_by_file.get(path, []), source, select))
    if args.report_unused_noqa:
        checked = set(LOCAL_RULE_IDS)
        if args.dataflow:
            from .dataflow import DATAFLOW_RULE_IDS

            checked |= DATAFLOW_RULE_IDS
        findings.extend(_unused_suppressions(sources, raw_by_file, checked))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    print(render_json(findings) if args.format == "json" else render_text(findings))
    return 1 if findings else 0
