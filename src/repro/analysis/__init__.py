"""Static analysis and runtime sanitizers for determinism & race checking.

The simulator's headline invariants — bit-identical models across
communication plans, executors, and fault schedules — only hold if every
stochastic choice flows through the seed tree, no operator races on shared
state, and every mirror/master exchange follows the Gluon
reduce-then-broadcast protocol.  This package *checks* those disciplines
instead of trusting them:

- :mod:`repro.analysis.lint` — an AST-based linter with project-specific
  rules (unseeded RNG use, wall-clock in compute paths, nondeterministic
  set/dict iteration in sync code, closure mutation inside ``do_all``
  operators).  Run it as ``python -m repro.analysis [paths]``.
- :mod:`repro.analysis.dataflow` — interprocedural dataflow passes over a
  whole-package call graph (:mod:`repro.analysis.callgraph`) and
  per-function effect/seed summaries (:mod:`repro.analysis.summaries`):
  seed-key collisions and underkeyed streams (``REPRO101/102``),
  statically-possible cross-chunk ``do_all`` overlaps (``REPRO111/112``),
  and gluon sync-protocol violations (``REPRO121/122``).  Run with
  ``python -m repro.analysis --dataflow [paths]``; numeric kernels opt
  out of body analysis with :func:`repro.analysis.effects.declare_effects`.
- :mod:`repro.analysis.runtime` — runtime sanitizers: a ``do_all`` data-race
  detector that shadow-records per-chunk NumPy access sets, and a
  :class:`~repro.analysis.runtime.GluonSyncChecker` that tracks per-field
  dirty/stale state across synchronization rounds.  Both observe and never
  perturb: a sanitized run is bit-identical to an unsanitized one.  Enable
  via ``GraphWord2Vec(sanitize=True)``, ``repro train --sanitize``, or
  ``REPRO_SANITIZE=1``.
"""

from repro.analysis.dataflow import DATAFLOW_RULE_IDS, analyze_paths
from repro.analysis.effects import declare_effects
from repro.analysis.lint import (
    Finding,
    Rule,
    RULES,
    lint_paths,
    lint_source,
    main,
    render_json,
    render_text,
)
from repro.analysis.runtime import (
    SANITIZE_ENV_VAR,
    DoAllRaceSanitizer,
    GluonSyncChecker,
    SanitizedExecutor,
    SanitizeError,
    SanitizeFinding,
    note_read,
    note_write,
    sanitize_from_env,
)

__all__ = [
    "DATAFLOW_RULE_IDS",
    "Finding",
    "Rule",
    "RULES",
    "analyze_paths",
    "declare_effects",
    "lint_paths",
    "lint_source",
    "main",
    "render_json",
    "render_text",
    "SANITIZE_ENV_VAR",
    "DoAllRaceSanitizer",
    "GluonSyncChecker",
    "SanitizedExecutor",
    "SanitizeError",
    "SanitizeFinding",
    "note_read",
    "note_write",
    "sanitize_from_env",
]
