"""Interprocedural dataflow rules on top of the lint driver.

Three rule families, all driven by the call graph
(:mod:`repro.analysis.callgraph`) and per-function summaries
(:mod:`repro.analysis.summaries`):

**Seed flow** — the reproduction contract derives every RNG from the run
seed through ``derive_seed``/``keyed_rng`` key tuples.

- ``REPRO101`` *seed-collision*: two distinct call sites whose key
  tuples instantiate (through the call graph, including parameter
  defaults) to the same fully-constant key.  The two "independent"
  streams are bit-identical.
- ``REPRO102`` *seed-underkeyed*: a seed key built in a function that
  has a per-host/per-round style parameter (``host``, ``round``,
  ``rank``, ``worker``, ``shard``, ``replica``, ``epoch``, ``chunk``,
  ``part``) which the key never references — every value of that
  parameter sees the same stream.

**do_all effects** — the static counterpart of ``DoAllRaceSanitizer``.

- ``REPRO111`` *doall-write-overlap*: an operator (or anything it calls,
  summaries compose transitively) writes shared storage at an index not
  derived from its item parameter: two chunks may write the same cell.
- ``REPRO112`` *doall-read-overlap*: an operator reads shared storage
  that the same loop also writes, and the read is not confined to the
  operator's own item: a chunk may observe another chunk's
  partially-applied writes.

**Gluon sync protocol** — the static counterpart of
``GluonSyncChecker``, scoped to *clients* of the protocol.  The protocol
engines themselves are exempt: ``repro/gluon/sync.py`` (the BSP fold)
and ``repro/dgraph/async_engine.py`` (the bounded-staleness fold, whose
capture-and-rebase discipline legally reads and writes mirrors outside
``set_many`` flagging — its staleness is bounded dynamically by
``GluonSyncChecker.note_async_step``), plus the analysis package.

- ``REPRO121`` *gluon-unflagged-write*: a write to a ``FieldSync``
  mirror (``field.arrays[...]``) in barrier-reaching code with no
  ``set_many``/``BitVector.set`` flagging and no base rebase
  (``arrays`` + ``bases`` written together) in the function or its
  direct callers — ``sync_replicated`` would drop the delta.
- ``REPRO122`` *gluon-stale-read*: a mirror read outside the
  ``master_block_slice`` confinement and outside a flagged/rebasing
  context — it may observe pre-sync staleness beyond PullModel's
  confined-staleness contract.

Findings are raw here (0-based columns, unsuppressed); the lint driver
finalizes them with the shared suppression/column machinery so
``# repro: noqa[...]`` and ``allow-file`` work unchanged.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
import re
from typing import Optional, Sequence

from .callgraph import Program
from .lint import Finding, _collect_files, _finalize_findings, _is_rng_module
from .summaries import SeedSite, SummaryBuilder

__all__ = ["DATAFLOW_RULE_IDS", "analyze_files", "analyze_paths"]

DATAFLOW_RULE_IDS = frozenset(
    {"REPRO101", "REPRO102", "REPRO111", "REPRO112", "REPRO121", "REPRO122"}
)

_HOSTISH_RE = re.compile(
    r"(host|round|rank|worker|shard|replica|epoch|chunk|part)", re.IGNORECASE
)
# Extent/count parameters (num_hosts, epochs, rounds_per_epoch) name *how
# many* of something there are, not *which one* this is — a single stream
# drawn in canonical order over the extent is the correct pattern there.
_COUNTISH_RE = re.compile(r"(^(num|n|max|min|total)_|_per_|s$)", re.IGNORECASE)


def _identity_params(params) -> list:
    return [p for p in params if _HOSTISH_RE.search(p) and not _COUNTISH_RE.search(p)]

_MAX_KEY_INSTANCES = 64
_INSTANTIATE_DEPTH = 4


def _posix(path: str) -> str:
    return "/" + PurePath(path).as_posix().lstrip("/")


def _is_analysis_module(path: str) -> bool:
    return "/analysis/" in _posix(path)


def _is_sync_engine(path: str) -> bool:
    # Both fold engines implement the protocol REPRO121/122 police its
    # *clients* for: the BSP fold, and the async engine whose bounded-
    # staleness mirror reads/writes are legal by construction (checked
    # dynamically via GluonSyncChecker.note_async_step, not statically).
    p = _posix(path)
    return p.endswith("/gluon/sync.py") or p.endswith("/dgraph/async_engine.py")


# ----------------------------------------------------------------------
# Seed flow (REPRO101 / REPRO102)
# ----------------------------------------------------------------------
def _fmt_key(atoms) -> str:
    return "(" + ", ".join(repr(a[1]) for a in atoms) + ")"


def _param_default(finfo, name: str) -> Optional[ast.expr]:
    args = finfo.node.args
    positional = [*args.posonlyargs, *args.args]
    defaults = list(args.defaults)
    for arg, default in zip(reversed(positional), reversed(defaults)):
        if arg.arg == name:
            return default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if arg.arg == name and default is not None:
            return default
    return None


def _instantiate_keys(site: SeedSite, sb: SummaryBuilder):
    """All fully-substituted key tuples reachable by walking callers up."""
    program = sb.program
    results: list = []

    def rec(atoms, fn_qname, depth, seen):
        if len(results) >= _MAX_KEY_INSTANCES:
            return
        open_params = [a[1] for a in atoms if a[0] == "param"]
        if not open_params:
            results.append(tuple(atoms))
            return
        if depth <= 0:
            return
        finfo = program.functions.get(fn_qname)
        substituted_any = False
        for caller_fi, call in sb.caller_sites(fn_qname):
            if caller_fi.qname in seen:
                continue
            sub = []
            ok = True
            for a in atoms:
                if a[0] != "param":
                    sub.append(a)
                    continue
                actual = call.bound_exprs.get(a[1])
                if actual is None and finfo is not None:
                    actual = _param_default(finfo, a[1])
                    if actual is not None:
                        sub.append(sb.atom_of(actual, finfo))
                        continue
                if actual is None:
                    ok = False
                    break
                sub.append(sb.atom_of(actual, caller_fi))
            if ok:
                substituted_any = True
                rec(sub, caller_fi.qname, depth - 1, seen | {caller_fi.qname})
        if not substituted_any and finfo is not None:
            # No caller in the analyzed set: defaults are still a real
            # instantiation (the function is an entry point).
            sub = []
            for a in atoms:
                if a[0] != "param":
                    sub.append(a)
                    continue
                default = _param_default(finfo, a[1])
                if default is None:
                    return
                sub.append(sb.atom_of(default, finfo))
            rec(sub, fn_qname, 0, seen)

    rec(list(site.atoms), site.fn, _INSTANTIATE_DEPTH, {site.fn})
    return results


def _seed_pass(program: Program, sb: SummaryBuilder) -> list:
    findings: list = []
    sites: list = []
    for finfo in list(program.functions.values()):
        path = finfo.module.path
        if _is_rng_module(path) or _is_analysis_module(path):
            continue
        sites.extend(sb.summary(finfo).seeds)

    # REPRO102: the key ignores an available per-host/per-round parameter.
    for site in sites:
        finfo = program.functions.get(site.fn)
        if finfo is None:
            continue
        hostish = _identity_params(finfo.params)
        if not hostish or site.ref_tags & set(hostish):
            continue
        findings.append(
            Finding(
                "REPRO102",
                site.path,
                site.line,
                site.col,
                f"seed key ignores the per-{'/'.join(hostish)} parameter(s) of "
                f"{finfo.name}(); every value sees the same RNG stream — add the "
                "distinguishing component to the key",
            )
        )

    # REPRO101: two distinct sites instantiate to the same constant key.
    by_key: dict = {}
    for site in sites:
        for atoms in _instantiate_keys(site, sb):
            if all(a[0] == "const" for a in atoms):
                by_key.setdefault((site.family, atoms), {})[(site.path, site.line)] = site
    for (family, atoms), site_map in sorted(
        by_key.items(), key=lambda kv: (kv[0][0], repr(kv[0][1]))
    ):
        if len(site_map) < 2:
            continue
        ordered = [site_map[k] for k in sorted(site_map)]
        first = ordered[0]
        for site in ordered[1:]:
            findings.append(
                Finding(
                    "REPRO101",
                    site.path,
                    site.line,
                    site.col,
                    f"seed key {_fmt_key(atoms)} duplicates the key built at "
                    f"{first.path}:{first.line}; the two streams are bit-identical "
                    "(correlated randomness)",
                )
            )
    return findings


# ----------------------------------------------------------------------
# do_all effect overlaps (REPRO111 / REPRO112)
# ----------------------------------------------------------------------
def _item_confined(effect, item: str) -> bool:
    if item in effect.select:
        return True
    if effect.index is None:
        return False
    return item in effect.index and "other" not in effect.index


def _doall_pass(program: Program, sb: SummaryBuilder) -> list:
    findings: list = []
    seen_ops: set = set()
    for finfo in list(program.functions.values()):
        if _is_analysis_module(finfo.module.path):
            continue
        for op_fi, call in sb.summary(finfo).doall_ops:
            if op_fi.qname in seen_ops:
                continue
            seen_ops.add(op_fi.qname)
            params = op_fi.params
            if not params:
                continue
            item = params[0]
            effects = sb.closure_effects(op_fi)
            shared = [
                e
                for e in effects
                if e.root[0] in ("closure", "self", "global", "param")
                and not (e.root[0] == "param" and e.root[1] == item)
            ]
            writes = [e for e in shared if e.mode == "w"]
            reads = [e for e in shared if e.mode == "r"]
            write_keys = set()
            flagged = set()
            for w in writes:
                write_keys.add((w.root, w.attrs))
                if _item_confined(w, item):
                    continue
                loc = ("REPRO111", w.path, w.line, w.col)
                if loc in flagged:
                    continue
                flagged.add(loc)
                findings.append(
                    Finding(
                        "REPRO111",
                        w.path,
                        w.line,
                        w.col,
                        f"do_all operator {op_fi.name!r} (used at "
                        f"{finfo.module.path}:{call.lineno}) may write "
                        f"{w.describe()} at an index not derived from its item "
                        f"parameter {item!r}; two chunks can write the same cell "
                        "(static counterpart of DoAllRaceSanitizer)",
                    )
                )
                flagged.add((w.root, w.attrs))
            for r in reads:
                key = (r.root, r.attrs)
                if key not in write_keys or key in flagged:
                    continue
                if _item_confined(r, item):
                    continue
                loc = ("REPRO112", r.path, r.line, r.col)
                if loc in flagged:
                    continue
                flagged.add(loc)
                findings.append(
                    Finding(
                        "REPRO112",
                        r.path,
                        r.line,
                        r.col,
                        f"do_all operator {op_fi.name!r} (used at "
                        f"{finfo.module.path}:{call.lineno}) reads {r.describe()} "
                        "which the same loop also writes, outside its own item "
                        f"{item!r}; a chunk may observe another chunk's "
                        "partially-applied writes",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# Gluon sync protocol (REPRO121 / REPRO122)
# ----------------------------------------------------------------------
def _gluon_pass(program: Program, sb: SummaryBuilder) -> list:
    findings: list = []
    callers = sb.callers_map()
    for finfo in list(program.functions.values()):
        path = finfo.module.path
        if _is_analysis_module(path) or _is_sync_engine(path) or _is_rng_module(path):
            continue
        effects = sb.closure_effects(finfo)
        mirror_w = [e for e in effects if e.mode == "w" and e.gluon == "arrays"]
        mirror_r = [e for e in effects if e.mode == "r" and e.gluon == "arrays"]
        if not mirror_w and not mirror_r:
            continue
        has_rebase = any(e.mode == "w" and e.gluon == "bases" for e in effects)
        has_flags = sb.closure_flags(finfo)
        barrier = sb.closure_barrier(finfo)
        caller_flags = caller_rebase = caller_barrier = False
        for caller_q in sorted(callers.get(finfo.qname, ())):
            caller_fi = program.functions.get(caller_q)
            if caller_fi is None:
                continue
            caller_flags = caller_flags or sb.closure_flags(caller_fi)
            caller_barrier = caller_barrier or sb.closure_barrier(caller_fi)
            if not caller_rebase:
                caller_rebase = any(
                    e.mode == "w" and e.gluon == "bases"
                    for e in sb.closure_effects(caller_fi)
                )
        if not (barrier or caller_barrier):
            continue  # never reaches a round barrier we can see
        flagged_ctx = has_flags or caller_flags
        rebase_ctx = has_rebase or caller_rebase
        if not (flagged_ctx or rebase_ctx):
            for e in mirror_w:
                findings.append(
                    Finding(
                        "REPRO121",
                        e.path,
                        e.line,
                        e.col,
                        f"write to mirror {e.describe()} reaches a round barrier "
                        "with no set_many/BitVector.set flagging and no base "
                        "rebase in scope; sync_replicated would drop this delta "
                        "(static counterpart of GluonSyncChecker)",
                    )
                )
        for e in mirror_r:
            tags = e.select | (e.index or frozenset())
            if "master" in tags:
                continue  # confined to the master block: always fresh
            if flagged_ctx or rebase_ctx:
                continue
            findings.append(
                Finding(
                    "REPRO122",
                    e.path,
                    e.line,
                    e.col,
                    f"read of mirror {e.describe()} outside master_block_slice "
                    "confinement and outside a flagged sync round; it may observe "
                    "pre-sync staleness beyond PullModel's contract",
                )
            )
    return findings


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def analyze_files(files: Sequence) -> list:
    """Raw dataflow findings (0-based columns, unsuppressed) for ``files``."""
    program = Program.build(files)
    sb = SummaryBuilder(program)
    findings = _seed_pass(program, sb)
    findings += _doall_pass(program, sb)
    findings += _gluon_pass(program, sb)
    unique: dict = {}
    for f in findings:
        unique.setdefault((f.rule, f.path, f.line, f.col, f.message), f)
    return list(unique.values())


def analyze_paths(paths: Sequence, select=None) -> list:
    """Finalized dataflow findings for ``paths`` (files or directories).

    Applies the shared suppression machinery and 1-based column
    normalization, exactly like ``lint_paths`` does for the local rules.
    """
    files = _collect_files(paths)
    raw = analyze_files(files)
    by_path: dict = {}
    for f in raw:
        by_path.setdefault(f.path, []).append(f)
    sources = {str(f): f.read_text(encoding="utf-8") for f in files}
    out: list = []
    for path in sorted(by_path):
        source = sources.get(path)
        if source is None:
            continue
        out.extend(_finalize_findings(by_path[path], source, select))
    out.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return out
