"""Analogical-reasoning evaluation (paper §5.1).

The word2vec question-words task: for "a : b :: c : ?", predict the word
whose embedding is nearest (cosine) to ``v_b − v_a + v_c`` (3CosAdd),
excluding the three question words.  Questions come tagged by category; the
paper reports semantic, syntactic, and total accuracy averaged over the
categories, which we mirror (macro average; the micro average is also
returned).

Levy & Goldberg's 3CosMul objective is available as ``method="mul"``:
candidates are scored ``(cos'(d,b) · cos'(d,c)) / (cos'(d,a) + ε)`` with
cosines shifted to [0, 1]; it often resolves analogies 3CosAdd misses when
one term dominates the sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.text.synthetic import SEMANTIC, SYNTACTIC, AnalogyQuestionSet
from repro.text.vocab import Vocabulary
from repro.w2v.model import Word2VecModel

__all__ = ["AnalogyAccuracy", "evaluate_analogies"]


@dataclass
class AnalogyAccuracy:
    """Accuracy summary in the shape of the paper's Table 3."""

    semantic: float
    syntactic: float
    total: float
    micro: float
    per_family: dict[str, float] = field(default_factory=dict)
    num_questions: int = 0

    def __str__(self) -> str:
        return (
            f"semantic={self.semantic:.2%} syntactic={self.syntactic:.2%} "
            f"total={self.total:.2%} ({self.num_questions} questions)"
        )


def evaluate_analogies(
    model: Word2VecModel | np.ndarray,
    vocabulary: Vocabulary,
    questions: AnalogyQuestionSet,
    batch_size: int = 512,
    method: str = "add",
) -> AnalogyAccuracy:
    """Score an embedding on an analogy question set.

    Questions containing out-of-vocabulary words are skipped (as the original
    evaluation script does).  ``model`` may be a :class:`Word2VecModel` or a
    raw ``(V, dim)`` embedding matrix.  ``method`` selects the objective:
    ``"add"`` (3CosAdd, the paper's) or ``"mul"`` (3CosMul).
    """
    if method not in ("add", "mul"):
        raise ValueError(f"method must be 'add' or 'mul', got {method!r}")
    if isinstance(model, Word2VecModel):
        embedding = model.normalized_embedding()
    else:
        embedding = np.asarray(model, dtype=np.float32)
        norms = np.linalg.norm(embedding, axis=1, keepdims=True)
        embedding = embedding / np.where(norms > 0, norms, 1.0)

    ids_a, ids_b, ids_c, ids_d = [], [], [], []
    kept = []
    for q in questions:
        if all(w in vocabulary for w in (q.a, q.b, q.c, q.expected)):
            ids_a.append(vocabulary.id_of(q.a))
            ids_b.append(vocabulary.id_of(q.b))
            ids_c.append(vocabulary.id_of(q.c))
            ids_d.append(vocabulary.id_of(q.expected))
            kept.append(q)
    if not kept:
        return AnalogyAccuracy(0.0, 0.0, 0.0, 0.0, {}, 0)

    a = np.array(ids_a)
    b = np.array(ids_b)
    c = np.array(ids_c)
    d = np.array(ids_d)
    correct = np.zeros(len(kept), dtype=bool)

    for start in range(0, len(kept), batch_size):
        stop = min(start + batch_size, len(kept))
        if method == "add":
            target = (
                embedding[b[start:stop]]
                - embedding[a[start:stop]]
                + embedding[c[start:stop]]
            )
            norms = np.linalg.norm(target, axis=1, keepdims=True)
            target = target / np.where(norms > 0, norms, 1.0)
            scores = target @ embedding.T  # (batch, V)
        else:  # 3CosMul (Levy & Goldberg 2014), cosines shifted to [0, 1]
            eps = 1e-3
            cos_a = (embedding[a[start:stop]] @ embedding.T + 1.0) / 2.0
            cos_b = (embedding[b[start:stop]] @ embedding.T + 1.0) / 2.0
            cos_c = (embedding[c[start:stop]] @ embedding.T + 1.0) / 2.0
            scores = cos_b * cos_c / (cos_a + eps)
        rows = np.arange(stop - start)
        scores[rows, a[start:stop]] = -np.inf
        scores[rows, b[start:stop]] = -np.inf
        scores[rows, c[start:stop]] = -np.inf
        predicted = scores.argmax(axis=1)
        correct[start:stop] = predicted == d[start:stop]

    by_family: dict[str, list[bool]] = {}
    kind_of_family: dict[str, str] = {}
    for q, ok in zip(kept, correct):
        by_family.setdefault(q.family, []).append(bool(ok))
        kind_of_family[q.family] = q.kind
    per_family = {fam: float(np.mean(v)) for fam, v in by_family.items()}
    sem = [acc for fam, acc in per_family.items() if kind_of_family[fam] == SEMANTIC]
    syn = [acc for fam, acc in per_family.items() if kind_of_family[fam] == SYNTACTIC]
    return AnalogyAccuracy(
        semantic=float(np.mean(sem)) if sem else 0.0,
        syntactic=float(np.mean(syn)) if syn else 0.0,
        total=float(np.mean(list(per_family.values()))),
        micro=float(correct.mean()),
        per_family=per_family,
        num_questions=len(kept),
    )
