"""Embedding-quality diagnostics.

Quantities that help debug *why* an embedding under-performs before any
downstream task is run:

- norm statistics — frequent-word norm inflation is the classic SGNS
  pathology;
- isotropy — the mean cosine to the average direction; near 0 is healthy,
  near 1 means the space collapsed onto a cone (common after divergence or
  over-training, and the proximate cause of the late-epoch accuracy decay
  discussed in EXPERIMENTS.md);
- spectral dimension utilization — entropy of the singular-value
  distribution, exponentiated to an "effective dimension";
- hubness — concentration of nearest-neighbor in-degree (a few hub words
  appearing in everyone's neighbor lists degrade retrieval).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.w2v.model import Word2VecModel

__all__ = ["EmbeddingDiagnostics", "diagnose_embedding"]


@dataclass(frozen=True)
class EmbeddingDiagnostics:
    vocab_size: int
    dim: int
    mean_norm: float
    norm_cv: float  # coefficient of variation of row norms
    isotropy: float  # mean cosine to the mean direction (0 = isotropic)
    effective_dim: float  # exp(entropy of normalized singular values)
    hubness: float  # max 10-NN in-degree / expected in-degree

    def __str__(self) -> str:
        return (
            f"EmbeddingDiagnostics(V={self.vocab_size}, dim={self.dim}, "
            f"|v|={self.mean_norm:.3f}±cv{self.norm_cv:.2f}, "
            f"isotropy={self.isotropy:.3f}, "
            f"eff_dim={self.effective_dim:.1f}, hubness={self.hubness:.1f})"
        )


def diagnose_embedding(
    model: Word2VecModel | np.ndarray,
    neighbor_k: int = 10,
    max_rows_for_hubness: int = 2000,
    seed: int = 0,
) -> EmbeddingDiagnostics:
    """Compute the diagnostics; O(V² ) parts are subsampled above
    ``max_rows_for_hubness`` rows."""
    embedding = (
        model.embedding if isinstance(model, Word2VecModel) else np.asarray(model)
    )
    if embedding.ndim != 2 or embedding.shape[0] < 2:
        raise ValueError("need a (V >= 2, dim) embedding matrix")
    X = embedding.astype(np.float64)
    V, dim = X.shape

    norms = np.linalg.norm(X, axis=1)
    mean_norm = float(norms.mean())
    norm_cv = float(norms.std() / mean_norm) if mean_norm > 0 else 0.0

    safe = np.where(norms > 0, norms, 1.0)
    unit = X / safe[:, None]
    mean_dir = unit.mean(axis=0)
    mean_dir_norm = np.linalg.norm(mean_dir)
    isotropy = float(mean_dir_norm) if mean_dir_norm > 0 else 0.0
    # isotropy as defined: cosine of each vector to the mean direction,
    # averaged — equals ||mean(unit)|| exactly.

    # Spectral utilization.
    singular = np.linalg.svd(X - X.mean(axis=0), compute_uv=False)
    p = singular / singular.sum() if singular.sum() > 0 else np.ones_like(singular) / len(singular)
    p = p[p > 0]
    entropy = float(-(p * np.log(p)).sum())
    effective_dim = float(np.exp(entropy))

    # Hubness on a subsample.
    if V > max_rows_for_hubness:
        rng = np.random.default_rng(seed)
        rows = rng.choice(V, size=max_rows_for_hubness, replace=False)
        U = unit[rows]
    else:
        U = unit
    n = U.shape[0]
    k = min(neighbor_k, n - 1)
    sims = U @ U.T
    np.fill_diagonal(sims, -np.inf)
    neighbors = np.argpartition(-sims, k - 1, axis=1)[:, :k]
    in_degree = np.bincount(neighbors.ravel(), minlength=n)
    hubness = float(in_degree.max() / k)  # expected in-degree is exactly k

    return EmbeddingDiagnostics(
        vocab_size=V,
        dim=dim,
        mean_norm=mean_norm,
        norm_cv=norm_cv,
        isotropy=isotropy,
        effective_dim=effective_dim,
        hubness=hubness,
    )
