"""Cosine-similarity queries over an embedding.

``most_similar`` used to rebuild the row-normalized matrix — an O(V·dim)
pass plus a full-matrix allocation — on *every* call.  It now routes
through the serving layer: an :class:`~repro.serve.index.ExactIndex` over
an :class:`~repro.serve.store.EmbeddingStore` snapshot, built once per
``(model, vocabulary)`` pair and cached keyed on object identity (entries
drop automatically when either object is garbage-collected).  Repeated
queries against the same model pay only the top-k search.

The snapshot means in-place mutation of ``model.embedding`` *after* a
``most_similar`` call is not observed by later calls on the same objects;
train first, query after (every call site in the repo does).
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.serve.index import ExactIndex
from repro.serve.store import EmbeddingStore
from repro.text.vocab import Vocabulary
from repro.w2v.model import Word2VecModel

__all__ = ["cosine_similarity", "most_similar"]


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """cos between two vectors; 0.0 when either is zero."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 0.0
    return float(a @ b / (na * nb))


# (id(model), id(vocabulary)) -> ExactIndex over a snapshot of the pair.
# Identity keys never outlive their objects: weakref finalizers evict the
# entry when either side is collected, so ids cannot be reused while stale.
_index_cache: dict[tuple[int, int], ExactIndex] = {}


def _cached_index(model: Word2VecModel, vocabulary: Vocabulary) -> ExactIndex:
    key = (id(model), id(vocabulary))
    index = _index_cache.get(key)
    if index is None:
        index = ExactIndex(EmbeddingStore.from_model(model, vocabulary))
        _index_cache[key] = index
        evict = _index_cache.pop
        weakref.finalize(model, evict, key, None)
        weakref.finalize(vocabulary, evict, key, None)
    return index


def most_similar(
    model: Word2VecModel,
    vocabulary: Vocabulary,
    word: str,
    topn: int = 10,
) -> list[tuple[str, float]]:
    """The ``topn`` nearest words to ``word`` by embedding cosine."""
    if topn <= 0:
        raise ValueError(f"topn must be positive, got {topn}")
    index = _cached_index(model, vocabulary)
    query_id = vocabulary.id_of(word)
    count = min(topn, len(vocabulary) - 1)
    # Ask for one extra so the query word itself can be dropped.
    ids, scores = index.search(index.store.matrix[query_id], count + 1)
    return [
        (vocabulary.word_of(int(i)), float(s))
        for i, s in zip(ids[0], scores[0])
        if int(i) != query_id
    ][:count]
