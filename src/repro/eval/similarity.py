"""Cosine-similarity queries over an embedding."""

from __future__ import annotations

import numpy as np

from repro.text.vocab import Vocabulary
from repro.w2v.model import Word2VecModel

__all__ = ["cosine_similarity", "most_similar"]


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """cos between two vectors; 0.0 when either is zero."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 0.0
    return float(a @ b / (na * nb))


def most_similar(
    model: Word2VecModel,
    vocabulary: Vocabulary,
    word: str,
    topn: int = 10,
) -> list[tuple[str, float]]:
    """The ``topn`` nearest words to ``word`` by embedding cosine."""
    if topn <= 0:
        raise ValueError(f"topn must be positive, got {topn}")
    normalized = model.normalized_embedding()
    query = normalized[vocabulary.id_of(word)]
    scores = normalized @ query
    scores[vocabulary.id_of(word)] = -np.inf
    count = min(topn, len(scores) - 1)
    top = np.argpartition(-scores, count - 1)[:count]
    top = top[np.argsort(-scores[top])]
    return [(vocabulary.word_of(int(i)), float(scores[i])) for i in top]
