"""Model evaluation: analogical reasoning, similarity queries, WordSim."""

from repro.eval.analogy import AnalogyAccuracy, evaluate_analogies
from repro.eval.diagnostics import EmbeddingDiagnostics, diagnose_embedding
from repro.eval.similarity import cosine_similarity, most_similar
from repro.eval.wordsim import (
    SimilarityPair,
    build_planted_similarity,
    evaluate_similarity,
    word_category_knn_accuracy,
)

__all__ = [
    "AnalogyAccuracy",
    "evaluate_analogies",
    "EmbeddingDiagnostics",
    "diagnose_embedding",
    "cosine_similarity",
    "most_similar",
    "SimilarityPair",
    "build_planted_similarity",
    "evaluate_similarity",
    "word_category_knn_accuracy",
]
