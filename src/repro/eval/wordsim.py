"""Word-similarity evaluation (WordSim-353-style) on planted structure.

Analogies test linear offsets; similarity benchmarks test raw proximity.
Real corpora use human-rated pairs (WordSim-353, SimLex); the synthetic
corpora let us *derive* gold similarities from the generator's structure:

- 3: the two words of one planted pair (country07, capital07),
- 2: same-role words of the same family (country07, country03),
- 1: words from the same family, different role and pair,
- 0: words from different families.

The metric is the Spearman rank correlation between gold scores and
embedding cosines — the standard reporting for similarity benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import spearmanr

from repro.text.synthetic import RelationFamily
from repro.text.vocab import Vocabulary
from repro.w2v.model import Word2VecModel

__all__ = [
    "SimilarityPair",
    "build_planted_similarity",
    "evaluate_similarity",
    "word_category_knn_accuracy",
]


@dataclass(frozen=True)
class SimilarityPair:
    word_a: str
    word_b: str
    gold: float


def build_planted_similarity(
    families: tuple[RelationFamily, ...],
    pairs_per_level: int = 30,
    seed: int = 0,
) -> list[SimilarityPair]:
    """Derive a gold similarity set from the planted relation families."""
    if not families:
        raise ValueError("need at least one family")
    rng = np.random.default_rng(seed)
    out: list[SimilarityPair] = []

    def sample_family():
        return families[int(rng.integers(len(families)))]

    for _ in range(pairs_per_level):
        # Level 3: within one planted pair.
        fam = sample_family()
        a, b = fam.pairs[int(rng.integers(len(fam.pairs)))]
        out.append(SimilarityPair(a, b, 3.0))
        # Level 2: same family, same role.
        fam = sample_family()
        i, j = rng.choice(len(fam.pairs), size=2, replace=False)
        role = int(rng.integers(2))
        out.append(SimilarityPair(fam.pairs[i][role], fam.pairs[j][role], 2.0))
        # Level 1: same family, different role, different pair.
        fam = sample_family()
        i, j = rng.choice(len(fam.pairs), size=2, replace=False)
        out.append(SimilarityPair(fam.pairs[i][0], fam.pairs[j][1], 1.0))
        # Level 0: different families.
        fam_a = sample_family()
        fam_b = sample_family()
        while fam_b.name == fam_a.name and len(families) > 1:
            fam_b = sample_family()
        wa = fam_a.pairs[int(rng.integers(len(fam_a.pairs)))][int(rng.integers(2))]
        wb = fam_b.pairs[int(rng.integers(len(fam_b.pairs)))][int(rng.integers(2))]
        if wa != wb:
            out.append(SimilarityPair(wa, wb, 0.0))
    return out


def evaluate_similarity(
    model: Word2VecModel | np.ndarray,
    vocabulary: Vocabulary,
    pairs: list[SimilarityPair],
) -> float:
    """Spearman ρ between gold scores and embedding cosines.

    Out-of-vocabulary pairs are skipped; fewer than three usable pairs is
    an error (the correlation would be meaningless).
    """
    if isinstance(model, Word2VecModel):
        embedding = model.normalized_embedding()
    else:
        embedding = np.asarray(model, dtype=np.float64)
        norms = np.linalg.norm(embedding, axis=1, keepdims=True)
        embedding = embedding / np.where(norms > 0, norms, 1.0)
    gold, cos = [], []
    for pair in pairs:
        if pair.word_a in vocabulary and pair.word_b in vocabulary:
            va = embedding[vocabulary.id_of(pair.word_a)]
            vb = embedding[vocabulary.id_of(pair.word_b)]
            gold.append(pair.gold)
            cos.append(float(va @ vb))
    if len(gold) < 3:
        raise ValueError(f"only {len(gold)} usable pairs; need >= 3")
    rho, _p = spearmanr(gold, cos)
    return float(rho)


def word_category_knn_accuracy(
    model: Word2VecModel | np.ndarray,
    vocabulary: Vocabulary,
    word_labels: dict[str, int],
    k: int = 5,
) -> float:
    """Leave-one-out k-NN categorization accuracy over labeled words.

    The word-level analogue of the node-embedding community metric: each
    labeled, in-vocabulary word is classified by the majority label of its
    k nearest labeled neighbors (cosine).  Words with negative labels are
    excluded (the topic-corpus convention for filler words).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if isinstance(model, Word2VecModel):
        embedding = model.normalized_embedding().astype(np.float64)
    else:
        embedding = np.asarray(model, dtype=np.float64)
        norms = np.linalg.norm(embedding, axis=1, keepdims=True)
        embedding = embedding / np.where(norms > 0, norms, 1.0)
    words = [w for w, label in word_labels.items() if label >= 0 and w in vocabulary]
    if len(words) <= k:
        raise ValueError(f"need more than k={k} labeled words, got {len(words)}")
    ids = np.array([vocabulary.id_of(w) for w in words])
    labels = np.array([word_labels[w] for w in words])
    vectors = embedding[ids]
    sims = vectors @ vectors.T
    np.fill_diagonal(sims, -np.inf)
    neighbors = np.argsort(-sims, axis=1)[:, :k]
    predictions = np.array(
        [np.bincount(labels[row]).argmax() for row in neighbors]
    )
    return float((predictions == labels).mean())
