"""Reducible accumulators (Galois ``GAccumulator`` / ``GReduce*``).

Operators running under ``do_all`` report statistics (pairs processed, loss,
max degree seen, ...) through accumulators that support thread-local update
and a final reduction.  The thread-pool executor gives each thread its own
slot; reads reduce across slots.
"""

from __future__ import annotations

import threading
from typing import Callable, Generic, TypeVar

T = TypeVar("T")

__all__ = ["GAccumulator", "GReduceMax", "GReduceMin"]


class _Reducible(Generic[T]):
    """Thread-local slots + associative reduction."""

    def __init__(self, identity: T, op: Callable[[T, T], T]):
        self._identity = identity
        self._op = op
        self._local = threading.local()
        self._slots: list[list[T]] = []
        self._lock = threading.Lock()

    def _slot(self) -> list[T]:
        slot = getattr(self._local, "slot", None)
        if slot is None:
            slot = [self._identity]
            self._local.slot = slot
            with self._lock:
                self._slots.append(slot)
        return slot

    def update(self, value: T) -> None:
        slot = self._slot()
        slot[0] = self._op(slot[0], value)

    def reduce(self) -> T:
        with self._lock:
            values = [s[0] for s in self._slots]
        out = self._identity
        for v in values:
            out = self._op(out, v)
        return out

    def reset(self) -> None:
        with self._lock:
            for slot in self._slots:
                slot[0] = self._identity


class GAccumulator(_Reducible[float]):
    """Summing accumulator; ``+=`` via :meth:`update`."""

    def __init__(self, initial: float = 0.0):
        super().__init__(0.0, lambda a, b: a + b)
        if initial:
            self.update(initial)

    def __iadd__(self, value: float) -> "GAccumulator":
        self.update(value)
        return self

    @property
    def value(self) -> float:
        return self.reduce()


class GReduceMax(_Reducible[float]):
    def __init__(self, identity: float = float("-inf")):
        super().__init__(identity, max)

    @property
    def value(self) -> float:
        return self.reduce()


class GReduceMin(_Reducible[float]):
    def __init__(self, identity: float = float("inf")):
        super().__init__(identity, min)

    @property
    def value(self) -> float:
        return self.reduce()
