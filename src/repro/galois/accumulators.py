"""Reducible accumulators (Galois ``GAccumulator`` / ``GReduce*``).

Operators running under ``do_all`` report statistics (pairs processed, loss,
max degree seen, ...) through accumulators that support thread-local update
and a final reduction.  Correctness under :class:`~repro.galois.do_all.
ThreadPoolDoAll` rests on a strict single-writer discipline: every cell is
written only by the thread that owns it, so ``update`` never performs a
read-modify-write on shared state (the classic ``+=``-on-a-shared-value race
that silently undercounts).  ``reset`` used to violate that discipline by
zeroing other threads' cells from the caller — concurrent with an owner's
``cell = op(cell, value)`` it could lose either the reset or the update.  It
now bumps a generation counter instead; each owner lazily discards its own
stale cell, and ``reduce`` ignores cells from previous generations.  The
design therefore does not lean on the GIL and a persistent pool can keep the
same accumulator across many ``run`` calls and resets.
"""

from __future__ import annotations

import threading
from typing import Callable, Generic, TypeVar

T = TypeVar("T")

__all__ = ["GAccumulator", "GReduceMax", "GReduceMin"]


class _Cell(Generic[T]):
    """One thread's slot: the running value plus the reset generation it
    belongs to.  Written only by the owning thread (single-writer)."""

    __slots__ = ("value", "generation")

    def __init__(self, value: T, generation: int):
        self.value = value
        self.generation = generation


class _Reducible(Generic[T]):
    """Thread-local single-writer cells + associative reduction."""

    def __init__(self, identity: T, op: Callable[[T, T], T]):
        self._identity = identity
        self._op = op
        self._local = threading.local()
        self._cells: list[_Cell[T]] = []
        self._lock = threading.Lock()
        self._generation = 0

    def _cell(self) -> _Cell[T]:
        cell: _Cell[T] | None = getattr(self._local, "cell", None)
        generation = self._generation
        if cell is None:
            cell = _Cell(self._identity, generation)
            self._local.cell = cell
            with self._lock:
                self._cells.append(cell)
        elif cell.generation != generation:
            # A reset happened since this thread last wrote; discard our own
            # stale value.  Only the owner writes, so no cross-thread race.
            cell.value = self._identity
            cell.generation = generation
        return cell

    def update(self, value: T) -> None:
        cell = self._cell()
        cell.value = self._op(cell.value, value)

    def reduce(self) -> T:
        generation = self._generation
        with self._lock:
            values = [c.value for c in self._cells if c.generation == generation]
        out = self._identity
        for v in values:
            out = self._op(out, v)
        return out

    def reset(self) -> None:
        """Invalidate all cells.  Safe against concurrent ``update`` calls:
        owners re-zero their own cell on their next update."""
        with self._lock:
            self._generation += 1


class GAccumulator(_Reducible[float]):
    """Summing accumulator; ``+=`` via :meth:`update`."""

    def __init__(self, initial: float = 0.0):
        super().__init__(0.0, lambda a, b: a + b)
        if initial:
            self.update(initial)

    def __iadd__(self, value: float) -> "GAccumulator":
        self.update(value)
        return self

    @property
    def value(self) -> float:
        return self.reduce()


class GReduceMax(_Reducible[float]):
    def __init__(self, identity: float = float("-inf")):
        super().__init__(identity, max)

    @property
    def value(self) -> float:
        return self.reduce()


class GReduceMin(_Reducible[float]):
    def __init__(self, identity: float = float("inf")):
        super().__init__(identity, min)

    @property
    def value(self) -> float:
        return self.reduce()
