"""``do_all`` parallel-loop abstraction.

Galois application code expresses the operator as a function applied to every
item of a range; the runtime chooses how to execute it.  We reproduce that
split: operators written against :func:`do_all` run identically under the
deterministic :class:`SerialExecutor` (the default — the simulated cluster
executes hosts one at a time on a single core) and the
:class:`ThreadPoolDoAll` executor (NumPy releases the GIL inside kernels, so
threads provide genuine overlap when cores exist).
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Iterable, Protocol, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["DoAllExecutor", "SerialExecutor", "ThreadPoolDoAll", "do_all"]


class DoAllExecutor(Protocol):
    """Strategy interface for executing a data-parallel loop."""

    def run(self, items: Sequence[T], operator: Callable[[T], None]) -> None:
        """Apply ``operator`` to every element of ``items``."""
        ...  # pragma: no cover - protocol


class SerialExecutor:
    """Deterministic in-order execution (reference semantics)."""

    def run(self, items: Sequence[T], operator: Callable[[T], None]) -> None:
        for item in items:
            operator(item)


class ThreadPoolDoAll:
    """Thread-pool execution with Galois-style static chunking.

    Items are split into ``workers`` contiguous chunks; each worker thread
    runs one chunk.  With a NumPy-heavy operator the GIL is released inside
    kernels, so this scales on multi-core machines; correctness does not
    depend on it (operators must be Hogwild-safe, as in the paper).
    """

    def __init__(self, workers: int = 2):
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = int(workers)

    def run(self, items: Sequence[T], operator: Callable[[T], None]) -> None:
        items = list(items)
        if not items:
            return
        workers = min(self.workers, len(items))
        if workers == 1:
            SerialExecutor().run(items, operator)
            return
        base, extra = divmod(len(items), workers)
        chunks = []
        start = 0
        for i in range(workers):
            size = base + (1 if i < extra else 0)
            chunks.append(items[start : start + size])
            start += size

        def run_chunk(chunk: list[T]) -> None:
            for item in chunk:
                operator(item)

        with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
            # Propagate the first worker exception, if any.
            for future in [pool.submit(run_chunk, c) for c in chunks]:
                future.result()


def do_all(
    items: Iterable[T],
    operator: Callable[[T], None],
    executor: DoAllExecutor | None = None,
) -> int:
    """Apply ``operator`` to all ``items``; returns the item count.

    ``executor`` defaults to :class:`SerialExecutor`.
    """
    seq = list(items)
    (executor or SerialExecutor()).run(seq, operator)
    return len(seq)
