"""``do_all`` parallel-loop abstraction.

Galois application code expresses the operator as a function applied to every
item of a range; the runtime chooses how to execute it.  We reproduce that
split: operators written against :func:`do_all` run identically under the
deterministic :class:`SerialExecutor` (the default) and the
:class:`ThreadPoolDoAll` executor (NumPy releases the GIL inside kernels, so
threads provide genuine overlap when cores exist).

:class:`ThreadPoolDoAll` keeps a persistent worker pool alive across ``run``
calls — the distributed trainer invokes it once per synchronization round,
and paying thread start-up per call would dominate small rounds.  Work is
handed out with *dynamic* chunk scheduling (workers pull the next chunk from
a shared cursor), so an uneven operator cannot strand cores the way static
per-worker splits do.  Operator exceptions are aggregated: every worker
drains its current chunk boundary, the loop stops, and all collected errors
surface together (a lone error re-raises as itself, preserving its type).
"""

from __future__ import annotations

import concurrent.futures
import os
import threading
from typing import Callable, Iterable, Protocol, Sequence, TypeVar

T = TypeVar("T")

__all__ = [
    "DoAllError",
    "DoAllExecutor",
    "SerialExecutor",
    "ThreadPoolDoAll",
    "do_all",
    "executor_from_env",
    "resolve_executor",
]

#: Environment variable consulted by :func:`executor_from_env`.  Setting it to
#: an integer > 1 makes components that opt in (currently ``GraphWord2Vec``)
#: default to a shared :class:`ThreadPoolDoAll` of that width — how CI runs
#: the whole test suite over the host-parallel path.
WORKERS_ENV_VAR = "REPRO_WORKERS"


class DoAllError(RuntimeError):
    """Multiple operator invocations failed in one parallel ``do_all`` loop.

    ``causes`` holds every collected exception, in the (nondeterministic)
    order workers reported them.  A single failure is re-raised as itself
    instead, so callers keep matching on the original exception type.
    """

    def __init__(self, causes: Sequence[BaseException]):
        self.causes = list(causes)
        summary = "; ".join(f"{type(c).__name__}: {c}" for c in self.causes)
        super().__init__(
            f"{len(self.causes)} do_all operator invocations failed: {summary}"
        )


class DoAllExecutor(Protocol):
    """Strategy interface for executing a data-parallel loop."""

    def run(self, items: Sequence[T], operator: Callable[[T], None]) -> None:
        """Apply ``operator`` to every element of ``items``."""
        ...  # pragma: no cover - protocol


class SerialExecutor:
    """Deterministic in-order execution (reference semantics)."""

    def run(self, items: Sequence[T], operator: Callable[[T], None]) -> None:
        for item in items:
            operator(item)


class ThreadPoolDoAll:
    """Thread-pool execution with Galois-style dynamic chunk scheduling.

    The pool is created lazily on the first ``run`` and reused by every
    subsequent call (threads park between calls); ``close()`` — or use as a
    context manager — shuts it down, after which ``run`` raises.  An
    abandoned instance cleans itself up when garbage-collected (idle
    ``ThreadPoolExecutor`` workers exit once their executor is collected).

    ``chunk_size`` fixes how many items a worker claims at a time; the
    default aims for ~4 chunks per worker so a slow chunk cannot strand the
    other cores (dynamic load balancing).  Operators must be safe to run
    concurrently — either Hogwild-tolerant (shared-memory trainer) or
    touching disjoint state (per-host replicas in the distributed trainer).
    ``run`` itself is thread-safe and re-entrant across instances, so a
    single pool may be shared process-wide (see :func:`executor_from_env`).
    """

    def __init__(self, workers: int = 2, chunk_size: int | None = None):
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.workers = int(workers)
        self.chunk_size = None if chunk_size is None else int(chunk_size)
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._closed = False

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("ThreadPoolDoAll is closed")
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="do_all"
                )
            return self._pool

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the persistent pool down (idempotent)."""
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadPoolDoAll":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ---------------------------------------------------------
    def chunk_for(self, n: int) -> int:
        """Chunk size an ``n``-item loop would be scheduled with.

        Public so tooling (e.g. the :mod:`repro.analysis` sanitizers and
        benchmarks) can reason about chunk boundaries without re-deriving
        the policy.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        # ~4 chunks per worker: enough slack for dynamic balancing without
        # drowning tiny items in per-chunk bookkeeping.
        return max(1, -(-n // (4 * self.workers)))

    def run(self, items: Sequence[T], operator: Callable[[T], None]) -> None:
        items = list(items)
        n = len(items)
        if n == 0:
            return
        if self._closed:
            raise RuntimeError("ThreadPoolDoAll is closed")
        if self.workers == 1 or n == 1:
            SerialExecutor().run(items, operator)
            return

        chunk = self.chunk_for(n)
        cursor = [0]
        cursor_lock = threading.Lock()
        errors: list[BaseException] = []
        errors_lock = threading.Lock()
        stop = threading.Event()

        def worker() -> None:
            while not stop.is_set():
                with cursor_lock:
                    start = cursor[0]
                    if start >= n:
                        return
                    cursor[0] = start + chunk
                for item in items[start : start + chunk]:
                    try:
                        operator(item)
                    except BaseException as exc:  # aggregated below
                        with errors_lock:
                            errors.append(exc)
                        stop.set()
                        return

        pool = self._ensure_pool()
        lanes = min(self.workers, -(-n // chunk))
        for future in [pool.submit(worker) for _ in range(lanes)]:
            future.result()
        if errors:
            if len(errors) == 1:
                raise errors[0]
            raise DoAllError(errors)


def do_all(
    items: Iterable[T],
    operator: Callable[[T], None],
    executor: DoAllExecutor | None = None,
) -> int:
    """Apply ``operator`` to all ``items``; returns the item count.

    ``executor`` defaults to :class:`SerialExecutor`.
    """
    seq = list(items)
    (executor or SerialExecutor()).run(seq, operator)
    return len(seq)


def resolve_executor(
    executor: DoAllExecutor | None, workers: int | None
) -> DoAllExecutor | None:
    """Turn an ``(executor, workers)`` pair of knobs into one executor.

    At most one may be given.  ``workers=1`` means the serial executor;
    ``workers>1`` builds a private :class:`ThreadPoolDoAll`.  ``None, None``
    returns ``None`` (caller applies its own default).
    """
    if executor is not None and workers is not None:
        raise ValueError("pass either executor or workers, not both")
    if workers is None:
        return executor
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    return SerialExecutor() if workers == 1 else ThreadPoolDoAll(workers)


_env_pools: dict[int, ThreadPoolDoAll] = {}
_env_pools_lock = threading.Lock()


def executor_from_env() -> DoAllExecutor | None:
    """Executor implied by ``REPRO_WORKERS``, or ``None`` when unset/<=1.

    Pools are shared process-wide per worker count, so a test suite that
    builds thousands of trainers under ``REPRO_WORKERS=4`` reuses four
    threads instead of leaking four per trainer.
    """
    raw = os.environ.get(WORKERS_ENV_VAR)
    if not raw:
        return None
    try:
        workers = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
        ) from exc
    if workers <= 1:
        return None
    with _env_pools_lock:
        pool = _env_pools.get(workers)
        if pool is None or pool.closed:
            pool = _env_pools[workers] = ThreadPoolDoAll(workers)
        return pool
