"""Statistics timers, Galois ``StatTimer``-style.

Used throughout the distributed engine to attribute wall-clock to phases
(compute, inspection, serialization) per host; the cluster simulator combines
them with modeled network time for the Figure 8/9 breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import time
from typing import Callable

__all__ = ["StatTimer", "TimerRegistry"]


@dataclass
class StatTimer:
    """Accumulating region timer; safe to start/stop repeatedly.

    ``clock`` selects the time source: wall clock by default
    (``time.perf_counter``), or e.g. ``time.thread_time`` for
    contention-independent CPU measurement of regions that may share the
    machine with other worker threads.  Start and stop must be called on
    the same thread when a per-thread clock is used.
    """

    name: str
    total: float = 0.0
    count: int = 0
    # This default IS the library's sanctioned clock-injection point: code
    # that must not read wall-clock takes a StatTimer and the caller picks
    # the clock.  The only place the wall-clock lint does not apply.
    clock: Callable[[], float] = field(default=time.perf_counter, repr=False)  # repro: noqa[REPRO003]
    _started: float | None = field(default=None, repr=False)

    def start(self) -> "StatTimer":
        if self._started is not None:
            raise RuntimeError(f"timer {self.name!r} already running")
        self._started = self.clock()
        return self

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError(f"timer {self.name!r} is not running")
        elapsed = self.clock() - self._started
        self._started = None
        self.total += elapsed
        self.count += 1
        return elapsed

    def __enter__(self) -> "StatTimer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def add(self, seconds: float) -> None:
        """Record externally measured (or modeled) time."""
        if seconds < 0:
            raise ValueError(f"negative time {seconds}")
        self.total += seconds
        self.count += 1


class TimerRegistry:
    """Named timer collection (one per host in the simulator)."""

    def __init__(self) -> None:
        self._timers: dict[str, StatTimer] = {}

    def get(self, name: str) -> StatTimer:
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = StatTimer(name)
        return timer

    def totals(self) -> dict[str, float]:
        return {name: t.total for name, t in self._timers.items()}

    def reset(self) -> None:
        self._timers.clear()
