"""Galois-style shared-memory parallel engine.

The paper implements the per-host Word2Vec operator on top of the Galois
library's parallel constructs: ``do_all`` loops, concurrent worklists, and
reducible accumulators.  This package reproduces those constructs with two
executors — a deterministic sequential one (default; this repository targets
single-core simulation) and a thread-pool one — behind the same API, so
operator code is written once, Galois-style.
"""

from repro.galois.accumulators import GAccumulator, GReduceMax, GReduceMin
from repro.galois.do_all import (
    DoAllError,
    DoAllExecutor,
    SerialExecutor,
    ThreadPoolDoAll,
    do_all,
    executor_from_env,
    resolve_executor,
)
from repro.galois.timers import StatTimer, TimerRegistry
from repro.galois.worklist import ChunkedLIFO, ChunkedWorklist, OrderedByIntegerMetric

__all__ = [
    "ChunkedWorklist",
    "ChunkedLIFO",
    "OrderedByIntegerMetric",
    "DoAllError",
    "DoAllExecutor",
    "SerialExecutor",
    "ThreadPoolDoAll",
    "do_all",
    "executor_from_env",
    "resolve_executor",
    "GAccumulator",
    "GReduceMax",
    "GReduceMin",
    "StatTimer",
    "TimerRegistry",
]
