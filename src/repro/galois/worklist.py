"""Worklists in the style of Galois' scheduler policies.

Two policies are provided:

- :class:`ChunkedWorklist` — a FIFO of fixed-size chunks, the policy Galois
  uses for bulk data-parallel work.  GraphWord2Vec stores each host's shard
  of the training corpus in such a worklist and splits it into per-sync-round
  partitions (Algorithm 1, line 8).
- :class:`OrderedByIntegerMetric` — the OBIM soft-priority worklist used by
  data-driven algorithms such as delta-stepping SSSP (paper §2.4).

Both are deliberately simple, deterministic data structures: the simulated
executor processes items in a defined order so distributed runs are exactly
reproducible.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generic, Iterable, Iterator, TypeVar

import numpy as np

T = TypeVar("T")

__all__ = ["ChunkedWorklist", "ChunkedLIFO", "OrderedByIntegerMetric"]


class ChunkedWorklist(Generic[T]):
    """FIFO worklist that hands out work in fixed-size chunks.

    Items may be any sequence; for Word2Vec the items are word-id arrays
    (sentences).  ``partitions(k)`` splits the current content into ``k``
    roughly equal contiguous slices — this is how an epoch's work is divided
    into synchronization rounds.
    """

    def __init__(self, items: Iterable[T] = (), chunk_size: int = 64):
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = int(chunk_size)
        self._items: list[T] = list(items)
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._items) - self._cursor

    def __iter__(self) -> Iterator[T]:
        return iter(self._items[self._cursor :])

    def push(self, item: T) -> None:
        self._items.append(item)

    def push_many(self, items: Iterable[T]) -> None:
        self._items.extend(items)

    def pop_chunk(self) -> list[T]:
        """Remove and return the next chunk (possibly short, empty at end).

        Consumed items are *released*: once the consumed prefix dominates the
        backing list it is deleted (amortized O(1)), so a worklist drained
        chunk-by-chunk does not pin the whole corpus's sentences for the rest
        of the run.
        """
        chunk = self._items[self._cursor : self._cursor + self.chunk_size]
        self._cursor += len(chunk)
        if self._cursor >= self.chunk_size and self._cursor * 2 >= len(self._items):
            del self._items[: self._cursor]
            self._cursor = 0
        return chunk

    def empty(self) -> bool:
        return self._cursor >= len(self._items)

    def reset(self) -> None:
        """Rewind the cursor to the oldest *retained* item.

        Items whose memory :meth:`pop_chunk` already released cannot be
        restored — build a fresh worklist for a new epoch (cheap: items are
        held by reference).
        """
        self._cursor = 0

    def shuffle(self, rng: np.random.Generator) -> None:
        """Permute pending items in place (SGD epoch shuffling trick)."""
        pending = self._items[self._cursor :]
        order = rng.permutation(len(pending))
        self._items[self._cursor :] = [pending[i] for i in order]

    def partitions(self, k: int) -> list[list[T]]:
        """Split pending items into ``k`` contiguous, nearly equal slices.

        The first ``len % k`` slices get one extra item; empty slices are
        returned (not dropped) when there are fewer items than partitions, so
        the caller's round count is exactly ``k``.
        """
        if k <= 0:
            raise ValueError(f"partition count must be positive, got {k}")
        pending = self._items[self._cursor :]
        n = len(pending)
        base, extra = divmod(n, k)
        out: list[list[T]] = []
        start = 0
        for i in range(k):
            size = base + (1 if i < extra else 0)
            out.append(pending[start : start + size])
            start += size
        assert start == n
        return out


class ChunkedLIFO(Generic[T]):
    """LIFO worklist handing out chunks from the top of the stack.

    Galois' dChunkedLIFO: favors recently-generated work (deeper in the
    computation DAG), which improves locality for algorithms like residual
    PageRank.  Items within a chunk keep their push order.
    """

    def __init__(self, items: Iterable[T] = (), chunk_size: int = 64):
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = int(chunk_size)
        self._items: list[T] = list(items)

    def __len__(self) -> int:
        return len(self._items)

    def push(self, item: T) -> None:
        self._items.append(item)

    def push_many(self, items: Iterable[T]) -> None:
        self._items.extend(items)

    def empty(self) -> bool:
        return not self._items

    def pop_chunk(self) -> list[T]:
        """Remove and return the most recent chunk (possibly short)."""
        if not self._items:
            return []
        take = min(self.chunk_size, len(self._items))
        chunk = self._items[-take:]
        del self._items[-take:]
        return chunk


class OrderedByIntegerMetric(Generic[T]):
    """Soft priority worklist: items are binned by an integer metric.

    Mirrors Galois' OBIM: work proceeds from the lowest non-empty bin, new
    items can land in any bin, and items within a bin are unordered (FIFO
    here, for determinism).  Used by delta-stepping SSSP.
    """

    def __init__(self, metric: Callable[[T], int]):
        self._metric = metric
        self._bins: dict[int, deque[T]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(self, item: T) -> None:
        key = int(self._metric(item))
        if key < 0:
            raise ValueError(f"OBIM metric must be non-negative, got {key}")
        self._bins.setdefault(key, deque()).append(item)
        self._size += 1

    def push_many(self, items: Iterable[T]) -> None:
        for item in items:
            self.push(item)

    def empty(self) -> bool:
        return self._size == 0

    def pop_bin(self) -> tuple[int, list[T]]:
        """Remove and return ``(priority, items)`` of the lowest bin."""
        if self._size == 0:
            raise IndexError("pop from empty OBIM worklist")
        key = min(self._bins)
        items = list(self._bins.pop(key))
        self._size -= len(items)
        return key, items

    def pop(self) -> T:
        """Remove and return a single lowest-priority item."""
        if self._size == 0:
            raise IndexError("pop from empty OBIM worklist")
        key = min(self._bins)
        bin_ = self._bins[key]
        item = bin_.popleft()
        if not bin_:
            del self._bins[key]
        self._size -= 1
        return item
