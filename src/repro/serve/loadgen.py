"""Seed-deterministic load generation and the serving report.

:func:`run_load` drives a :class:`~repro.serve.engine.QueryEngine` with a
reproducible workload: a Zipf-distributed query mix over the store's rows
(rank = row id + 1, exponent configurable — heavy-tail traffic like real
query logs) and a fixed arrival schedule (exponential inter-arrival gaps
at a modeled QPS).  Both streams derive from the config seed via
:func:`repro.util.rng.keyed_rng`, so the *modeled* side of a run — which
words are asked, how the stream chops into batches, which lookups hit the
cache, and every answer — is a pure function of ``(seed, config, engine
knobs)`` and is bit-identical for any ``workers`` setting.

The resulting :class:`ServeReport` separates that modeled core (exposed
by :meth:`ServeReport.modeled`, what determinism tests pin) from measured
wall-clock fields (throughput, p50/p95/p99 latency), and exports as JSON
(:meth:`ServeReport.to_json`) and as Chrome-trace events
(:meth:`ServeReport.chrome_trace_events`) alongside the trainer's
:mod:`repro.cluster.trace` output.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.galois.timers import StatTimer
from repro.serve.engine import QueryEngine
from repro.util.rng import DEFAULT_SEED, keyed_rng

__all__ = ["LoadConfig", "ServeReport", "generate_queries", "run_load"]

#: Domain tags keeping the load generator's RNG streams disjoint from
#: every other consumer of the same root seed.
_MIX_DOMAIN = 0x51524D  # "QRM" — query mix
_ARRIVAL_DOMAIN = 0x415256  # "ARV" — arrival schedule

_US = 1e6


@dataclass(frozen=True)
class LoadConfig:
    """One load run: how many queries, their mix, and the modeled arrivals.

    ``zipf_exponent`` shapes the popularity skew (1.0-1.3 matches web
    query logs); ``arrival_qps`` is the *modeled* offered rate that
    timestamps the Chrome trace — execution itself is closed-loop.
    """

    num_queries: int = 512
    k: int = 10
    zipf_exponent: float = 1.1
    arrival_qps: float = 2000.0
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.num_queries <= 0:
            raise ValueError(f"num_queries must be positive, got {self.num_queries}")
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.zipf_exponent < 0:
            raise ValueError(
                f"zipf_exponent must be non-negative, got {self.zipf_exponent}"
            )
        if self.arrival_qps <= 0:
            raise ValueError(f"arrival_qps must be positive, got {self.arrival_qps}")


def generate_queries(vocab_size: int, config: LoadConfig) -> np.ndarray:
    """The deterministic query-id stream for ``config`` (Zipf over rows)."""
    if vocab_size <= 0:
        raise ValueError(f"vocab_size must be positive, got {vocab_size}")
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    weights = ranks ** -config.zipf_exponent
    probabilities = weights / weights.sum()
    rng = keyed_rng(config.seed, _MIX_DOMAIN)
    return rng.choice(vocab_size, size=config.num_queries, p=probabilities)


def _arrival_times_us(config: LoadConfig) -> np.ndarray:
    """Modeled arrival timestamps (microseconds), fixed by the seed."""
    rng = keyed_rng(config.seed, _ARRIVAL_DOMAIN)
    gaps = rng.exponential(1.0 / config.arrival_qps, size=config.num_queries)
    return np.cumsum(gaps) * _US


@dataclass
class ServeReport:
    """What one load run asked, answered, and cost.

    Modeled fields (everything :meth:`modeled` returns) are bit-stable
    across runs with the same seed and engine configuration, regardless
    of executor width; measured fields (``total_seconds``, throughput,
    latency percentiles) are real wall-clock and vary run to run.
    """

    index_label: str
    num_queries: int
    k: int
    seed: int
    batch_sizes: list[int]
    batch_seconds: list[float]
    batch_arrival_us: list[float]
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    answers_sha256: str
    total_seconds: float
    max_batch: int
    search_block: int
    extras: dict = field(default_factory=dict)

    # -- derived -----------------------------------------------------------
    @property
    def throughput_qps(self) -> float:
        return self.num_queries / self.total_seconds if self.total_seconds > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def batch_size_histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for size in self.batch_sizes:
            hist[size] = hist.get(size, 0) + 1
        return dict(sorted(hist.items()))

    def _per_query_seconds(self) -> np.ndarray:
        return np.repeat(
            np.asarray(self.batch_seconds, dtype=np.float64),
            np.asarray(self.batch_sizes, dtype=np.int64),
        )

    def latency_percentiles_ms(self) -> dict[str, float]:
        """p50/p95/p99 of per-query service time (its batch's latency)."""
        per_query = self._per_query_seconds()
        if per_query.size == 0:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        p50, p95, p99 = np.percentile(per_query, [50, 95, 99]) * 1e3
        return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}

    def modeled(self) -> dict:
        """The deterministic core: identical for identical seeds/configs."""
        return {
            "index": self.index_label,
            "num_queries": self.num_queries,
            "k": self.k,
            "seed": self.seed,
            "max_batch": self.max_batch,
            "search_block": self.search_block,
            "batch_sizes": list(self.batch_sizes),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "answers_sha256": self.answers_sha256,
        }

    # -- export ------------------------------------------------------------
    def as_dict(self) -> dict:
        latency = self.latency_percentiles_ms()
        return {
            "modeled": self.modeled(),
            "measured": {
                "total_seconds": self.total_seconds,
                "throughput_qps": self.throughput_qps,
                "latency_ms": latency,
                "batch_seconds": list(self.batch_seconds),
            },
            "cache_hit_rate": self.cache_hit_rate,
            "batch_size_histogram": {
                str(size): count
                for size, count in self.batch_size_histogram().items()
            },
            "extras": dict(self.extras),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def chrome_trace_events(self, tid: int = 0) -> list[dict]:
        """Complete 'X' events, one per batch, on a dedicated engine row.

        Timestamps come from the *modeled* arrival schedule (the batch's
        first query), durations from measured batch latency — the same
        convention as :mod:`repro.cluster.trace`, where modeled and
        measured time share a timeline.  ``tid`` picks the row, so
        several reports can merge into one trace.
        """
        events: list[dict] = []
        for index, (size, seconds, arrival) in enumerate(
            zip(self.batch_sizes, self.batch_seconds, self.batch_arrival_us)
        ):
            events.append(
                {
                    "name": f"batch {index}",
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "ts": float(arrival),
                    "dur": float(seconds) * _US,
                    "cat": "serve",
                    "args": {"queries": int(size), "index": self.index_label},
                }
            )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": f"serve engine ({self.index_label})"},
            }
        )
        return events

    def trace_json(self) -> str:
        return json.dumps({"traceEvents": self.chrome_trace_events()})

    def summary(self) -> str:
        latency = self.latency_percentiles_ms()
        return (
            f"{self.index_label}: {self.num_queries} queries, "
            f"{self.throughput_qps:,.0f} qps, "
            f"p50 {latency['p50']:.3f}ms p95 {latency['p95']:.3f}ms "
            f"p99 {latency['p99']:.3f}ms, "
            f"cache hit rate {self.cache_hit_rate:.1%}"
        )


def _fingerprint(words: list[str], results: list[tuple[np.ndarray, np.ndarray]]) -> str:
    digest = hashlib.sha256()
    for word, (ids, scores) in zip(words, results):
        digest.update(word.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(np.ascontiguousarray(ids, dtype=np.int64).tobytes())
        digest.update(np.ascontiguousarray(scores, dtype=np.float32).tobytes())
    return digest.hexdigest()


def run_load(
    engine: QueryEngine,
    config: LoadConfig | None = None,
    index_label: str = "index",
) -> ServeReport:
    """Drive ``engine`` with the workload of ``config``; report the run.

    The engine's stats are reset first so the report covers exactly this
    run.  Queries are submitted in schedule order (the engine's
    ``max_batch`` chops them into batches) and a final flush drains the
    tail.
    """
    config = config or LoadConfig()
    store = engine.index.store
    query_ids = generate_queries(len(store), config)
    words = [store.word_of(int(i)) for i in query_ids]
    arrivals = _arrival_times_us(config)

    engine.reset_stats()
    wall = StatTimer("serve.load")
    with wall:
        tickets = [engine.submit(word, config.k) for word in words]
        engine.flush()
    results = [t.result for t in tickets]

    stats = engine.stats
    # The modeled arrival of each batch is its first query's timestamp.
    batch_arrivals: list[float] = []
    cursor = 0
    for size in stats.batch_sizes:
        batch_arrivals.append(float(arrivals[cursor]))
        cursor += size
    return ServeReport(
        index_label=index_label,
        num_queries=config.num_queries,
        k=config.k,
        seed=config.seed,
        batch_sizes=list(stats.batch_sizes),
        batch_seconds=list(stats.batch_seconds),
        batch_arrival_us=batch_arrivals,
        cache_hits=stats.cache.hits,
        cache_misses=stats.cache.misses,
        cache_evictions=stats.cache.evictions,
        answers_sha256=_fingerprint(words, results),
        total_seconds=wall.total,
        max_batch=engine.max_batch,
        search_block=engine.search_block,
    )
