"""Seed-deterministic load generation and the serving report.

:func:`run_load` drives a :class:`~repro.serve.engine.QueryEngine` with a
reproducible workload: a Zipf-distributed query mix over the store's rows
(rank = row id + 1, exponent configurable — heavy-tail traffic like real
query logs) and a fixed arrival schedule (exponential inter-arrival gaps
at a modeled QPS).  Both streams derive from the config seed via
:func:`repro.util.rng.keyed_rng`, so the *modeled* side of a run — which
words are asked, how the stream chops into batches, which lookups hit the
cache, and every answer — is a pure function of ``(seed, config, engine
knobs)`` and is bit-identical for any ``workers`` setting.

The resulting :class:`ServeReport` separates that modeled core (exposed
by :meth:`ServeReport.modeled`, what determinism tests pin) from measured
wall-clock fields (throughput, p50/p95/p99 latency), and exports as JSON
(:meth:`ServeReport.to_json`) and as Chrome-trace events
(:meth:`ServeReport.chrome_trace_events`) alongside the trainer's
:mod:`repro.cluster.trace` output.

The single-stream assumptions this module once baked in (one tenant, one
fixed exponential schedule) now live behind
:mod:`repro.serve.workload` — multi-tenant mixes, richer arrival
processes, open/closed-loop modes, and SLO verdicts — with
:func:`generate_queries` and the arrival schedule delegating to that API
bit-compatibly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import hashlib
import json

import numpy as np

from repro.galois.timers import StatTimer
from repro.serve.engine import QueryEngine
from repro.util.rng import DEFAULT_SEED, keyed_rng

__all__ = [
    "LoadConfig",
    "ServeReport",
    "generate_queries",
    "run_load",
    "FrontierConfig",
    "clustered_matrix",
    "frontier_store",
    "sweep_frontier",
    "check_frontier_floors",
]

#: Domain tags keeping the load generator's RNG streams disjoint from
#: every other consumer of the same root seed.  The query-mix ("QRM",
#: 0x51524D) and arrival-schedule ("ARV", 0x415256) domains moved to
#: :mod:`repro.serve.workload` (tenants.py / arrivals.py) when the
#: single fixed stream was generalized; the delegating functions below
#: stay bit-compatible.
_CLUSTER_DOMAIN = 0x434C53  # "CLS" — synthetic clustered matrix
_RECALL_DOMAIN = 0x524340  # "RC@" — frontier recall sample

_US = 1e6


@dataclass(frozen=True)
class LoadConfig:
    """One load run: how many queries, their mix, and the modeled arrivals.

    ``zipf_exponent`` shapes the popularity skew (1.0-1.3 matches web
    query logs); ``arrival_qps`` is the *modeled* offered rate that
    timestamps the Chrome trace — execution itself is closed-loop.
    """

    num_queries: int = 512
    k: int = 10
    zipf_exponent: float = 1.1
    arrival_qps: float = 2000.0
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        # num_queries == 0 is a legal degenerate run: the report has an
        # empty stream, zero throughput and all-zero percentiles.
        if self.num_queries < 0:
            raise ValueError(
                f"num_queries must be non-negative, got {self.num_queries}"
            )
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.zipf_exponent < 0:
            raise ValueError(
                f"zipf_exponent must be non-negative, got {self.zipf_exponent}"
            )
        if self.arrival_qps <= 0:
            raise ValueError(f"arrival_qps must be positive, got {self.arrival_qps}")


def generate_queries(vocab_size: int, config: LoadConfig) -> np.ndarray:
    """The deterministic query-id stream for ``config`` (Zipf over rows).

    Delegates to the workload harness' tenant machinery as the
    degenerate single-tenant mix over the full vocabulary — the stream
    is **bit-identical** to the pre-workload formulation (same rng
    domain, same single ``choice`` draw), which the regression tests pin
    against the answer hashes recorded in ``BENCH_serve.json``.
    """
    from repro.serve.workload.tenants import TenantMix

    if vocab_size <= 0:
        raise ValueError(f"vocab_size must be positive, got {vocab_size}")
    mix = TenantMix.single(zipf_exponent=config.zipf_exponent)
    _, ids = mix.query_stream(vocab_size, config.num_queries, config.seed)
    return ids


def _arrival_times_us(config: LoadConfig) -> np.ndarray:
    """Modeled arrival timestamps (microseconds), fixed by the seed.

    The fixed exponential schedule is now one arrival process among
    several (:mod:`repro.serve.workload.arrivals`); the Poisson process
    reproduces the legacy stream bit-for-bit for the same seed.
    """
    from repro.serve.workload.arrivals import PoissonArrivals, arrival_times_us

    return arrival_times_us(
        PoissonArrivals(config.arrival_qps), config.num_queries, config.seed
    )


@dataclass
class ServeReport:
    """What one load run asked, answered, and cost.

    Modeled fields (everything :meth:`modeled` returns) are bit-stable
    across runs with the same seed and engine configuration, regardless
    of executor width; measured fields (``total_seconds``, throughput,
    latency percentiles) are real wall-clock and vary run to run.
    """

    index_label: str
    num_queries: int
    k: int
    seed: int
    batch_sizes: list[int]
    batch_seconds: list[float]
    batch_arrival_us: list[float]
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    answers_sha256: str
    total_seconds: float
    max_batch: int
    search_block: int
    extras: dict = field(default_factory=dict)

    # -- derived -----------------------------------------------------------
    @property
    def throughput_qps(self) -> float:
        return self.num_queries / self.total_seconds if self.total_seconds > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def batch_size_histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for size in self.batch_sizes:
            hist[size] = hist.get(size, 0) + 1
        return dict(sorted(hist.items()))

    def _per_query_seconds(self) -> np.ndarray:
        return np.repeat(
            np.asarray(self.batch_seconds, dtype=np.float64),
            np.asarray(self.batch_sizes, dtype=np.int64),
        )

    def latency_percentiles_ms(self) -> dict[str, float]:
        """p50/p95/p99 of per-query service time (its batch's latency)."""
        per_query = self._per_query_seconds()
        if per_query.size == 0:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        p50, p95, p99 = np.percentile(per_query, [50, 95, 99]) * 1e3
        return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}

    def modeled(self) -> dict:
        """The deterministic core: identical for identical seeds/configs."""
        return {
            "index": self.index_label,
            "num_queries": self.num_queries,
            "k": self.k,
            "seed": self.seed,
            "max_batch": self.max_batch,
            "search_block": self.search_block,
            "batch_sizes": list(self.batch_sizes),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "answers_sha256": self.answers_sha256,
        }

    # -- export ------------------------------------------------------------
    def as_dict(self) -> dict:
        latency = self.latency_percentiles_ms()
        return {
            "modeled": self.modeled(),
            "measured": {
                "total_seconds": self.total_seconds,
                "throughput_qps": self.throughput_qps,
                "latency_ms": latency,
                "batch_seconds": list(self.batch_seconds),
            },
            "cache_hit_rate": self.cache_hit_rate,
            "batch_size_histogram": {
                str(size): count
                for size, count in self.batch_size_histogram().items()
            },
            "extras": dict(self.extras),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def chrome_trace_events(self, tid: int = 0) -> list[dict]:
        """Complete 'X' events, one per batch, on a dedicated engine row.

        Timestamps come from the *modeled* arrival schedule (the batch's
        first query), durations from measured batch latency — the same
        convention as :mod:`repro.cluster.trace`, where modeled and
        measured time share a timeline.  ``tid`` picks the row, so
        several reports can merge into one trace.
        """
        events: list[dict] = []
        for index, (size, seconds, arrival) in enumerate(
            zip(self.batch_sizes, self.batch_seconds, self.batch_arrival_us)
        ):
            events.append(
                {
                    "name": f"batch {index}",
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "ts": float(arrival),
                    "dur": float(seconds) * _US,
                    "cat": "serve",
                    "args": {"queries": int(size), "index": self.index_label},
                }
            )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": f"serve engine ({self.index_label})"},
            }
        )
        return events

    def trace_json(self) -> str:
        return json.dumps({"traceEvents": self.chrome_trace_events()})

    def summary(self) -> str:
        latency = self.latency_percentiles_ms()
        return (
            f"{self.index_label}: {self.num_queries} queries, "
            f"{self.throughput_qps:,.0f} qps, "
            f"p50 {latency['p50']:.3f}ms p95 {latency['p95']:.3f}ms "
            f"p99 {latency['p99']:.3f}ms, "
            f"cache hit rate {self.cache_hit_rate:.1%}"
        )


def _fingerprint(words: list[str], results: list[tuple[np.ndarray, np.ndarray]]) -> str:
    from repro.serve.shard import fingerprint_update

    digest = hashlib.sha256()
    for word, (ids, scores) in zip(words, results):
        fingerprint_update(digest, word, ids, scores)
    return digest.hexdigest()


def run_load(
    engine: QueryEngine,
    config: LoadConfig | None = None,
    index_label: str = "index",
) -> ServeReport:
    """Drive ``engine`` with the workload of ``config``; report the run.

    Queries already sitting in the engine's buffer are flushed first and
    the stats reset, so the report covers exactly this run (a stale
    pending query would otherwise skew the first batch's size and walk
    the arrival cursor past the schedule).  Queries are submitted in
    schedule order (the engine's ``max_batch`` chops them into batches)
    and a final flush drains the tail.
    """
    config = config or LoadConfig()
    store = engine.index.store
    query_ids = generate_queries(len(store), config)
    words = [store.word_of(int(i)) for i in query_ids]
    arrivals = _arrival_times_us(config)

    if engine.pending:
        engine.flush()
    engine.reset_stats()
    wall = StatTimer("serve.load")
    with wall:
        tickets = [engine.submit(word, config.k) for word in words]
        engine.flush()
    results = [t.result for t in tickets]

    stats = engine.stats
    # The modeled arrival of each batch is its first query's timestamp.
    batch_arrivals: list[float] = []
    cursor = 0
    for size in stats.batch_sizes:
        batch_arrivals.append(float(arrivals[min(cursor, len(arrivals) - 1)]))
        cursor += size
    extras: dict = {}
    serve_extras = getattr(engine, "serve_extras", None)
    if callable(serve_extras):
        extras.update(serve_extras())
    return ServeReport(
        index_label=index_label,
        num_queries=config.num_queries,
        k=config.k,
        seed=config.seed,
        batch_sizes=list(stats.batch_sizes),
        batch_seconds=list(stats.batch_seconds),
        batch_arrival_us=batch_arrivals,
        cache_hits=stats.cache.hits,
        cache_misses=stats.cache.misses,
        cache_evictions=stats.cache.evictions,
        answers_sha256=_fingerprint(words, results),
        total_seconds=wall.total,
        max_batch=engine.max_batch,
        search_block=engine.search_block,
        extras=extras,
    )


# ----------------------------------------------------------------------
# Recall-vs-QPS frontier
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FrontierConfig:
    """One frontier sweep: the synthetic store, the workload, the points.

    The store is a seed-deterministic *clustered* Gaussian matrix
    (:func:`clustered_matrix`): rows are family centers plus noise, the
    serving-scale analogue of the synthetic corpus' word families, which
    is the geometry trained embeddings actually have (and the reason IVF
    cells pay off).  ``nprobes`` are the IVF sweep points; ``quant_nprobes``
    picks which of them are repeated through the int8 and PQ code variants.
    The defaults are the **CI smoke configuration** — small enough to run
    in seconds, recorded in ``BENCH_serve.json`` next to the full-scale
    frontier so `serve-bench --frontier --check-floors` can re-verify the
    recall floors deterministically.
    """

    vocab_size: int = 8000
    dim: int = 32
    clusters: int = 160
    spread: float = 0.35
    num_queries: int = 512
    recall_queries: int = 128
    k: int = 10
    batch: int = 64
    seed: int = DEFAULT_SEED
    nlist: int | None = None
    nprobes: tuple[int, ...] = (1, 2, 4, 8, 16)
    quant_nprobes: tuple[int, ...] = (8, 16)
    pq_m: int = 8
    pq_bits: int = 8
    include_lsh: bool = True

    def __post_init__(self) -> None:
        if self.vocab_size <= 0:
            raise ValueError(f"vocab_size must be positive, got {self.vocab_size}")
        if self.dim <= 0:
            raise ValueError(f"dim must be positive, got {self.dim}")
        if not 1 <= self.clusters <= self.vocab_size:
            raise ValueError(
                f"clusters must be in [1, {self.vocab_size}], got {self.clusters}"
            )
        if self.spread <= 0:
            raise ValueError(f"spread must be positive, got {self.spread}")
        for name in ("num_queries", "recall_queries", "k", "batch"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if not self.nprobes or any(p <= 0 for p in self.nprobes):
            raise ValueError(f"nprobes must be positive, got {self.nprobes}")
        if any(p <= 0 for p in self.quant_nprobes):
            raise ValueError(f"quant_nprobes must be positive, got {self.quant_nprobes}")

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        out["nprobes"] = list(self.nprobes)
        out["quant_nprobes"] = list(self.quant_nprobes)
        return out


def clustered_matrix(
    vocab_size: int,
    dim: int,
    clusters: int,
    spread: float = 0.35,
    seed: int = DEFAULT_SEED,
) -> np.ndarray:
    """A seed-deterministic family-structured embedding matrix.

    ``clusters`` unit-norm centers are drawn, every row picks a center
    uniformly and adds ``spread``-scaled Gaussian noise — the same
    center-plus-variation geometry the synthetic corpus plants through
    word families, at vocabularies far beyond what a training run can
    reach in-process.  Smaller ``spread`` means tighter families (easier
    ANN); ``spread`` around 0.3-0.4 matches the within-family cosines of
    models trained on the presets.
    """
    if not 1 <= clusters <= vocab_size:
        raise ValueError(f"clusters must be in [1, {vocab_size}], got {clusters}")
    if spread <= 0:
        raise ValueError(f"spread must be positive, got {spread}")
    rng = keyed_rng(seed, _CLUSTER_DOMAIN, vocab_size, dim, clusters)
    centers = rng.normal(size=(clusters, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    assignment = rng.integers(0, clusters, size=vocab_size)
    noise = rng.normal(scale=spread / np.sqrt(dim), size=(vocab_size, dim))
    return (centers[assignment] + noise).astype(np.float32)


def frontier_store(config: FrontierConfig):
    """The :class:`~repro.serve.store.EmbeddingStore` a sweep runs over."""
    from repro.serve.store import EmbeddingStore

    matrix = clustered_matrix(
        config.vocab_size, config.dim, config.clusters, config.spread, config.seed
    )
    width = len(str(config.vocab_size - 1))
    return EmbeddingStore(matrix, [f"tok{i:0{width}d}" for i in range(config.vocab_size)])


def _recall_floor(recall: float) -> float:
    """The regression floor recorded for a measured recall: 0.05 headroom
    (absorbs BLAS/numpy low-order drift across environments), floored at 0."""
    return max(0.0, round(recall - 0.05, 3))


def _measure_point(index, queries: np.ndarray, k: int, batch: int) -> dict:
    """Measured QPS and per-batch latency for one index on one stream."""
    batch_seconds: list[float] = []
    timer = StatTimer("serve.frontier")
    for start in range(0, queries.shape[0], batch):
        timer.start()
        index.search(queries[start : start + batch], k)
        batch_seconds.append(timer.stop())
    qps = queries.shape[0] / timer.total if timer.total > 0 else 0.0
    per_query_ms = 1e3 * np.asarray(batch_seconds) / batch
    return {
        "qps": float(qps),
        "p50_batch_ms": float(np.percentile(np.asarray(batch_seconds) * 1e3, 50)),
        "p50_query_ms": float(np.percentile(per_query_ms, 50)),
    }


def sweep_frontier(config: FrontierConfig | None = None, store=None) -> dict:
    """Measure the recall-vs-QPS frontier; returns the JSON-ready payload.

    Points: brute-force exact (the recall=1 anchor), LSH at its defaults,
    IVF with float32 residual rescoring at every ``config.nprobes``, and
    IVF over the int8 / PQ code variants at ``config.quant_nprobes``.
    Recall@k is computed against the exact index on a seed-deterministic
    uniform row sample; QPS runs the Zipf query stream of
    :func:`generate_queries` through ``index.search`` in fixed
    ``config.batch``-row batches (raw index throughput — no result cache,
    so the numbers compare index work, not cache hit rates).  Each point
    carries a ``recall_floor`` 0.05 below its measured recall; CI re-runs
    the sweep and fails if any point sinks below its recorded floor
    (:func:`check_frontier_floors`).
    """
    from repro.serve.index import ExactIndex, LSHIndex, recall_at_k
    from repro.serve.ivf import IVFIndex, default_nlist
    from repro.serve.quant import Int8Store, PQStore

    config = config or FrontierConfig()
    if store is None:
        store = frontier_store(config)
    V = len(store)
    query_ids = generate_queries(V, LoadConfig(
        num_queries=config.num_queries, k=config.k, seed=config.seed
    ))
    queries = store.matrix[query_ids]
    recall_rng = keyed_rng(config.seed, _RECALL_DOMAIN)
    recall_queries = store.matrix[
        recall_rng.choice(V, size=min(config.recall_queries, V), replace=False)
    ]
    exact = ExactIndex(store)
    exact_ids, _ = exact.search(recall_queries, config.k)

    def recall_against_exact(index) -> float:
        approx_ids, _ = index.search(recall_queries, config.k)
        hits = total = 0
        for row in range(exact_ids.shape[0]):
            truth = set(int(i) for i in exact_ids[row] if i >= 0)
            got = set(int(i) for i in approx_ids[row] if i >= 0)
            hits += len(truth & got)
            total += len(truth)
        return hits / total if total else 1.0

    points: list[dict] = []

    def add_point(label: str, family: str, index, params: dict,
                  build_seconds: float, memory_bytes: int) -> None:
        recall = 1.0 if family == "exact" else recall_against_exact(index)
        measured = _measure_point(index, queries, config.k, config.batch)
        points.append({
            "label": label,
            "family": family,
            "params": params,
            "recall_at_k": float(recall),
            "recall_floor": _recall_floor(recall),
            "build_seconds": float(build_seconds),
            "memory_bytes": int(memory_bytes),
            **measured,
        })

    add_point("exact", "exact", exact, {}, 0.0, store.normalized().nbytes)

    if config.include_lsh:
        timer = StatTimer("serve.frontier.build")
        with timer:
            lsh = LSHIndex(store, seed=config.seed)
        add_point(
            "lsh", "lsh", lsh,
            {"bits": lsh.bits, "tables": lsh.tables, "probes": lsh.probes},
            timer.total, store.normalized().nbytes,
        )

    nlist = config.nlist or default_nlist(V)
    timer = StatTimer("serve.frontier.build")
    with timer:
        ivf = IVFIndex(store, nlist=nlist, nprobe=1, seed=config.seed)
    ivf_build = timer.total
    float_bytes = store.normalized().nbytes + ivf.centroids.nbytes
    for nprobe in config.nprobes:
        ivf.nprobe = min(nprobe, nlist)
        add_point(
            f"ivf-f32(nprobe={nprobe})", "ivf", ivf,
            {"nlist": nlist, "nprobe": nprobe, "rescoring": "float32"},
            ivf_build, float_bytes,
        )

    if config.quant_nprobes:
        timer = StatTimer("serve.frontier.build")
        with timer:
            int8 = Int8Store.build(store)
            ivf8 = IVFIndex(
                store, nlist=nlist, nprobe=1, seed=config.seed,
                codes=int8, centroids=ivf.centroids,
            )
        int8_build = ivf_build + timer.total
        for nprobe in config.quant_nprobes:
            ivf8.nprobe = min(nprobe, nlist)
            add_point(
                f"ivf-int8(nprobe={nprobe})", "ivf-int8", ivf8,
                {"nlist": nlist, "nprobe": nprobe, "rescoring": "int8"},
                int8_build, int8.memory_bytes() + ivf.centroids.nbytes,
            )
        timer = StatTimer("serve.frontier.build")
        with timer:
            pq = PQStore.build(
                store, m=config.pq_m, bits=config.pq_bits, seed=config.seed
            )
            ivfpq = IVFIndex(
                store, nlist=nlist, nprobe=1, seed=config.seed,
                codes=pq, centroids=ivf.centroids,
            )
        pq_build = ivf_build + timer.total
        pq_label = f"pq{config.pq_m}x{config.pq_bits}"
        for nprobe in config.quant_nprobes:
            ivfpq.nprobe = min(nprobe, nlist)
            add_point(
                f"ivf-{pq_label}(nprobe={nprobe})", "ivf-pq", ivfpq,
                {
                    "nlist": nlist, "nprobe": nprobe, "rescoring": pq_label,
                    "reconstruction_bound": pq.reconstruction_bound(),
                },
                pq_build, pq.memory_bytes() + ivf.centroids.nbytes,
            )

    return {"config": config.as_dict(), "k": config.k, "points": points}


def check_frontier_floors(fresh: dict, recorded: dict) -> list[str]:
    """Compare a fresh sweep against recorded floors; returns violations.

    The recorded payload's points are matched by label.  A config
    mismatch, a recorded point missing from the fresh sweep, or a fresh
    recall@k below a recorded ``recall_floor`` each produce one message;
    an empty list means the frontier holds.
    """
    violations: list[str] = []
    if fresh.get("config") != recorded.get("config"):
        return [
            "frontier config mismatch: sweep ran "
            f"{fresh.get('config')} but floors were recorded for "
            f"{recorded.get('config')}"
        ]
    fresh_by_label = {p["label"]: p for p in fresh.get("points", [])}
    for point in recorded.get("points", []):
        label = point["label"]
        floor = point.get("recall_floor")
        if floor is None:
            continue
        got = fresh_by_label.get(label)
        if got is None:
            violations.append(f"{label}: point missing from fresh sweep")
            continue
        if got["recall_at_k"] < floor:
            violations.append(
                f"{label}: recall@k {got['recall_at_k']:.3f} fell below "
                f"recorded floor {floor:.3f}"
            )
    return violations
