"""Drive an engine with a workload spec; report stats and SLO verdicts.

:func:`run_workload` is the harness: it builds (or accepts) a store and
a backend engine, generates the multi-tenant query stream and the
arrival schedule from the spec seed, drives the engine in **open-loop**
(arrival-driven batching windows) or **closed-loop** (concurrency waves)
mode, splits the run into warm-up and measurement windows at a forced
batch boundary, and evaluates the spec's SLO rules against the
measurement-window stats.

The PR-3/PR-4 determinism contract carries over unchanged:

- **Modeled** — the query stream, the tenant interleaving, every batch
  boundary, the cache accounting, and every answer are pure functions of
  ``(spec, engine knobs)``.  Batching decisions read only *modeled*
  arrival timestamps (never the wall clock), so
  :meth:`WorkloadReport.modeled` is bit-stable across runs and invariant
  to ``workers=`` / ``REPRO_WORKERS``.
- **Measured** — per-batch wall-clock latency, aggregate and per-tenant
  percentiles over the measurement window, and throughput vary run to
  run; they are what SLO verdicts judge.

Open-loop batching: a query joins the pending buffer at its modeled
arrival; the buffer flushes when ``max_batch`` fills (the engine's own
auto-flush) or when the next arrival falls more than
``flush_horizon_us`` after the first pending arrival — the modeled
analogue of a batching timeout.  Closed-loop batching: each
:class:`~repro.serve.workload.arrivals.RampStage` runs waves of
``concurrency`` simulated users in lock-step — every user submits one
query, the wave flushes, users submit again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import hashlib
import json

import numpy as np

from repro.galois.timers import StatTimer
from repro.serve.engine import QueryEngine
from repro.serve.shard import fingerprint_update
from repro.serve.store import EmbeddingStore
from repro.serve.workload.arrivals import RampStage, arrival_times_us
from repro.serve.workload.plugins import build_backend
from repro.serve.workload.slo import (
    AGGREGATE_SCOPE,
    SLOVerdict,
    all_pass,
    evaluate_slos,
)
from repro.serve.workload.spec import WorkloadSpec

__all__ = ["WorkloadReport", "run_workload"]

_US = 1e6


def _fingerprint(words, results) -> str:
    digest = hashlib.sha256()
    for word, (ids, scores) in zip(words, results):
        fingerprint_update(digest, word, ids, scores)
    return digest.hexdigest()


def _percentiles_ms(seconds: np.ndarray) -> dict[str, float]:
    if seconds.size == 0:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    p50, p95, p99 = np.percentile(seconds, [50, 95, 99]) * 1e3
    return {"p50_ms": float(p50), "p95_ms": float(p95), "p99_ms": float(p99)}


def _resolve_ramp(ramp: tuple[RampStage, ...], n: int) -> list[tuple[int, int]]:
    """Concrete ``(concurrency, count)`` stages covering exactly ``n`` queries.

    A stage with ``queries == 0`` absorbs the remainder; if every stage
    has an explicit count and they run short, the last stage extends.
    """
    stages: list[tuple[int, int]] = []
    remaining = n
    for stage in ramp:
        if remaining == 0:
            break
        count = remaining if stage.queries == 0 else min(stage.queries, remaining)
        stages.append((stage.concurrency, count))
        remaining -= count
    if remaining:
        concurrency, count = stages[-1] if stages else (ramp[-1].concurrency, 0)
        if stages:
            stages[-1] = (concurrency, count + remaining)
        else:
            stages.append((concurrency, remaining))
    return stages


@dataclass
class WorkloadReport:
    """What one workload run asked, answered, cost, and promised.

    Everything :meth:`modeled` returns is bit-stable per ``(spec, engine
    knobs)`` and invariant to executor width; :meth:`measured` fields
    are wall-clock.  ``verdicts`` judge the measurement window against
    the spec's SLO rules; :attr:`slo_pass` is their conjunction.
    """

    name: str
    backend: str
    mode: str
    seed: int
    num_queries: int
    warmup_queries: int
    k: int
    max_batch: int
    tenant_names: list[str]
    tenant_qos: dict[str, str]
    tenant_counts: dict[str, int]
    tenant_measured_counts: dict[str, int]
    batch_sizes: list[int]
    batch_seconds: list[float]
    batch_arrival_us: list[float]
    warmup_batches: int
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    answers_sha256: str
    stream_sha256: str
    total_seconds: float
    measured_seconds: float
    aggregate_measured: dict
    tenant_measured: dict[str, dict]
    verdicts: list[SLOVerdict]
    spec_dict: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    # -- derived -----------------------------------------------------------
    @property
    def slo_pass(self) -> bool:
        return all_pass(self.verdicts)

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def modeled(self) -> dict:
        """The deterministic core — identical for identical spec + knobs."""
        return {
            "name": self.name,
            "backend": self.backend,
            "mode": self.mode,
            "seed": self.seed,
            "num_queries": self.num_queries,
            "warmup_queries": self.warmup_queries,
            "k": self.k,
            "max_batch": self.max_batch,
            "tenant_counts": dict(self.tenant_counts),
            "tenant_measured_counts": dict(self.tenant_measured_counts),
            "batch_sizes": list(self.batch_sizes),
            "warmup_batches": self.warmup_batches,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "answers_sha256": self.answers_sha256,
            "stream_sha256": self.stream_sha256,
        }

    def measured(self) -> dict:
        return {
            "total_seconds": self.total_seconds,
            "measured_seconds": self.measured_seconds,
            "aggregate": dict(self.aggregate_measured),
            "tenants": {name: dict(row) for name, row in self.tenant_measured.items()},
            "batch_seconds": list(self.batch_seconds),
        }

    def slo_stats(self) -> dict:
        """The ``{scope: {metric: value}}`` mapping SLO rules evaluate on."""
        stats = {AGGREGATE_SCOPE: dict(self.aggregate_measured)}
        for name, row in self.tenant_measured.items():
            stats[name] = dict(row)
        return stats

    # -- export ------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "modeled": self.modeled(),
            "measured": self.measured(),
            "verdicts": [verdict.as_dict() for verdict in self.verdicts],
            "slo_pass": self.slo_pass,
            "cache_hit_rate": self.cache_hit_rate,
            "spec": dict(self.spec_dict),
            "extras": dict(self.extras),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def bench_row(self) -> dict:
        """The compact row ``BENCH_serve.json`` records per workload."""
        return {
            "backend": self.backend,
            "mode": self.mode,
            "seed": self.seed,
            "num_queries": self.num_queries,
            "warmup_queries": self.warmup_queries,
            "tenant_counts": dict(self.tenant_counts),
            "answers_sha256": self.answers_sha256,
            "stream_sha256": self.stream_sha256,
            "throughput_qps": self.aggregate_measured.get("qps", 0.0),
            "latency_ms": {
                key: self.aggregate_measured.get(key, 0.0)
                for key in ("p50_ms", "p95_ms", "p99_ms")
            },
            "tenant_latency_ms": {
                name: {
                    key: row.get(key, 0.0) for key in ("p50_ms", "p95_ms", "p99_ms")
                }
                for name, row in self.tenant_measured.items()
            },
            "cache_hit_rate": self.cache_hit_rate,
            "verdicts": [verdict.as_dict() for verdict in self.verdicts],
            "slo_pass": self.slo_pass,
        }

    def chrome_trace_events(self, tid: int = 0) -> list[dict]:
        """Complete 'X' events per batch on one engine row (see loadgen)."""
        events: list[dict] = []
        for index, (size, seconds, arrival) in enumerate(
            zip(self.batch_sizes, self.batch_seconds, self.batch_arrival_us)
        ):
            events.append(
                {
                    "name": f"batch {index}",
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "ts": float(arrival),
                    "dur": float(seconds) * _US,
                    "cat": "workload",
                    "args": {
                        "queries": int(size),
                        "backend": self.backend,
                        "window": (
                            "warmup" if index < self.warmup_batches else "measurement"
                        ),
                    },
                }
            )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": f"workload {self.name} ({self.backend})"},
            }
        )
        return events

    def trace_json(self) -> str:
        return json.dumps({"traceEvents": self.chrome_trace_events()})

    def summary(self) -> str:
        aggregate = self.aggregate_measured
        passed = sum(1 for verdict in self.verdicts if verdict.passed)
        return (
            f"workload {self.name} [{self.backend}/{self.mode}]: "
            f"{self.num_queries} queries ({self.warmup_queries} warm-up), "
            f"{aggregate.get('qps', 0.0):,.0f} qps, "
            f"p99 {aggregate.get('p99_ms', 0.0):.3f}ms, "
            f"cache hit rate {self.cache_hit_rate:.1%}, "
            f"SLOs {passed}/{len(self.verdicts)} pass"
        )


def _drive_open(engine, words, ks, arrivals, warmup: int, horizon_us: float):
    """Submit in arrival order with modeled batching-window flushes."""
    tickets = []
    window_start: float | None = None
    for index, word in enumerate(words):
        if index == warmup and engine.pending:
            engine.flush()  # the warm-up window ends at a batch boundary
        if (
            engine.pending
            and window_start is not None
            and arrivals[index] - window_start > horizon_us
        ):
            engine.flush()
        if not engine.pending:
            window_start = float(arrivals[index])
        tickets.append(engine.submit(word, ks[index]))
    engine.flush()
    return tickets


def _drive_closed(engine, words, ks, stages, warmup: int):
    """Lock-step waves: ``concurrency`` users submit, the wave flushes."""
    tickets = []
    cursor = 0
    for concurrency, count in stages:
        end = cursor + count
        while cursor < end:
            wave = min(concurrency, end - cursor)
            if cursor < warmup < cursor + wave:
                wave = warmup - cursor  # never straddle the window boundary
            for index in range(cursor, cursor + wave):
                tickets.append(engine.submit(words[index], ks[index]))
            engine.flush()
            cursor += wave
    return tickets


def run_workload(
    spec: WorkloadSpec,
    store: EmbeddingStore | None = None,
    engine: QueryEngine | None = None,
    *,
    workers: int | None = None,
    executor=None,
    clock=None,
) -> WorkloadReport:
    """Run ``spec``; returns the full :class:`WorkloadReport`.

    ``store`` overrides the spec's synthetic store (serve a real trained
    snapshot); ``engine`` overrides the backend plugin entirely (the
    spec's ``backend``/``max_batch``/``cache_size`` are then ignored —
    the report labels the run with the spec's backend name regardless).
    ``workers``/``executor``/``clock`` forward to the engine build, with
    the usual ``REPRO_WORKERS`` env default applying when unset.
    """
    if store is None:
        if spec.store is None:
            raise ValueError(
                "spec has no store section; pass a store= explicitly"
            )
        store = spec.store.build(spec.seed)
    if engine is None:
        engine_kwargs: dict = {
            "max_batch": spec.max_batch,
            "cache_size": spec.cache_size,
            "workers": workers,
            "executor": executor,
        }
        if clock is not None:
            engine_kwargs["clock"] = clock
        engine = build_backend(
            spec.backend,
            store,
            spec.backend_options,
            seed=spec.seed,
            **engine_kwargs,
        )

    n = spec.num_queries
    warmup = spec.warmup_queries
    tenant_idx, query_ids = spec.tenants.query_stream(len(store), n, spec.seed)
    words = [store.word_of(int(i)) for i in query_ids]
    ks = [
        tenant.k if tenant.k is not None else spec.k
        for tenant in (spec.tenants.tenants[t] for t in tenant_idx)
    ]
    arrivals = arrival_times_us(spec.arrivals, n, spec.seed)

    if engine.pending:
        engine.flush()
    engine.reset_stats()
    wall = StatTimer("serve.workload")
    with wall:
        if spec.mode == "open":
            tickets = _drive_open(
                engine, words, ks, arrivals, warmup, spec.flush_horizon_us
            )
        else:
            stages = _resolve_ramp(spec.ramp, n)
            tickets = _drive_closed(engine, words, ks, stages, warmup)
    results = [ticket.result for ticket in tickets]

    stats = engine.stats
    batch_sizes = list(stats.batch_sizes)
    batch_seconds = list(stats.batch_seconds)

    # The warm-up window ends at a forced batch boundary; find it.
    warmup_batches = 0
    covered = 0
    for size in batch_sizes:
        if covered >= warmup:
            break
        covered += size
        warmup_batches += 1
    if covered != warmup:
        raise RuntimeError(
            f"warm-up boundary fell inside a batch (covered {covered} of "
            f"{warmup}) — the driver must force a flush at the boundary"
        )

    # Modeled batch arrival stamps: open mode reads the arrival schedule
    # (each batch stamped by its first query); closed mode has no modeled
    # schedule, so batches stack end-to-end on measured durations (a
    # trace-only, measured-side convention — not part of modeled()).
    batch_arrival_us: list[float] = []
    if spec.mode == "open":
        cursor = 0
        for size in batch_sizes:
            batch_arrival_us.append(float(arrivals[min(cursor, n - 1)]))
            cursor += size
    else:
        elapsed = 0.0
        for seconds in batch_seconds:
            batch_arrival_us.append(elapsed * _US)
            elapsed += seconds

    per_query_seconds = np.repeat(
        np.asarray(batch_seconds, dtype=np.float64),
        np.asarray(batch_sizes, dtype=np.int64),
    )
    measured_mask = np.arange(n) >= warmup
    measured_seconds = float(sum(batch_seconds[warmup_batches:]))

    tenant_counts: dict[str, int] = {}
    tenant_measured_counts: dict[str, int] = {}
    tenant_measured: dict[str, dict] = {}
    for index, tenant in enumerate(spec.tenants.tenants):
        mask = tenant_idx == index
        tenant_counts[tenant.name] = int(mask.sum())
        window = mask & measured_mask
        count = int(window.sum())
        tenant_measured_counts[tenant.name] = count
        row = {
            "queries": count,
            "qos": tenant.qos,
            "qps": count / measured_seconds if measured_seconds > 0 else 0.0,
            **_percentiles_ms(per_query_seconds[window]),
        }
        tenant_measured[tenant.name] = row

    measured_count = int(measured_mask.sum())
    aggregate_measured = {
        "queries": measured_count,
        "qps": measured_count / measured_seconds if measured_seconds > 0 else 0.0,
        "cache_hit_rate": (
            stats.cache.hits / stats.cache.lookups if stats.cache.lookups else 0.0
        ),
        **_percentiles_ms(per_query_seconds[measured_mask]),
    }

    verdicts_stats = {AGGREGATE_SCOPE: aggregate_measured, **tenant_measured}
    verdicts = evaluate_slos(spec.slos, verdicts_stats)

    extras: dict = {}
    serve_extras = getattr(engine, "serve_extras", None)
    if callable(serve_extras):
        extras.update(serve_extras())

    return WorkloadReport(
        name=spec.name,
        backend=spec.backend,
        mode=spec.mode,
        seed=spec.seed,
        num_queries=n,
        warmup_queries=warmup,
        k=spec.k,
        max_batch=engine.max_batch,
        tenant_names=spec.tenants.names,
        tenant_qos={t.name: t.qos for t in spec.tenants.tenants},
        tenant_counts=tenant_counts,
        tenant_measured_counts=tenant_measured_counts,
        batch_sizes=batch_sizes,
        batch_seconds=batch_seconds,
        batch_arrival_us=batch_arrival_us,
        warmup_batches=warmup_batches,
        cache_hits=stats.cache.hits,
        cache_misses=stats.cache.misses,
        cache_evictions=stats.cache.evictions,
        answers_sha256=_fingerprint(words, results),
        stream_sha256=spec.tenants.stream_sha256(tenant_idx, query_ids),
        total_seconds=wall.total,
        measured_seconds=measured_seconds,
        aggregate_measured=aggregate_measured,
        tenant_measured=tenant_measured,
        verdicts=verdicts,
        spec_dict=spec.as_dict(),
        extras=extras,
    )
