"""Backend plugins: one harness, every index and the sharded tier.

Everything the workload harness drives speaks the same surface — an
:class:`~repro.serve.index.Index` honoring ``search(queries, k)``,
wrapped in a :class:`~repro.serve.engine.QueryEngine` (or an engine
subclass like :class:`~repro.serve.shard.ShardedEngine` that *is* its
own front end).  A **backend plugin** is a named builder::

    (store, options, seed, engine_kwargs) -> QueryEngine

registered with :func:`register_backend`.  ``options`` is the workload
spec's ``backend_options`` mapping; builders ``pop`` what they consume
and :func:`build_backend` rejects leftovers, so a typo in a spec fails
loudly instead of silently running the default configuration.

Built-ins: ``exact``, ``lsh``, ``ivf``, ``ivf-int8``, ``ivf-pq``, and
``sharded`` (scatter-gather over :class:`~repro.serve.shard.ShardedIndex`
with replicas).  External code can register more — anything that builds
an object honoring the engine surface qualifies.
"""

from __future__ import annotations

from typing import Callable

from repro.serve.engine import QueryEngine
from repro.serve.index import ExactIndex, LSHIndex
from repro.serve.ivf import IVFIndex, default_nlist
from repro.serve.quant import Int8Store, PQStore
from repro.serve.shard import ShardedEngine, ShardedIndex
from repro.serve.store import EmbeddingStore
from repro.util.rng import DEFAULT_SEED

__all__ = [
    "BackendBuilder",
    "register_backend",
    "available_backends",
    "build_backend",
]

#: ``(store, options, seed, engine_kwargs) -> engine``.  Builders pop the
#: options they consume; leftovers are rejected by :func:`build_backend`.
BackendBuilder = Callable[[EmbeddingStore, dict, int, dict], QueryEngine]

_REGISTRY: dict[str, BackendBuilder] = {}


def register_backend(name: str) -> Callable[[BackendBuilder], BackendBuilder]:
    """Register ``builder`` under ``name`` (decorator); returns it unchanged."""
    if not name:
        raise ValueError("backend name must be non-empty")

    def decorate(builder: BackendBuilder) -> BackendBuilder:
        if name in _REGISTRY:
            raise ValueError(f"backend {name!r} is already registered")
        _REGISTRY[name] = builder
        return builder

    return decorate


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def build_backend(
    name: str,
    store: EmbeddingStore,
    options: dict | None = None,
    *,
    seed: int = DEFAULT_SEED,
    **engine_kwargs,
) -> QueryEngine:
    """Build the engine for backend ``name`` over ``store``.

    ``options`` configures the backend itself (index shape knobs);
    ``engine_kwargs`` (``max_batch``, ``cache_size``, ``workers``,
    ``executor``, ``clock``, ``sanitize``) configure the engine front
    end and are forwarded to whichever engine the plugin constructs.
    Unknown names and unconsumed options raise ``ValueError``.
    """
    builder = _REGISTRY.get(name)
    if builder is None:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        )
    remaining = dict(options or {})
    engine = builder(store, remaining, int(seed), dict(engine_kwargs))
    if remaining:
        raise ValueError(
            f"backend {name!r} does not understand options {sorted(remaining)}"
        )
    return engine


def _engine(index, engine_kwargs: dict) -> QueryEngine:
    return QueryEngine(index, **engine_kwargs)


@register_backend("exact")
def _build_exact(store, options, seed, engine_kwargs):
    return _engine(ExactIndex(store), engine_kwargs)


@register_backend("lsh")
def _build_lsh(store, options, seed, engine_kwargs):
    kwargs = {
        key: options.pop(key)
        for key in ("bits", "tables", "probes")
        if key in options
    }
    return _engine(LSHIndex(store, seed=seed, **kwargs), engine_kwargs)


def _ivf_shape(store, options):
    nlist = int(options.pop("nlist", default_nlist(len(store))))
    nprobe = int(options.pop("nprobe", 8))
    return nlist, nprobe


@register_backend("ivf")
def _build_ivf(store, options, seed, engine_kwargs):
    nlist, nprobe = _ivf_shape(store, options)
    return _engine(
        IVFIndex(store, nlist=nlist, nprobe=nprobe, seed=seed), engine_kwargs
    )


@register_backend("ivf-int8")
def _build_ivf_int8(store, options, seed, engine_kwargs):
    nlist, nprobe = _ivf_shape(store, options)
    codes = Int8Store.build(store)
    return _engine(
        IVFIndex(store, nlist=nlist, nprobe=nprobe, seed=seed, codes=codes),
        engine_kwargs,
    )


@register_backend("ivf-pq")
def _build_ivf_pq(store, options, seed, engine_kwargs):
    nlist, nprobe = _ivf_shape(store, options)
    codes = PQStore.build(
        store,
        m=int(options.pop("m", 8)),
        bits=int(options.pop("bits", 8)),
        seed=seed,
    )
    return _engine(
        IVFIndex(store, nlist=nlist, nprobe=nprobe, seed=seed, codes=codes),
        engine_kwargs,
    )


@register_backend("sharded")
def _build_sharded(store, options, seed, engine_kwargs):
    index = ShardedIndex(
        store,
        num_shards=int(options.pop("shards", 2)),
        replicas=int(options.pop("replicas", 1)),
    )
    return ShardedEngine(index, **engine_kwargs)
