"""Service-level objectives and their verdicts.

An :class:`SLORule` pins one metric in one scope to a threshold —
``p99 latency <= 50 ms for tenant gold``, ``aggregate qps >= 500`` — and
:func:`evaluate_slos` turns rules plus a measured stats mapping into
:class:`SLOVerdict` pass/fail records.  Verdicts are what lands in
``BENCH_serve.json`` and what the CI serve job gates on: any failed
verdict makes ``repro serve-bench --workload`` exit 1.

Latency metrics default to upper bounds (``<=``); throughput and
hit-rate metrics default to lower bounds (``>=``).  A rule whose scope
is missing from the stats (an SLO for a tenant that received no
measurement-window queries) **fails** — a silent vacuous pass would hide
a misconfigured workload.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

__all__ = [
    "LATENCY_METRICS",
    "SLO_METRICS",
    "SLORule",
    "SLOVerdict",
    "evaluate_slos",
    "all_pass",
    "format_verdicts",
]

#: Per-query latency percentiles over the measurement window, in ms.
LATENCY_METRICS = ("p50_ms", "p95_ms", "p99_ms")

#: Every metric a rule may pin, with its default comparison direction.
SLO_METRICS = {
    "p50_ms": "<=",
    "p95_ms": "<=",
    "p99_ms": "<=",
    "qps": ">=",
    "cache_hit_rate": ">=",
    "queries": ">=",
}

AGGREGATE_SCOPE = "aggregate"


@dataclass(frozen=True)
class SLORule:
    """One objective: ``scope.metric op threshold``."""

    metric: str
    threshold: float
    scope: str = AGGREGATE_SCOPE
    op: str | None = None  # "<=" / ">="; None picks the metric's default

    def __post_init__(self) -> None:
        if self.metric not in SLO_METRICS:
            raise ValueError(
                f"unknown metric {self.metric!r}; expected one of "
                f"{sorted(SLO_METRICS)}"
            )
        if self.op is None:
            object.__setattr__(self, "op", SLO_METRICS[self.metric])
        elif self.op not in ("<=", ">="):
            raise ValueError(f"op must be '<=' or '>=', got {self.op!r}")
        if not self.scope:
            raise ValueError("scope must be non-empty")
        if not math.isfinite(self.threshold):
            raise ValueError(f"threshold must be finite, got {self.threshold}")

    def check(self, observed: float) -> bool:
        return observed <= self.threshold if self.op == "<=" else observed >= self.threshold

    def describe(self) -> str:
        return f"{self.scope}: {self.metric} {self.op} {self.threshold:g}"

    def as_dict(self) -> dict:
        return {
            "scope": self.scope,
            "metric": self.metric,
            "op": self.op,
            "threshold": self.threshold,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SLORule":
        """Parse ``{"scope", "metric", "max" | "min" | ("threshold", "op")}``.

        ``max`` is sugar for an upper bound, ``min`` for a lower bound;
        exactly one of ``max``/``min``/``threshold`` must be present.
        """
        spec = dict(data)
        bounds = [key for key in ("max", "min", "threshold") if key in spec]
        if len(bounds) != 1:
            raise ValueError(
                f"SLO rule needs exactly one of max/min/threshold, got {spec}"
            )
        bound = bounds[0]
        value = float(spec.pop(bound))
        op = spec.pop("op", None)
        if bound == "max":
            op = "<="
        elif bound == "min":
            op = ">="
        try:
            return cls(threshold=value, op=op, **spec)
        except TypeError as exc:
            raise ValueError(f"bad SLO rule: {exc}") from None


@dataclass(frozen=True)
class SLOVerdict:
    """One rule's outcome against one run's measured stats."""

    rule: SLORule
    observed: float | None
    passed: bool
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            **self.rule.as_dict(),
            "observed": self.observed,
            "passed": self.passed,
            "detail": self.detail,
        }

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        observed = "n/a" if self.observed is None else f"{self.observed:g}"
        note = f" ({self.detail})" if self.detail else ""
        return f"{status}  {self.rule.describe()}  observed {observed}{note}"


def evaluate_slos(rules, stats: dict) -> list[SLOVerdict]:
    """Evaluate ``rules`` against a ``{scope: {metric: value}}`` mapping.

    ``stats`` carries one ``"aggregate"`` scope plus one scope per tenant
    (measurement-window values).  A missing scope or metric fails the
    rule with a diagnostic detail rather than passing vacuously.
    """
    verdicts: list[SLOVerdict] = []
    for rule in rules:
        scope_stats = stats.get(rule.scope)
        if scope_stats is None:
            verdicts.append(
                SLOVerdict(
                    rule,
                    None,
                    False,
                    f"scope {rule.scope!r} has no measured stats "
                    f"(known scopes: {sorted(stats)})",
                )
            )
            continue
        observed = scope_stats.get(rule.metric)
        if observed is None:
            verdicts.append(
                SLOVerdict(rule, None, False, f"metric {rule.metric!r} not measured")
            )
            continue
        verdicts.append(SLOVerdict(rule, float(observed), rule.check(float(observed))))
    return verdicts


def all_pass(verdicts) -> bool:
    """True when every verdict passed (vacuously true for no rules)."""
    return all(verdict.passed for verdict in verdicts)


def format_verdicts(verdicts) -> str:
    """One line per verdict, FAIL lines first (they gate CI)."""
    ordered = sorted(verdicts, key=lambda verdict: verdict.passed)
    return "\n".join(verdict.summary() for verdict in ordered)
