"""Workload specifications: one JSON document describes one load run.

A :class:`WorkloadSpec` is the declarative form the CLI consumes
(``repro serve-bench --workload spec.json``): which backend serves,
which store it serves over (a seed-deterministic synthetic clustered
store, so CI needs no trained model), how load arrives (open-loop
arrival process or closed-loop concurrency ramp), who sends it (the
tenant mix), how much of the stream is warm-up, and which SLOs gate the
run.  Everything modeled about the run — the query stream, the batch
composition, the cache accounting, every answer — is a pure function of
``(spec, engine knobs)``; see :mod:`repro.serve.workload.runner`.

The JSON shape mirrors the dataclasses::

    {
      "name": "smoke",
      "backend": "ivf", "backend_options": {"nlist": 64, "nprobe": 4},
      "store": {"vocab_size": 4000, "dim": 32, "clusters": 80},
      "mode": "open",
      "arrivals": {"kind": "burst", "base_qps": 800, "burst_qps": 4000,
                   "period_s": 0.25, "burst_s": 0.05},
      "num_queries": 768, "warmup_queries": 128, "k": 10, "seed": 7,
      "tenants": [{"name": "gold", "weight": 2, "zipf_exponent": 1.2,
                   "vocab": [0.0, 0.25], "qos": "gold"}, ...],
      "slos": [{"scope": "aggregate", "metric": "p99_ms", "max": 250.0},
               {"scope": "gold", "metric": "p99_ms", "max": 250.0}]
    }

``mode: "closed"`` replaces ``arrivals`` with ``ramp``, a list of
``{"concurrency": C, "queries": N}`` stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import json
from pathlib import Path

from repro.serve.store import EmbeddingStore
from repro.serve.workload.arrivals import (
    ArrivalProcess,
    PoissonArrivals,
    RampStage,
    arrivals_from_dict,
)
from repro.serve.workload.slo import SLORule
from repro.serve.workload.tenants import TenantMix
from repro.util.rng import DEFAULT_SEED

__all__ = ["StoreSpec", "WorkloadSpec", "MODES"]

MODES = ("open", "closed")


@dataclass(frozen=True)
class StoreSpec:
    """A synthetic clustered store (see ``repro.serve.loadgen.clustered_matrix``).

    Family-structured Gaussian rows — the geometry trained embeddings
    have — at any vocabulary size, built deterministically from the
    workload seed, so workload runs need no trained model.
    """

    vocab_size: int = 4000
    dim: int = 32
    clusters: int = 80
    spread: float = 0.35

    def __post_init__(self) -> None:
        if self.vocab_size <= 0:
            raise ValueError(f"vocab_size must be positive, got {self.vocab_size}")
        if self.dim <= 0:
            raise ValueError(f"dim must be positive, got {self.dim}")
        if not 1 <= self.clusters <= self.vocab_size:
            raise ValueError(
                f"clusters must be in [1, {self.vocab_size}], got {self.clusters}"
            )
        if self.spread <= 0:
            raise ValueError(f"spread must be positive, got {self.spread}")

    def build(self, seed: int) -> EmbeddingStore:
        from repro.serve.loadgen import clustered_matrix

        matrix = clustered_matrix(
            self.vocab_size, self.dim, self.clusters, self.spread, seed
        )
        width = len(str(self.vocab_size - 1))
        words = [f"tok{i:0{width}d}" for i in range(self.vocab_size)]
        return EmbeddingStore(matrix, words)

    def as_dict(self) -> dict:
        return {
            "vocab_size": self.vocab_size,
            "dim": self.dim,
            "clusters": self.clusters,
            "spread": self.spread,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StoreSpec":
        try:
            return cls(**data)
        except TypeError as exc:
            raise ValueError(f"bad store spec: {exc}") from None


@dataclass(frozen=True)
class WorkloadSpec:
    """One declarative load run (see the module docstring for the JSON form)."""

    name: str = "workload"
    backend: str = "exact"
    backend_options: dict = field(default_factory=dict)
    store: StoreSpec | None = field(default_factory=StoreSpec)
    mode: str = "open"
    num_queries: int = 512
    warmup_queries: int = 0
    k: int = 10
    seed: int = DEFAULT_SEED
    arrivals: ArrivalProcess = field(default_factory=PoissonArrivals)
    flush_horizon_us: float = 20000.0
    ramp: tuple[RampStage, ...] = (RampStage(concurrency=8),)
    tenants: TenantMix = field(default_factory=TenantMix.single)
    slos: tuple[SLORule, ...] = ()
    max_batch: int = 64
    cache_size: int = 1024

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("workload name must be non-empty")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.num_queries <= 0:
            raise ValueError(
                f"num_queries must be positive, got {self.num_queries}"
            )
        if not 0 <= self.warmup_queries < self.num_queries:
            raise ValueError(
                f"warmup_queries must be in [0, {self.num_queries}), got "
                f"{self.warmup_queries}"
            )
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.flush_horizon_us < 0:
            raise ValueError(
                f"flush_horizon_us must be non-negative, got {self.flush_horizon_us}"
            )
        if not self.ramp:
            raise ValueError("ramp needs at least one stage")
        if self.max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")
        if self.cache_size <= 0:
            raise ValueError(f"cache_size must be positive, got {self.cache_size}")

    # -- serialization -----------------------------------------------------
    def as_dict(self) -> dict:
        out = {
            "name": self.name,
            "backend": self.backend,
            "backend_options": dict(self.backend_options),
            "mode": self.mode,
            "num_queries": self.num_queries,
            "warmup_queries": self.warmup_queries,
            "k": self.k,
            "seed": self.seed,
            "tenants": self.tenants.as_dict(),
            "slos": [rule.as_dict() for rule in self.slos],
            "max_batch": self.max_batch,
            "cache_size": self.cache_size,
        }
        if self.store is not None:
            out["store"] = self.store.as_dict()
        if self.mode == "open":
            out["arrivals"] = self.arrivals.as_dict()
            out["flush_horizon_us"] = self.flush_horizon_us
        else:
            out["ramp"] = [stage.as_dict() for stage in self.ramp]
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        spec = dict(data)
        kwargs: dict = {}
        if "store" in spec:
            store = spec.pop("store")
            kwargs["store"] = None if store is None else StoreSpec.from_dict(store)
        if "arrivals" in spec:
            kwargs["arrivals"] = arrivals_from_dict(spec.pop("arrivals"))
        if "ramp" in spec:
            kwargs["ramp"] = tuple(
                RampStage(**stage) for stage in spec.pop("ramp")
            )
        if "tenants" in spec:
            kwargs["tenants"] = TenantMix.from_dict(spec.pop("tenants"))
        if "slos" in spec:
            kwargs["slos"] = tuple(
                SLORule.from_dict(rule) for rule in spec.pop("slos")
            )
        try:
            return cls(**spec, **kwargs)
        except TypeError as exc:
            raise ValueError(f"bad workload spec: {exc}") from None

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Path | str) -> "WorkloadSpec":
        return cls.from_json(Path(path).read_text())
