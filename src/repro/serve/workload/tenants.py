"""Multi-tenant traffic: who is asking, over which vocabulary, how skewed.

A :class:`TenantSpec` describes one tenant's traffic: its share of the
stream (``weight``), its popularity skew (``zipf_exponent``), the slice
of the vocabulary it queries (``vocab_start``/``vocab_stop`` fractions —
tenants in real embedding serving see disjoint or overlapping catalog
subsets), its QoS class, and an optional per-tenant top-``k`` override.

A :class:`TenantMix` interleaves tenants into one query stream:

- tenant **assignment** is a weighted seeded draw per query
  (``keyed_rng(seed, tenant domain)``), so the interleaving is a pure
  function of the seed and the mix — independent of arrival process,
  batching, and executor width;
- each tenant's **query ids** draw from a Zipf distribution over its own
  vocabulary slice through a per-tenant rng stream
  (``keyed_rng(seed, mix domain, tenant index)``), so adding a tenant
  never perturbs another tenant's stream.

Bit-compatibility contract: a single-tenant mix over the full vocabulary
reproduces the PR-4 ``generate_queries`` stream **bit-for-bit** — the
single tenant draws from ``keyed_rng(seed, mix domain)`` (no tenant-index
key), exactly the stream the legacy load generator used.
``repro.serve.loadgen.generate_queries`` now delegates here.
"""

from __future__ import annotations

from dataclasses import dataclass
import hashlib
import math

import numpy as np

from repro.util.rng import keyed_rng

__all__ = [
    "QOS_CLASSES",
    "TenantSpec",
    "TenantMix",
    "zipf_probabilities",
]

#: Domain tag for tenant assignment (which tenant issues query i).
_TENANT_DOMAIN = 0x544E54  # "TNT"

#: Domain tag for the query-mix streams.  Shared with the PR-4 load
#: generator so the degenerate single-tenant mix is bit-compatible.
_MIX_DOMAIN = 0x51524D  # "QRM"

#: QoS classes, strictest first.  The class is carried as metadata on
#: every query and surfaces in per-tenant reporting; SLO rules typically
#: pin ``gold`` tenants to tighter tails than ``batch`` tenants.
QOS_CLASSES = ("gold", "standard", "batch")


def zipf_probabilities(size: int, exponent: float) -> np.ndarray:
    """Zipf probabilities over ``size`` ranks (rank 1 most popular)."""
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic profile."""

    name: str
    weight: float = 1.0
    zipf_exponent: float = 1.1
    vocab_start: float = 0.0
    vocab_stop: float = 1.0
    qos: str = "standard"
    k: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.zipf_exponent < 0:
            raise ValueError(
                f"zipf_exponent must be non-negative, got {self.zipf_exponent}"
            )
        if not 0.0 <= self.vocab_start < self.vocab_stop <= 1.0:
            raise ValueError(
                "vocab fractions must satisfy 0 <= start < stop <= 1, got "
                f"[{self.vocab_start}, {self.vocab_stop})"
            )
        if self.qos not in QOS_CLASSES:
            raise ValueError(
                f"qos must be one of {QOS_CLASSES}, got {self.qos!r}"
            )
        if self.k is not None and self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")

    def vocab_slice(self, vocab_size: int) -> tuple[int, int]:
        """The ``[lo, hi)`` row range this tenant queries (never empty)."""
        if vocab_size <= 0:
            raise ValueError(f"vocab_size must be positive, got {vocab_size}")
        lo = min(int(math.floor(self.vocab_start * vocab_size)), vocab_size - 1)
        hi = min(int(math.ceil(self.vocab_stop * vocab_size)), vocab_size)
        return lo, max(hi, lo + 1)

    def as_dict(self) -> dict:
        out = {
            "name": self.name,
            "weight": self.weight,
            "zipf_exponent": self.zipf_exponent,
            "vocab": [self.vocab_start, self.vocab_stop],
            "qos": self.qos,
        }
        if self.k is not None:
            out["k"] = self.k
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        spec = dict(data)
        vocab = spec.pop("vocab", None)
        if vocab is not None:
            if len(vocab) != 2:
                raise ValueError(f"vocab must be [start, stop], got {vocab}")
            spec["vocab_start"], spec["vocab_stop"] = float(vocab[0]), float(vocab[1])
        try:
            return cls(**spec)
        except TypeError as exc:
            raise ValueError(f"bad tenant spec: {exc}") from None


@dataclass(frozen=True)
class TenantMix:
    """A weighted set of tenants sharing one query stream."""

    tenants: tuple[TenantSpec, ...]

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("TenantMix needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")

    def __len__(self) -> int:
        return len(self.tenants)

    @property
    def names(self) -> list[str]:
        return [tenant.name for tenant in self.tenants]

    @classmethod
    def single(cls, zipf_exponent: float = 1.1, name: str = "default") -> "TenantMix":
        """The degenerate one-tenant mix (the legacy single-stream load)."""
        return cls((TenantSpec(name, zipf_exponent=zipf_exponent),))

    def assignments(self, n: int, seed: int) -> np.ndarray:
        """Tenant index per query — a weighted seeded draw."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if len(self.tenants) == 1:
            return np.zeros(n, dtype=np.int64)
        weights = np.asarray([t.weight for t in self.tenants], dtype=np.float64)
        rng = keyed_rng(seed, _TENANT_DOMAIN)
        return rng.choice(
            len(self.tenants), size=n, p=weights / weights.sum()
        ).astype(np.int64)

    def query_stream(
        self, vocab_size: int, n: int, seed: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The interleaved stream: ``(tenant index, query row id)`` per query.

        Per-tenant streams are independent (per-tenant rng keys), and a
        single-tenant full-vocabulary mix reproduces the legacy
        ``generate_queries`` stream bit-for-bit.
        """
        if vocab_size <= 0:
            raise ValueError(f"vocab_size must be positive, got {vocab_size}")
        tenant_idx = self.assignments(n, seed)
        ids = np.zeros(n, dtype=np.int64)
        single = len(self.tenants) == 1
        for index, tenant in enumerate(self.tenants):
            mask = tenant_idx == index
            count = int(mask.sum())
            if count == 0:
                continue
            lo, hi = tenant.vocab_slice(vocab_size)
            rng = (
                keyed_rng(seed, _MIX_DOMAIN)
                if single
                else keyed_rng(seed, _MIX_DOMAIN, index)
            )
            probabilities = zipf_probabilities(hi - lo, tenant.zipf_exponent)
            ids[mask] = lo + rng.choice(hi - lo, size=count, p=probabilities)
        return tenant_idx, ids

    def stream_sha256(self, tenant_idx: np.ndarray, ids: np.ndarray) -> str:
        """A fingerprint of the interleaved stream (pins the modeled mix)."""
        digest = hashlib.sha256()
        for tenant in self.tenants:
            digest.update(tenant.name.encode())
            digest.update(b"\x00")
        digest.update(np.ascontiguousarray(tenant_idx, dtype=np.int64).tobytes())
        digest.update(np.ascontiguousarray(ids, dtype=np.int64).tobytes())
        return digest.hexdigest()

    def as_dict(self) -> list[dict]:
        return [tenant.as_dict() for tenant in self.tenants]

    @classmethod
    def from_dict(cls, data: list[dict]) -> "TenantMix":
        return cls(tuple(TenantSpec.from_dict(entry) for entry in data))
