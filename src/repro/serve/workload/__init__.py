"""Multi-tenant workload harness with SLO verdicts.

The load-generation subsystem grown out of ``repro.serve.loadgen``'s
single Zipf stream (the llm-load-test shape: plugin backends, simulated
users, SLO-oriented reporting):

- :mod:`~repro.serve.workload.plugins` — named backend builders over the
  one ``search(queries, k)`` surface: ``exact``, ``lsh``, ``ivf``,
  ``ivf-int8``, ``ivf-pq``, ``sharded``; :func:`register_backend` adds
  more,
- :mod:`~repro.serve.workload.arrivals` — seed-deterministic arrival
  processes (Poisson, diurnal sinusoid, burst trains, staged ramps) and
  closed-loop concurrency :class:`RampStage` ramps,
- :mod:`~repro.serve.workload.tenants` — weighted tenant mixes with
  per-tenant Zipf skew, vocabulary subsets, and QoS classes,
- :mod:`~repro.serve.workload.slo` — SLO rules (``p99 < X ms at Y
  QPS``, per-tenant and aggregate) evaluating to pass/fail verdicts,
- :mod:`~repro.serve.workload.spec` — the JSON workload document
  (:class:`WorkloadSpec`) the CLI consumes,
- :mod:`~repro.serve.workload.runner` — :func:`run_workload`, driving a
  backend in open- or closed-loop mode with warm-up vs measurement
  windows and emitting a :class:`WorkloadReport`.

The determinism contract is the serving tier's: everything modeled
(query stream, batch composition, cache accounting, answers) is a pure
function of the spec and bit-stable across executor widths; only
measured wall-clock stats — what SLO verdicts judge — vary run to run.
"""

from repro.serve.workload.arrivals import (
    ArrivalProcess,
    BurstArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    RampStage,
    Stage,
    StagedArrivals,
    arrival_times_us,
    arrivals_from_dict,
)
from repro.serve.workload.plugins import (
    available_backends,
    build_backend,
    register_backend,
)
from repro.serve.workload.runner import WorkloadReport, run_workload
from repro.serve.workload.slo import (
    SLORule,
    SLOVerdict,
    all_pass,
    evaluate_slos,
    format_verdicts,
)
from repro.serve.workload.spec import StoreSpec, WorkloadSpec
from repro.serve.workload.tenants import QOS_CLASSES, TenantMix, TenantSpec

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalArrivals",
    "BurstArrivals",
    "StagedArrivals",
    "Stage",
    "RampStage",
    "arrival_times_us",
    "arrivals_from_dict",
    "register_backend",
    "available_backends",
    "build_backend",
    "QOS_CLASSES",
    "TenantSpec",
    "TenantMix",
    "SLORule",
    "SLOVerdict",
    "evaluate_slos",
    "all_pass",
    "format_verdicts",
    "StoreSpec",
    "WorkloadSpec",
    "WorkloadReport",
    "run_workload",
]
