"""Embedding serving: the inference side of the stack.

Training (``repro.w2v``) produces a dense embedding matrix; this package
serves nearest-neighbor queries over it at scale:

- :mod:`repro.serve.store` — :class:`EmbeddingStore`, an immutable,
  memory-mappable snapshot of a trained embedding (float32 matrix +
  pre-computed L2 norms + word table) with ``save``/``open`` so serving
  never re-parses text formats,
- :mod:`repro.serve.index` — the :class:`Index` search contract with an
  exact blocked-matmul top-k (:class:`ExactIndex`) and a seeded
  random-hyperplane LSH approximation (:class:`LSHIndex`), plus
  :func:`recall_at_k` to measure the accuracy/speed tradeoff,
- :mod:`repro.serve.ivf` — :class:`IVFIndex`, an inverted-file index
  over seed-deterministic k-means cells (``nlist``/``nprobe`` knobs)
  with exact float32 rescoring or quantized-code scoring,
- :mod:`repro.serve.quant` — :class:`Int8Store` (per-dimension scalar
  quantization) and :class:`PQStore` (product quantization), saved next
  to the float32 snapshot with documented reconstruction-error bounds,
- :mod:`repro.serve.engine` — :class:`QueryEngine`, micro-batching with a
  bounded LRU result cache, executing batches on a
  :class:`~repro.galois.do_all.DoAllExecutor`,
- :mod:`repro.serve.shard` — the distributed tier: :class:`ShardPlan`
  splits a store into grid-aligned contiguous shards (gluon's block
  distribution, replicas as mirrors), :class:`ShardedIndex` scatter-
  gathers top-k across them bit-identically to a single-host
  :class:`ExactIndex`, with load-aware replica routing, fault-schedule
  driven failover, and hot-swappable store generations carrying sha256
  answer fingerprints (:class:`ShardedEngine`),
- :mod:`repro.serve.loadgen` — a seed-deterministic load generator
  (Zipf query mix, fixed arrival schedule) emitting a
  :class:`ServeReport` (throughput, latency percentiles, cache hit rate)
  as JSON and Chrome-trace events, plus the recall-vs-QPS frontier sweep
  (:class:`FrontierConfig`, :func:`sweep_frontier`) CI uses to hold the
  ANN indexes to recorded recall floors,
- :mod:`repro.serve.workload` — the multi-tenant workload harness:
  backend plugins over the one ``search(queries, k)`` surface, seeded
  arrival processes (Poisson, diurnal, bursts, staged ramps), open- and
  closed-loop load, per-tenant Zipf/vocab/QoS mixes, warm-up vs
  measurement windows, and SLO rules whose pass/fail verdicts land in
  ``BENCH_serve.json`` and gate CI
  (:class:`WorkloadSpec`, :func:`run_workload`).

Everything modeled (query answers, batch composition, cache accounting)
is a pure function of the seed; only measured wall-clock fields
(latency, throughput) vary run to run.
"""

from repro.serve.engine import CacheStats, EngineStats, LRUCache, QueryEngine
from repro.serve.index import ExactIndex, Index, LSHIndex, recall_at_k
from repro.serve.ivf import IVFIndex, default_nlist, kmeans
from repro.serve.loadgen import (
    FrontierConfig,
    LoadConfig,
    ServeReport,
    check_frontier_floors,
    clustered_matrix,
    frontier_store,
    run_load,
    sweep_frontier,
)
from repro.serve.quant import Int8Store, PQStore, open_codes
from repro.serve.shard import (
    ShardedEngine,
    ShardedIndex,
    ShardGeneration,
    ShardPlan,
)
from repro.serve.store import EmbeddingStore
from repro.serve.workload import (
    SLORule,
    SLOVerdict,
    TenantMix,
    TenantSpec,
    WorkloadReport,
    WorkloadSpec,
    available_backends,
    build_backend,
    register_backend,
    run_workload,
)

__all__ = [
    "EmbeddingStore",
    "Index",
    "ExactIndex",
    "LSHIndex",
    "IVFIndex",
    "default_nlist",
    "kmeans",
    "Int8Store",
    "PQStore",
    "open_codes",
    "recall_at_k",
    "QueryEngine",
    "LRUCache",
    "CacheStats",
    "EngineStats",
    "ShardPlan",
    "ShardGeneration",
    "ShardedIndex",
    "ShardedEngine",
    "LoadConfig",
    "ServeReport",
    "run_load",
    "FrontierConfig",
    "clustered_matrix",
    "frontier_store",
    "sweep_frontier",
    "check_frontier_floors",
    "WorkloadSpec",
    "WorkloadReport",
    "run_workload",
    "build_backend",
    "register_backend",
    "available_backends",
    "TenantSpec",
    "TenantMix",
    "SLORule",
    "SLOVerdict",
]
