"""Top-k cosine indexes over an :class:`~repro.serve.store.EmbeddingStore`.

Two implementations behind one :class:`Index` contract:

- :class:`ExactIndex` — brute-force cosine top-k as one *batched* blocked
  matmul (the batched-kernel formulation: many queries amortize one pass
  over the matrix, and the vocabulary is walked in cache-sized row blocks
  so memory stays bounded at ``queries x block`` instead of
  ``queries x V``).
- :class:`LSHIndex` — random-hyperplane locality-sensitive hashing:
  every table hashes each row to a ``bits``-wide sign signature of
  projections onto seeded hyperplanes; queries probe their own bucket
  plus the ``probes`` flip sets (single bits *and* bit pairs, ranked by
  summed projection margin — the perturbation sets most likely to hold
  near neighbors) with the smallest total margin (multi-probe), then the
  candidate union is *exactly* rescored.
  Hyperplanes derive from the seed tree (:func:`repro.util.rng.keyed_rng`),
  so an index is a pure function of ``(store, seed, shape knobs)``.

Both tie-break identically — descending score, then ascending row id —
so results are bit-reproducible across batch sizes, block sizes and
executors.  :func:`recall_at_k` measures an approximate index against an
exact one on the same queries.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.serve.store import EmbeddingStore
from repro.util.rng import DEFAULT_SEED, keyed_rng

__all__ = ["Index", "ExactIndex", "LSHIndex", "recall_at_k", "top_k_desc"]

#: Domain tag mixed into LSH seed derivation so the hyperplane streams never
#: collide with other consumers of the same root seed.
_LSH_DOMAIN = 0x4C5348  # "LSH"

#: Multi-probe pair flips are drawn from this many lowest-margin bits;
#: bounds the probe-sequence enumeration at pool + C(pool, 2) flip sets.
_PROBE_PAIR_POOL = 12


def top_k_desc(scores: np.ndarray, ids: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-row top-``k`` of ``(scores, ids)`` candidates, deterministically.

    ``scores``/``ids`` are ``(n, m)`` parallel candidate arrays; rows with
    fewer than ``k`` real candidates are padded with ``id -1 / score -inf``
    by the caller.  Order is descending score with ascending id breaking
    ties, which makes results independent of candidate arrangement.
    """
    k = min(k, scores.shape[1])
    order = np.lexsort((ids, -scores), axis=-1)[:, :k]
    rows = np.arange(scores.shape[0])[:, None]
    return ids[rows, order], scores[rows, order]


def _normalize_queries(queries: np.ndarray, dim: int) -> np.ndarray:
    queries = np.ascontiguousarray(np.atleast_2d(queries), dtype=np.float32)
    if queries.ndim != 2 or queries.shape[1] != dim:
        raise ValueError(
            f"queries must be (n, {dim}), got shape {queries.shape}"
        )
    norms = np.linalg.norm(queries, axis=1, keepdims=True)
    return queries / np.where(norms > 0, norms, 1.0)


@runtime_checkable
class Index(Protocol):
    """Search contract: batched cosine top-k over a store.

    ``search`` takes raw (unnormalized) query vectors ``(n, dim)`` and
    returns ``(ids, scores)`` arrays of shape ``(n, k)``: row ids into the
    store ordered by descending cosine (ascending id on ties), and the
    cosine scores.  Rows an approximate index could not fill are padded
    with ``id -1`` and ``score -inf``.
    """

    @property
    def store(self) -> EmbeddingStore: ...  # pragma: no cover - protocol

    def search(
        self, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]: ...  # pragma: no cover - protocol


class ExactIndex:
    """Blocked brute-force cosine top-k.

    ``block_rows`` bounds the score buffer: the normalized store matrix is
    walked block by block, each block's partial top-k merged into the
    running best.  Queries are processed in fixed ``query_block``-row
    tiles, the last tile zero-padded to full width, so every matmul the
    index issues has an identical shape no matter how callers batch their
    queries.  BLAS kernels round differently for different shapes; pinning
    the shape makes results *bit-identical* whether a query arrives alone
    or inside any batch — the parity the serving layer's determinism
    contract relies on.
    """

    def __init__(
        self, store: EmbeddingStore, block_rows: int = 8192, query_block: int = 32
    ):
        if block_rows <= 0:
            raise ValueError(f"block_rows must be positive, got {block_rows}")
        if query_block <= 0:
            raise ValueError(f"query_block must be positive, got {query_block}")
        self._store = store
        self.block_rows = int(block_rows)
        self.query_block = int(query_block)

    @property
    def store(self) -> EmbeddingStore:
        return self._store

    def _search_tile(self, tile: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Top-k for one full ``(query_block, dim)`` tile."""
        normalized = self._store.normalized()
        V = normalized.shape[0]
        n = tile.shape[0]
        best_ids = np.full((n, k), -1, dtype=np.int64)
        best_scores = np.full((n, k), -np.inf, dtype=np.float32)
        rows = np.arange(n)[:, None]
        for start in range(0, V, self.block_rows):
            block = normalized[start : start + self.block_rows]
            scores = tile @ block.T  # (query_block, block) — the batched kernel
            width = min(k, scores.shape[1])
            if width < scores.shape[1]:
                part = np.argpartition(-scores, width - 1, axis=1)[:, :width]
            else:
                part = np.broadcast_to(np.arange(scores.shape[1]), scores.shape)
            cand_ids = np.concatenate(
                [best_ids, (part + start).astype(np.int64)], axis=1
            )
            cand_scores = np.concatenate(
                [best_scores, scores[rows, part].astype(np.float32)], axis=1
            )
            best_ids, best_scores = top_k_desc(cand_scores, cand_ids, k)
        return best_ids, best_scores

    def search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        V = len(self._store)
        k = min(k, V)
        q = _normalize_queries(queries, self._store.dim)
        n = q.shape[0]
        out_ids = np.empty((n, k), dtype=np.int64)
        out_scores = np.empty((n, k), dtype=np.float32)
        for start in range(0, n, self.query_block):
            tile = q[start : start + self.query_block]
            fill = tile.shape[0]
            if fill < self.query_block:
                tile = np.concatenate(
                    [tile, np.zeros((self.query_block - fill, q.shape[1]), q.dtype)]
                )
            ids, scores = self._search_tile(np.ascontiguousarray(tile), k)
            out_ids[start : start + fill] = ids[:fill]
            out_scores[start : start + fill] = scores[:fill]
        return out_ids, out_scores


class LSHIndex:
    """Random-hyperplane LSH with multi-probe and exact rescoring.

    ``bits`` defaults to a store-sized choice (aiming at ~16 rows per
    bucket, capped to 24) so small vocabularies do not shatter into empty
    buckets; ``tables`` independent hash tables and ``probes`` extra
    probes per table trade recall for candidate volume.  The probe
    sequence follows the multi-probe construction: flip sets of one or
    two signature bits, ranked by the summed projection margin of the
    flipped bits (the cheapest sign flips are the likeliest to separate a
    near neighbor from the query), ties broken by ascending bit mask.
    Candidates from all tables are unioned and rescored with true cosine,
    so returned scores are exact — only the candidate set is approximate.
    ``k >= len(store)`` bypasses the tables entirely and rescores every
    row, so an over-wide query degrades to exact search instead of
    padding with misses.
    """

    def __init__(
        self,
        store: EmbeddingStore,
        bits: int | None = None,
        tables: int = 6,
        probes: int = 24,
        seed: int = DEFAULT_SEED,
    ):
        if bits is None:
            bits = int(np.clip(np.ceil(np.log2(max(len(store), 2) / 16)), 2, 24))
        if not 1 <= bits <= 62:
            raise ValueError(f"bits must be in [1, 62], got {bits}")
        if tables <= 0:
            raise ValueError(f"tables must be positive, got {tables}")
        if probes < 0:
            raise ValueError(f"probes must be non-negative, got {probes}")
        self._store = store
        self.bits = int(bits)
        self.tables = int(tables)
        pool = min(self.bits, _PROBE_PAIR_POOL)
        self.probes = min(int(probes), self.bits + pool * (pool - 1) // 2)
        self.seed = int(seed)
        normalized = store.normalized()
        self._planes: list[np.ndarray] = []
        self._buckets: list[dict[int, np.ndarray]] = []
        weights = (1 << np.arange(self.bits, dtype=np.int64))
        for table in range(self.tables):
            rng = keyed_rng(self.seed, _LSH_DOMAIN, table)
            planes = rng.standard_normal((self.bits, store.dim)).astype(np.float32)
            self._planes.append(planes)
            signatures = ((normalized @ planes.T) >= 0) @ weights
            buckets: dict[int, np.ndarray] = {}
            order = np.argsort(signatures, kind="stable")
            sorted_sigs = signatures[order]
            boundaries = np.flatnonzero(np.diff(sorted_sigs)) + 1
            for group in np.split(order, boundaries):
                buckets[int(signatures[group[0]])] = np.sort(group).astype(np.int64)
            self._buckets.append(buckets)

    @property
    def store(self) -> EmbeddingStore:
        return self._store

    def _flip_masks(self, proj: np.ndarray) -> np.ndarray:
        """The ``probes`` perturbation masks for one query's projections.

        Flip sets of size one (every bit) and size two (pairs among the
        ``_PROBE_PAIR_POOL`` lowest-margin bits), ranked by the summed
        projection margin of the flipped bits; ties break on the ascending
        mask value so the sequence is deterministic.
        """
        margins = np.abs(proj)
        order = np.argsort(margins, kind="stable")
        costs = [margins[b] for b in order]
        masks = [1 << int(b) for b in order]
        pool = order[: min(self.bits, _PROBE_PAIR_POOL)]
        for i in range(len(pool)):
            for j in range(i + 1, len(pool)):
                bi, bj = int(pool[i]), int(pool[j])
                costs.append(margins[bi] + margins[bj])
                masks.append((1 << bi) | (1 << bj))
        costs = np.asarray(costs, dtype=np.float64)
        masks = np.asarray(masks, dtype=np.int64)
        pick = np.lexsort((masks, costs))[: self.probes]
        return masks[pick]

    def candidates(self, query: np.ndarray) -> np.ndarray:
        """Sorted unique candidate row ids for one (raw) query vector."""
        q = _normalize_queries(query, self._store.dim)[0]
        found: list[np.ndarray] = []
        for planes, buckets in zip(self._planes, self._buckets):
            proj = planes @ q
            sig = int(((proj >= 0) @ (1 << np.arange(self.bits, dtype=np.int64))))
            # Multi-probe: the base bucket plus the flip sets whose signs
            # are likeliest to differ for near neighbors.
            probe_sigs = [sig]
            probe_sigs.extend(sig ^ int(mask) for mask in self._flip_masks(proj))
            for probe in probe_sigs:
                hit = buckets.get(probe)
                if hit is not None:
                    found.append(hit)
        if not found:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(found))

    def search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        normalized = self._store.normalized()
        k = min(k, len(self._store))
        q = _normalize_queries(queries, self._store.dim)
        n = q.shape[0]
        out_ids = np.full((n, k), -1, dtype=np.int64)
        out_scores = np.full((n, k), -np.inf, dtype=np.float32)
        all_rows = np.arange(len(self._store), dtype=np.int64)
        for i in range(n):
            # k covering the whole store degrades to an exact scan — an
            # over-wide query must not pad with misses.
            cands = all_rows if k >= len(self._store) else self.candidates(q[i])
            if cands.size == 0:
                continue
            scores = (normalized[cands] @ q[i]).astype(np.float32)
            ids, scores = top_k_desc(scores[None, :], cands[None, :], k)
            width = ids.shape[1]
            out_ids[i, :width] = ids[0]
            out_scores[i, :width] = scores[0]
        return out_ids, out_scores


def recall_at_k(
    approx: Index, exact: Index, queries: np.ndarray, k: int = 10
) -> float:
    """Fraction of the exact top-``k`` the approximate index recovers.

    Averaged over queries; the standard recall@k score for ANN indexes.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    exact_ids, _ = exact.search(queries, k)
    approx_ids, _ = approx.search(queries, k)
    hits = 0
    total = 0
    for row in range(exact_ids.shape[0]):
        truth = set(int(i) for i in exact_ids[row] if i >= 0)
        if not truth:
            continue
        got = set(int(i) for i in approx_ids[row] if i >= 0)
        hits += len(truth & got)
        total += len(truth)
    return hits / total if total else 1.0
