"""Quantized store variants: int8 scalar and product-quantized codes.

Both variants compress the store's *normalized* matrix (search is cosine,
so the unit-sphere representation is what rescoring reads) into codes kept
alongside the float32 snapshot, with documented reconstruction-error
bounds:

- :class:`Int8Store` — symmetric per-dimension scalar quantization.
  ``codes[r, d] = round(normalized[r, d] / scale[d])`` clipped to
  ``[-127, 127]`` with ``scale[d] = max_r |normalized[r, d]| / 127``.
  Decoding multiplies back.  **Bound**: round-to-nearest means the
  element-wise error is at most ``scale[d] / 2`` (exactly
  :meth:`Int8Store.max_abs_error`) except where clipping saturates — the
  scale is chosen from the data, so nothing clips at build time — and the
  per-row L2 error is at most ``sqrt(sum_d (scale[d]/2)^2)``
  (:meth:`Int8Store.reconstruction_bound`).  4x smaller than float32.
- :class:`PQStore` — product quantization: the ``dim`` axis splits into
  ``m`` contiguous subspaces of ``dim/m`` components, each with its own
  ``2**bits``-entry codebook trained by seed-deterministic Euclidean
  k-means (:func:`repro.serve.ivf.kmeans`), and every row stores one code
  per subspace.  Decoding concatenates the selected codewords.  **Bound**:
  the per-row L2 error is ``sqrt(sum_m ||x_m - codeword_m||^2)``; its
  maximum over the stored rows is measured at build time and persisted as
  :meth:`PQStore.reconstruction_bound` — an empirical, data-dependent
  bound rather than an a-priori one, validated on every open.
  ``dim * 32 / (m * bits)``-fold smaller than float32.

Scoring support for :class:`~repro.serve.ivf.IVFIndex` is the two-method
protocol ``prepare_query(q) -> ctx`` / ``score(code_rows, ctx)``:

- int8 folds the scales into the query once (``q * scale``), so scoring a
  candidate block is one int8-to-float cast and a matrix-vector product;
- PQ builds the classic ADC lookup table — per subspace, the dot product
  of ``q``'s sub-vector with all ``2**bits`` codewords — and scores a
  candidate as the sum of ``m`` table lookups, never touching floats.

Persistence: ``save(directory)`` drops a ``codes_*.npz`` next to an
existing store's ``vectors.*`` and records the layout under the ``codes``
key of ``meta.json`` (validated field-by-field on ``open`` — error
messages name the offending ``codes.<variant>.<field>``).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.serve.ivf import assign_cells, kmeans
from repro.serve.store import EmbeddingStore, meta_field, read_meta, write_meta
from repro.util.rng import DEFAULT_SEED, keyed_rng

__all__ = ["Int8Store", "PQStore", "open_codes"]

#: Domain tag for the PQ codebook k-means streams.
_PQ_DOMAIN = 0x5051  # "PQ"

_INT8_NPZ = "codes_int8.npz"
_PQ_NPZ = "codes_pq.npz"


def _codes_meta(meta: dict, variant: str, path: Path) -> dict:
    section = meta_field(meta, "codes", dict, where=str(path))
    if variant not in section:
        raise ValueError(f"{path}: meta.json has no codes.{variant} section")
    if not isinstance(section[variant], dict):
        raise ValueError(f"{path}: meta.json field codes.{variant} must be an object")
    return section[variant]


def _variant_field(section: dict, variant: str, name: str, kind, where: str):
    if name not in section:
        raise ValueError(f"{where}: meta.json missing field codes.{variant}.{name}")
    value = section[name]
    if kind is float and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ValueError(
            f"{where}: meta.json field codes.{variant}.{name} must be "
            f"{kind.__name__}, got {type(value).__name__}"
        )
    return value


def _check_store_shape(section: dict, variant: str, V: int, dim: int, where: str):
    for name, expected in (("vocab_size", V), ("dim", dim)):
        found = _variant_field(section, variant, name, int, where)
        if found != expected:
            raise ValueError(
                f"{where}: meta.json field codes.{variant}.{name} is {found}, "
                f"store has {expected}"
            )


class Int8Store:
    """Per-dimension symmetric int8 quantization of the normalized matrix."""

    variant = "int8"

    def __init__(self, codes: np.ndarray, scales: np.ndarray):
        codes = np.ascontiguousarray(codes, dtype=np.int8)
        scales = np.ascontiguousarray(scales, dtype=np.float32)
        if codes.ndim != 2:
            raise ValueError(f"codes must be 2-D, got shape {codes.shape}")
        if scales.shape != (codes.shape[1],):
            raise ValueError(
                f"scales shape {scales.shape} does not match dim {codes.shape[1]}"
            )
        if np.any(scales <= 0):
            raise ValueError("scales must be strictly positive")
        self.codes = codes
        self.scales = scales

    @property
    def vocab_size(self) -> int:
        return self.codes.shape[0]

    @property
    def dim(self) -> int:
        return self.codes.shape[1]

    # -- build / round-trip ------------------------------------------------
    @classmethod
    def build(cls, store: EmbeddingStore) -> "Int8Store":
        """Quantize ``store.normalized()``; scales chosen so nothing clips."""
        normalized = store.normalized()
        peak = np.abs(normalized).max(axis=0)
        scales = np.where(peak > 0, peak, 1.0).astype(np.float32) / 127.0
        codes = np.clip(np.rint(normalized / scales), -127, 127).astype(np.int8)
        return cls(codes, scales)

    def decode(self, rows: np.ndarray | None = None) -> np.ndarray:
        """Reconstructed float32 rows (all rows when ``rows`` is None)."""
        codes = self.codes if rows is None else self.codes[rows]
        return codes.astype(np.float32) * self.scales

    def max_abs_error(self) -> np.ndarray:
        """Element-wise reconstruction-error bound per dimension: scale/2."""
        return self.scales / 2.0

    def reconstruction_bound(self) -> float:
        """Per-row L2 reconstruction-error bound: ``||scale/2||_2``."""
        return float(np.linalg.norm(self.max_abs_error()))

    # -- IVF scoring protocol ----------------------------------------------
    def prepare_query(self, q: np.ndarray) -> np.ndarray:
        """Fold the scales into the (normalized) query once per query."""
        return (q * self.scales).astype(np.float32)

    def score(self, code_rows: np.ndarray, ctx: np.ndarray) -> np.ndarray:
        return code_rows.astype(np.float32) @ ctx

    def memory_bytes(self) -> int:
        return int(self.codes.nbytes + self.scales.nbytes)

    # -- persistence -------------------------------------------------------
    def save(self, directory: str | Path) -> Path:
        """Write codes next to the saved store under ``directory``."""
        directory = Path(directory)
        meta = read_meta(directory)
        with open(directory / _INT8_NPZ, "wb") as handle:
            np.savez_compressed(handle, codes=self.codes, scales=self.scales)
        meta.setdefault("codes", {})["int8"] = {
            "file": _INT8_NPZ,
            "vocab_size": self.vocab_size,
            "dim": self.dim,
            "source": "normalized",
        }
        write_meta(directory, meta)
        return directory

    @classmethod
    def open(cls, directory: str | Path) -> "Int8Store":
        directory = Path(directory)
        meta = read_meta(directory)
        where = str(directory)
        section = _codes_meta(meta, "int8", directory)
        V = _variant_field(section, "int8", "vocab_size", int, where)
        dim = _variant_field(section, "int8", "dim", int, where)
        filename = _variant_field(section, "int8", "file", str, where)
        with np.load(directory / filename) as data:
            codes, scales = data["codes"], data["scales"]
        if codes.shape != (V, dim):
            raise ValueError(
                f"{where}: codes_int8 shape {codes.shape} does not match "
                f"meta.json codes.int8 ({V}, {dim})"
            )
        return cls(codes, scales)

    def __repr__(self) -> str:
        return f"Int8Store(vocab={self.vocab_size}, dim={self.dim})"


class PQStore:
    """Product-quantized codes: ``m`` subspaces, ``2**bits`` codewords each."""

    variant = "pq"

    def __init__(self, codes: np.ndarray, codebooks: np.ndarray, bound: float):
        codes = np.ascontiguousarray(codes, dtype=np.uint8)
        codebooks = np.ascontiguousarray(codebooks, dtype=np.float32)
        if codes.ndim != 2:
            raise ValueError(f"codes must be 2-D, got shape {codes.shape}")
        if codebooks.ndim != 3 or codebooks.shape[0] != codes.shape[1]:
            raise ValueError(
                f"codebooks shape {codebooks.shape} does not match "
                f"{codes.shape[1]} subspaces"
            )
        if codes.size and codes.max() >= codebooks.shape[1]:
            raise ValueError(
                f"codes reference entry {int(codes.max())} of a "
                f"{codebooks.shape[1]}-entry codebook"
            )
        if bound < 0:
            raise ValueError(f"bound must be non-negative, got {bound}")
        self.codes = codes
        self.codebooks = codebooks
        self._bound = float(bound)

    @property
    def vocab_size(self) -> int:
        return self.codes.shape[0]

    @property
    def m(self) -> int:
        return self.codebooks.shape[0]

    @property
    def entries(self) -> int:
        return self.codebooks.shape[1]

    @property
    def dsub(self) -> int:
        return self.codebooks.shape[2]

    @property
    def dim(self) -> int:
        return self.m * self.dsub

    # -- build / round-trip ------------------------------------------------
    @classmethod
    def build(
        cls,
        store: EmbeddingStore,
        m: int = 8,
        bits: int = 8,
        seed: int = DEFAULT_SEED,
        iters: int = 8,
        train_sample: int | None = 65536,
    ) -> "PQStore":
        """Train one Euclidean-k-means codebook per subspace and encode.

        ``dim`` must divide evenly into ``m`` subspaces; ``bits`` (1-8, so
        codes fit uint8) sets the codebook size ``2**bits``, capped at the
        vocab size.  The per-row reconstruction-error bound is measured
        over the whole store after encoding and persisted with the codes.
        """
        dim = store.dim
        if m <= 0 or dim % m != 0:
            raise ValueError(f"m must divide dim ({dim}), got m={m}")
        if not 1 <= bits <= 8:
            raise ValueError(f"bits must be in [1, 8], got {bits}")
        normalized = store.normalized()
        V = len(store)
        entries = min(2**bits, V)
        dsub = dim // m
        codebooks = np.empty((m, entries, dsub), dtype=np.float32)
        codes = np.empty((V, m), dtype=np.uint8)
        for sub in range(m):
            block = np.ascontiguousarray(normalized[:, sub * dsub : (sub + 1) * dsub])
            rng = keyed_rng(seed, _PQ_DOMAIN, m, bits, sub)
            codebooks[sub] = kmeans(
                block, entries, rng, iters=iters, sample=train_sample, metric="l2"
            )
            codes[:, sub] = assign_cells(block, codebooks[sub], metric="l2")
        built = cls(codes, codebooks, bound=0.0)
        errors = np.linalg.norm(normalized - built.decode(), axis=1)
        built._bound = float(errors.max()) if errors.size else 0.0
        return built

    def decode(self, rows: np.ndarray | None = None) -> np.ndarray:
        """Reconstructed float32 rows: concatenated selected codewords."""
        codes = self.codes if rows is None else np.atleast_2d(self.codes[rows])
        parts = [self.codebooks[sub][codes[:, sub]] for sub in range(self.m)]
        return np.concatenate(parts, axis=1)

    def reconstruction_bound(self) -> float:
        """Max per-row L2 reconstruction error, measured at build time."""
        return self._bound

    # -- IVF scoring protocol ----------------------------------------------
    def prepare_query(self, q: np.ndarray) -> np.ndarray:
        """The ADC table: per-subspace codeword dot products, ``(m, entries)``."""
        sub_queries = q.reshape(self.m, self.dsub)
        return np.einsum(
            "mkd,md->mk", self.codebooks, sub_queries.astype(np.float32)
        ).astype(np.float32)

    def score(self, code_rows: np.ndarray, ctx: np.ndarray) -> np.ndarray:
        lookup = ctx[np.arange(self.m)[None, :], code_rows]
        return lookup.sum(axis=1, dtype=np.float32)

    def memory_bytes(self) -> int:
        return int(self.codes.nbytes + self.codebooks.nbytes)

    # -- persistence -------------------------------------------------------
    def save(self, directory: str | Path) -> Path:
        directory = Path(directory)
        meta = read_meta(directory)
        with open(directory / _PQ_NPZ, "wb") as handle:
            np.savez_compressed(handle, codes=self.codes, codebooks=self.codebooks)
        meta.setdefault("codes", {})["pq"] = {
            "file": _PQ_NPZ,
            "vocab_size": self.vocab_size,
            "dim": self.dim,
            "m": self.m,
            "entries": self.entries,
            "bound": self._bound,
            "source": "normalized",
        }
        write_meta(directory, meta)
        return directory

    @classmethod
    def open(cls, directory: str | Path) -> "PQStore":
        directory = Path(directory)
        meta = read_meta(directory)
        where = str(directory)
        section = _codes_meta(meta, "pq", directory)
        V = _variant_field(section, "pq", "vocab_size", int, where)
        dim = _variant_field(section, "pq", "dim", int, where)
        m = _variant_field(section, "pq", "m", int, where)
        entries = _variant_field(section, "pq", "entries", int, where)
        bound = _variant_field(section, "pq", "bound", float, where)
        filename = _variant_field(section, "pq", "file", str, where)
        with np.load(directory / filename) as data:
            codes, codebooks = data["codes"], data["codebooks"]
        if codes.shape != (V, m):
            raise ValueError(
                f"{where}: codes_pq shape {codes.shape} does not match "
                f"meta.json codes.pq ({V}, {m})"
            )
        if m <= 0 or dim % m != 0:
            raise ValueError(
                f"{where}: meta.json field codes.pq.m ({m}) does not divide "
                f"codes.pq.dim ({dim})"
            )
        if codebooks.shape != (m, entries, dim // m):
            raise ValueError(
                f"{where}: codebooks shape {codebooks.shape} does not match "
                f"meta.json codes.pq ({m}, {entries}, {dim // m})"
            )
        return cls(codes, codebooks, bound=bound)

    def __repr__(self) -> str:
        return (
            f"PQStore(vocab={self.vocab_size}, dim={self.dim}, m={self.m}, "
            f"entries={self.entries})"
        )


def open_codes(directory: str | Path, store: EmbeddingStore | None = None):
    """Load every code variant saved under ``directory``.

    Returns ``{variant: codes}``; when ``store`` is given, each variant's
    recorded shape is validated against it (errors name the field).
    """
    directory = Path(directory)
    meta = read_meta(directory)
    out: dict[str, object] = {}
    if "codes" not in meta:
        return out
    section = meta_field(meta, "codes", dict, where=str(directory))
    openers = {"int8": Int8Store.open, "pq": PQStore.open}
    for variant in sorted(section):
        if variant not in openers:
            raise ValueError(
                f"{directory}: meta.json codes section names unknown "
                f"variant {variant!r} (known: {sorted(openers)})"
            )
        if store is not None:
            _check_store_shape(
                section[variant], variant, len(store), store.dim, str(directory)
            )
        out[variant] = openers[variant](directory)
    return out
