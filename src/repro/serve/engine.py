"""Batched query execution: micro-batching, caching, parallel search.

The :class:`QueryEngine` sits between callers and an
:class:`~repro.serve.index.Index`:

- **Micro-batching** — :meth:`QueryEngine.submit` buffers queries and
  flushes automatically once ``max_batch`` are pending (or on an explicit
  :meth:`QueryEngine.flush`), so the index always sees the batched-matmul
  shape it is fastest at.
- **Result cache** — a bounded :class:`LRUCache` keyed on ``(word, k)``
  with hit/miss/eviction counters.  Lookups happen in arrival order at
  flush time, and a result computed earlier *in the same flush* counts as
  a hit — which makes cache accounting a pure function of the query
  stream and cache size, independent of how the stream is chopped into
  batches.
- **Parallel search** — the distinct missing queries of a flush are
  searched in fixed-size blocks through a
  :class:`~repro.galois.do_all.DoAllExecutor` (the PR-2 pool; ``workers=``
  / ``executor=`` knobs and the ``REPRO_WORKERS`` env default follow the
  trainer's conventions).  Blocks write disjoint slices of pre-allocated
  output arrays and the block size never depends on the executor, so
  results are bit-identical for every ``workers`` setting.  The engine
  serves *any* :class:`~repro.serve.index.Index` — exact, LSH, or IVF —
  through the same machinery; an index only has to honor the batched
  ``search`` contract.
- **Sanitized execution** — ``sanitize=`` (default: the ``REPRO_SANITIZE``
  environment variable, the trainer's convention) wraps the executor in
  the :mod:`repro.analysis` do_all race detector: every search block's
  read/write row sets are shadow-recorded and cross-checked at the flush
  barrier, and any overlap raises
  :class:`~repro.analysis.runtime.SanitizeError`.  Observation never
  perturbs results.

Batch latency is measured with a :class:`~repro.galois.timers.StatTimer`
whose clock is injectable; everything else the engine reports (answers,
batch composition, cache accounting) is deterministic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable

import numpy as np

from repro.analysis.runtime import (
    DoAllRaceSanitizer,
    SanitizedExecutor,
    SanitizeError,
    note_read,
    note_write,
    sanitize_from_env,
)
from repro.galois.do_all import (
    SerialExecutor,
    do_all,
    executor_from_env,
    resolve_executor,
)
from repro.galois.timers import StatTimer
from repro.serve.index import Index

__all__ = ["CacheStats", "LRUCache", "EngineStats", "QueryTicket", "QueryEngine"]

#: Placeholder cached under a key whose result is being computed by the
#: current flush; replaced (without a recency refresh) once known.
_PENDING = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """Bounded least-recently-used mapping with access accounting.

    ``get`` refreshes recency and counts a hit or miss; ``peek`` neither
    refreshes nor counts (bookkeeping lookups).  Inserting beyond
    ``capacity`` evicts the least recently used entry.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable):
        """The cached value, refreshing recency; ``None`` on miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return None

    def peek(self, key: Hashable):
        """The cached value without touching recency or counters."""
        return self._entries.get(key)

    def put(self, key: Hashable, value) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def replace(self, key: Hashable, value) -> None:
        """Swap the value of a present key without touching recency.

        A no-op when ``key`` was evicted in the meantime — used to
        backfill results computed for placeholder entries.
        """
        if key in self._entries:
            self._entries[key] = value


@dataclass
class EngineStats:
    """What one engine did: batches, their sizes, measured latencies.

    ``cache`` aliases the engine cache's own counters, so there is one
    authoritative account of hits/misses/evictions.
    """

    queries: int = 0
    batches: int = 0
    batch_sizes: list[int] = field(default_factory=list)
    batch_seconds: list[float] = field(default_factory=list)
    cache: CacheStats = field(default_factory=CacheStats)

    def batch_size_histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for size in self.batch_sizes:
            hist[size] = hist.get(size, 0) + 1
        return dict(sorted(hist.items()))


@dataclass
class QueryTicket:
    """One submitted query; ``result`` is set when its batch flushes.

    ``result`` is ``(ids, scores)`` — parallel ``(k,)`` arrays, row ids
    into the store (``-1`` padding where an approximate index came up
    short) and cosine scores.
    """

    word: str
    k: int
    result: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def done(self) -> bool:
        return self.result is not None


class QueryEngine:
    """Micro-batching, caching front-end over an index.

    ``max_batch`` bounds how many queries buffer before an automatic
    flush; ``search_block`` is the fixed slice of distinct missing
    queries handed to each ``do_all`` operator invocation (fixed so
    answers cannot depend on executor width).  ``executor``/``workers``
    follow :func:`repro.galois.do_all.resolve_executor`, defaulting to
    the process-shared ``REPRO_WORKERS`` pool and serial execution last.
    ``sanitize`` (default: the ``REPRO_SANITIZE`` environment variable,
    the trainer's convention) runs every flush under the
    :mod:`repro.analysis` do_all race detector; findings raise
    :class:`~repro.analysis.runtime.SanitizeError` at the flush barrier,
    and observation never changes answers.  ``clock`` is handed to the
    internal :class:`StatTimer` measuring per-flush latency.
    """

    def __init__(
        self,
        index: Index,
        max_batch: int = 64,
        cache_size: int = 1024,
        executor=None,
        workers: int | None = None,
        search_block: int = 32,
        clock: Callable[[], float] | None = None,
        sanitize: bool | None = None,
    ):
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if search_block <= 0:
            raise ValueError(f"search_block must be positive, got {search_block}")
        self.index = index
        self.max_batch = int(max_batch)
        self.search_block = int(search_block)
        self._executor = resolve_executor(executor, workers) or executor_from_env()
        self.sanitize = sanitize_from_env() if sanitize is None else bool(sanitize)
        self._race_sanitizer: DoAllRaceSanitizer | None = None
        if self.sanitize:
            self._race_sanitizer = DoAllRaceSanitizer()
            self._executor = SanitizedExecutor(
                self._executor or SerialExecutor(),
                self._race_sanitizer,
                name="serve.flush",
            )
        self._clock = clock
        self.cache = LRUCache(cache_size)
        self.stats = EngineStats(cache=self.cache.stats)
        self._timer = self._new_timer()
        self._pending: list[QueryTicket] = []

    def _new_timer(self) -> StatTimer:
        kwargs = {} if self._clock is None else {"clock": self._clock}
        return StatTimer("serve.flush", **kwargs)

    @property
    def pending(self) -> int:
        return len(self._pending)

    # -- submission --------------------------------------------------------
    def submit(self, word: str, k: int = 10) -> QueryTicket:
        """Enqueue one query; flushes automatically at ``max_batch``."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.index.store.id_of(word)  # unknown words fail at submit time
        ticket = QueryTicket(word, int(k))
        self._pending.append(ticket)
        if len(self._pending) >= self.max_batch:
            self.flush()
        return ticket

    def query(
        self, words: list[str], k: int = 10
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Submit ``words`` and flush; results in submission order."""
        tickets = [self.submit(word, k) for word in words]
        self.flush()
        return [t.result for t in tickets]

    # -- flushing ----------------------------------------------------------
    def flush(self) -> int:
        """Process every pending query; returns the batch size."""
        batch, self._pending = self._pending, []
        if not batch:
            return 0
        self.stats.queries += len(batch)
        self.stats.batches += 1
        self.stats.batch_sizes.append(len(batch))
        self._timer.start()
        try:
            # Replay the cache protocol in arrival order, inserting a
            # placeholder for every miss.  This reproduces the hit/miss/
            # eviction sequence of one-query-at-a-time serving exactly —
            # a later in-flush duplicate hits the placeholder, and a
            # miss's insertion can evict an entry before a later query
            # reaches it — so cache accounting never depends on how the
            # stream is chopped into batches.
            missing: list[tuple[str, int]] = []
            missing_seen: set[tuple[str, int]] = set()
            waiting: list[QueryTicket] = []
            for ticket in batch:
                key = (ticket.word, ticket.k)
                cached = self.cache.get(key)  # counts hit or miss
                if cached is None:
                    self.cache.put(key, _PENDING)
                    # A key re-misses within one flush when its _PENDING
                    # placeholder was evicted by a later miss (cache
                    # smaller than the flush).  The replay above still
                    # counts the miss and re-inserts the placeholder —
                    # accounting is untouched — but the key must be
                    # searched once, not once per re-miss.
                    if key not in missing_seen:
                        missing_seen.add(key)
                        missing.append(key)
                    waiting.append(ticket)
                elif cached is _PENDING:
                    waiting.append(ticket)
                else:
                    ticket.result = cached
            if missing:
                fresh = self._search_missing(missing)
                for key in missing:
                    self.cache.replace(key, fresh[key])
                # Tickets take results directly: with a cache smaller
                # than the flush, an entry may already be evicted again
                # by the time its ticket is resolved.
                for ticket in waiting:
                    ticket.result = fresh[(ticket.word, ticket.k)]
        finally:
            self.stats.batch_seconds.append(self._timer.stop())
        return len(batch)

    def _search_missing(
        self, missing: list[tuple[str, int]]
    ) -> dict[tuple[str, int], tuple[np.ndarray, np.ndarray]]:
        store = self.index.store
        vectors = np.stack([store.matrix[store.id_of(w)] for w, _ in missing])
        ks = [k for _, k in missing]
        k_max = max(ks)
        m = len(missing)
        width_cap = min(k_max, len(store))
        out_ids = np.full((m, width_cap), -1, dtype=np.int64)
        out_scores = np.full((m, width_cap), -np.inf, dtype=np.float32)

        def operator(start: int) -> None:
            sl = slice(start, min(start + self.search_block, m))
            rows = np.arange(sl.start, sl.stop)
            note_read(vectors, rows, "serve.queries")
            ids, scores = self.index.search(vectors[sl], k_max)
            note_write(out_ids, rows, "serve.out_ids")
            note_write(out_scores, rows, "serve.out_scores")
            out_ids[sl] = ids
            out_scores[sl] = scores

        do_all(range(0, m, self.search_block), operator, executor=self._executor)
        if self._race_sanitizer is not None and self._race_sanitizer.findings:
            raise SanitizeError(self._race_sanitizer.findings, context="serve.flush")
        fresh: dict[tuple[str, int], tuple[np.ndarray, np.ndarray]] = {}
        for row, (key, want) in enumerate(zip(missing, ks)):
            width = min(want, width_cap)
            ids = out_ids[row, :width].copy()
            scores = out_scores[row, :width].copy()
            ids.flags.writeable = False
            scores.flags.writeable = False
            fresh[key] = (ids, scores)
        return fresh

    # -- reporting ---------------------------------------------------------
    @property
    def latency_timer(self) -> StatTimer:
        return self._timer

    @property
    def sanitize_findings(self) -> list:
        """Race findings collected so far (empty when sanitizers are off)."""
        if self._race_sanitizer is None:
            return []
        return list(self._race_sanitizer.findings)

    def reset_stats(self) -> None:
        """Zero counters and measurements (cache contents survive)."""
        self.cache.stats = CacheStats()
        self.stats = EngineStats(cache=self.cache.stats)
        self._timer = self._new_timer()
