"""IVF: coarse-quantized top-k with exact (or code-based) rescoring.

An :class:`IVFIndex` partitions the store's normalized rows into ``nlist``
*cells* with seed-deterministic spherical k-means, then answers a query by
scoring the ``nlist`` cell centroids, visiting only the ``nprobe`` best
cells, and rescoring their members.  The cell math:

- **build** — centroids are unit vectors; row ``r`` lives in
  ``argmax_c  normalized[r] . centroid[c]`` (lowest cell id on ties), and
  rows are stored grouped by cell so each cell is one contiguous slice of a
  reordered matrix (the IVF analogue of the exact index's row blocks).
- **search** — cells are ranked by ``centroid . q`` with the same
  descending-score / ascending-id tie-break every index uses, the top
  ``nprobe`` are probed, and every member row is rescored: by true cosine
  against the float32 matrix (the default — only the *candidate set* is
  approximate), or against int8 / product-quantized codes
  (:mod:`repro.serve.quant`) when a quantized store variant is attached.

Each query is processed independently (centroid scoring and rescoring are
per-query matrix-vector products over contiguous cell slices), so batched
search is *bitwise* identical to unbatched search by construction — the
same parity contract :class:`~repro.serve.index.ExactIndex` maintains with
fixed-shape tiling.  ``nprobe`` is a plain attribute: ranking cells once
and probing a prefix means candidate sets grow monotonically with
``nprobe``, so recall@k is monotone non-decreasing in it, and
``nprobe >= nlist`` (or ``k >= len(store)``) degrades to an exact scan.

Everything stochastic (k-means init, training subsample) flows through
:func:`repro.util.rng.keyed_rng`, so an index is a pure function of
``(store, seed, shape knobs)`` — the same contract as
:class:`~repro.serve.index.LSHIndex`.
"""

from __future__ import annotations

import numpy as np

from repro.serve.index import _normalize_queries, top_k_desc
from repro.serve.store import EmbeddingStore
from repro.util.rng import DEFAULT_SEED, keyed_rng

__all__ = ["IVFIndex", "kmeans", "assign_cells", "default_nlist"]

#: Domain tag mixed into IVF seed derivation so the k-means streams never
#: collide with other consumers of the same root seed.
_IVF_DOMAIN = 0x495646  # "IVF"

#: Row-block size for the blocked assignment/update passes.
_KMEANS_BLOCK = 8192


def default_nlist(vocab_size: int) -> int:
    """The default cell count: ``~sqrt(V)``, clamped to ``[1, 4096]``.

    Square-root sizing balances the two costs a probe pays — ranking
    ``nlist`` centroids and rescoring ``nprobe * V / nlist`` members.
    """
    if vocab_size <= 0:
        raise ValueError(f"vocab_size must be positive, got {vocab_size}")
    return int(np.clip(round(np.sqrt(vocab_size)), 1, 4096))


def _scores_for(points: np.ndarray, centroids: np.ndarray, metric: str) -> np.ndarray:
    """Per-(point, centroid) assignment score (argmax picks the cell)."""
    scores = points @ centroids.T
    if metric == "l2":
        # argmin ||x - c||^2 == argmax (x.c - ||c||^2 / 2); the ||x||^2
        # term is constant per row and never changes the argmax.
        scores = scores - 0.5 * np.einsum("ij,ij->i", centroids, centroids)
    return scores


def assign_cells(
    points: np.ndarray,
    centroids: np.ndarray,
    metric: str = "cosine",
    block_rows: int = _KMEANS_BLOCK,
) -> np.ndarray:
    """Deterministic cell assignment: best centroid, lowest id on ties.

    ``points`` is walked in ``block_rows`` row blocks so the score buffer
    stays bounded at ``block_rows x nlist``.
    """
    if metric not in ("cosine", "l2"):
        raise ValueError(f"unknown kmeans metric {metric!r} (use 'cosine' or 'l2')")
    n = points.shape[0]
    out = np.empty(n, dtype=np.int64)
    for start in range(0, n, block_rows):
        block = points[start : start + block_rows]
        # np.argmax returns the *first* maximum, i.e. the lowest cell id.
        out[start : start + block_rows] = np.argmax(
            _scores_for(block, centroids, metric), axis=1
        )
    return out


def kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    iters: int = 8,
    sample: int | None = 65536,
    metric: str = "cosine",
) -> np.ndarray:
    """Seed-deterministic k-means; returns ``(k, dim)`` float32 centroids.

    - ``metric="cosine"`` — spherical k-means: centroids are re-normalized
      every iteration and assignment maximizes the dot product (points are
      expected row-normalized).  Used for IVF coarse cells.
    - ``metric="l2"`` — Euclidean k-means (assignment minimizes squared
      distance).  Used for the product-quantizer codebooks.

    Determinism: initialization draws ``k`` distinct rows from ``rng``, the
    training set is an ``rng``-drawn subsample of at most ``sample`` rows
    (processed in ascending row order), assignment breaks ties toward the
    lowest centroid id, and the member sum of each update runs in row
    order.  Empty cells keep their previous centroid.  A fixed ``iters``
    refinement passes run — no data-dependent early exit — so the result is
    a pure function of ``(points, k, rng state, knobs)``.
    """
    if metric not in ("cosine", "l2"):
        raise ValueError(f"unknown kmeans metric {metric!r} (use 'cosine' or 'l2')")
    if iters < 0:
        raise ValueError(f"iters must be non-negative, got {iters}")
    points = np.ascontiguousarray(points, dtype=np.float32)
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if sample is not None and sample < n:
        train = points[np.sort(rng.choice(n, size=sample, replace=False))]
    else:
        train = points
    init = np.sort(rng.choice(train.shape[0], size=k, replace=False))
    centroids = train[init].copy()
    if metric == "cosine":
        centroids = _unit_rows(centroids)
    for _ in range(iters):
        assignment = assign_cells(train, centroids, metric)
        order = np.argsort(assignment, kind="stable")
        grouped = train[order]
        sizes = np.bincount(assignment, minlength=k)
        starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        occupied = sizes > 0
        # reduceat sums members in (stable-sorted) row order: deterministic.
        sums = np.add.reduceat(grouped, starts, axis=0, dtype=np.float64)
        means = (sums[occupied] / sizes[occupied, None]).astype(np.float32)
        updated = centroids.copy()
        updated[occupied] = means
        if metric == "cosine":
            updated[occupied] = _unit_rows(means, fallback=centroids[occupied])
        centroids = updated
    return np.ascontiguousarray(centroids, dtype=np.float32)


def _unit_rows(rows: np.ndarray, fallback: np.ndarray | None = None) -> np.ndarray:
    """Row-normalize; zero rows fall back to ``fallback`` (or stay zero)."""
    norms = np.linalg.norm(rows, axis=1, keepdims=True)
    out = (rows / np.where(norms > 0, norms, 1.0)).astype(np.float32)
    if fallback is not None:
        zero = norms[:, 0] == 0
        if np.any(zero):
            out[zero] = fallback[zero]
    return out


class IVFIndex:
    """Inverted-file cosine top-k: probe ``nprobe`` of ``nlist`` cells.

    ``nlist`` defaults to :func:`default_nlist`; ``nprobe`` is a plain
    attribute and may be changed between searches (the cell layout does not
    depend on it), which is how the frontier sweep walks the recall/QPS
    trade-off on one build.  ``codes`` optionally attaches a quantized
    store variant (:class:`~repro.serve.quant.Int8Store` or
    :class:`~repro.serve.quant.PQStore` built over the *same* store):
    rescoring then reads the codes instead of the float32 matrix — smaller
    and usually faster, at the cost of approximate scores bounded by the
    variant's documented reconstruction error.

    Member rows are stored grouped by cell (one contiguous slice per cell)
    so rescoring is a handful of contiguous matrix-vector products — the
    same blocked-matmul discipline as
    :class:`~repro.serve.index.ExactIndex`, restricted to probed cells.
    """

    def __init__(
        self,
        store: EmbeddingStore,
        nlist: int | None = None,
        nprobe: int = 8,
        seed: int = DEFAULT_SEED,
        codes=None,
        kmeans_iters: int = 8,
        train_sample: int | None = 65536,
        centroids: np.ndarray | None = None,
    ):
        V = len(store)
        if V == 0:
            raise ValueError("cannot build an IVFIndex over an empty store")
        if nlist is None:
            nlist = default_nlist(V)
        if not 1 <= nlist <= V:
            raise ValueError(f"nlist must be in [1, {V}], got {nlist}")
        if nprobe <= 0:
            raise ValueError(f"nprobe must be positive, got {nprobe}")
        self._store = store
        self.nlist = int(nlist)
        self.nprobe = int(nprobe)
        self.seed = int(seed)
        normalized = store.normalized()
        if centroids is None:
            rng = keyed_rng(self.seed, _IVF_DOMAIN, self.nlist)
            centroids = kmeans(
                normalized, self.nlist, rng, iters=kmeans_iters, sample=train_sample
            )
        else:
            # Reusing another same-seed build's centroids skips the k-means
            # pass (e.g. attaching code variants to one cell layout); the
            # caller owns the determinism of what it passes in.
            centroids = np.ascontiguousarray(centroids, dtype=np.float32)
            if centroids.shape != (self.nlist, store.dim):
                raise ValueError(
                    f"centroids shape {centroids.shape} does not match "
                    f"(nlist={self.nlist}, dim={store.dim})"
                )
        self._centroids = centroids
        assignment = assign_cells(normalized, self._centroids)
        order = np.argsort(assignment, kind="stable")
        self._row_of_position = order.astype(np.int64)
        sizes = np.bincount(assignment, minlength=self.nlist)
        self._offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        self._codes = codes
        if codes is None:
            self._cell_matrix = np.ascontiguousarray(normalized[order])
            self._cell_codes = None
        else:
            if codes.vocab_size != V or codes.dim != store.dim:
                raise ValueError(
                    f"codes cover ({codes.vocab_size}, {codes.dim}), "
                    f"store is ({V}, {store.dim})"
                )
            self._cell_matrix = None
            self._cell_codes = np.ascontiguousarray(codes.codes[order])

    # -- introspection -----------------------------------------------------
    @property
    def store(self) -> EmbeddingStore:
        return self._store

    @property
    def centroids(self) -> np.ndarray:
        return self._centroids

    def cell_sizes(self) -> np.ndarray:
        """Member count per cell (sums to the vocab size)."""
        return np.diff(self._offsets)

    def cell_of(self, row: int) -> int:
        """The cell a store row was assigned to."""
        position = int(np.flatnonzero(self._row_of_position == row)[0])
        return int(np.searchsorted(self._offsets, position, side="right") - 1)

    def probe_cells(self, query: np.ndarray, nprobe: int | None = None) -> np.ndarray:
        """The ranked cell ids one (raw) query would probe."""
        q = _normalize_queries(query, self._store.dim)[0]
        nprobe = self.nprobe if nprobe is None else int(nprobe)
        nprobe = min(max(1, nprobe), self.nlist)
        sims = self._centroids @ q
        cells, _ = top_k_desc(
            sims[None, :], np.arange(self.nlist, dtype=np.int64)[None, :], nprobe
        )
        return cells[0]

    # -- search ------------------------------------------------------------
    def _candidate_positions(self, cells: np.ndarray) -> np.ndarray:
        spans = [
            np.arange(self._offsets[c], self._offsets[c + 1], dtype=np.int64)
            for c in cells
        ]
        if not spans:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(spans)

    def _rescore(self, positions: np.ndarray, q: np.ndarray, ctx) -> np.ndarray:
        if self._codes is None:
            return (self._cell_matrix[positions] @ q).astype(np.float32)
        return self._codes.score(self._cell_codes[positions], ctx)

    def search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        V = len(self._store)
        k = min(k, V)
        q = _normalize_queries(queries, self._store.dim)
        n = q.shape[0]
        out_ids = np.full((n, k), -1, dtype=np.int64)
        out_scores = np.full((n, k), -np.inf, dtype=np.float32)
        # k covering the whole store must return the exact ranking, so the
        # probe set widens to every cell (an exact scan through the cell
        # layout); likewise nprobe >= nlist is simply exhaustive search.
        nprobe = min(max(1, int(self.nprobe)), self.nlist)
        exhaustive = nprobe >= self.nlist or k >= V
        all_positions = np.arange(V, dtype=np.int64)
        for i in range(n):
            if exhaustive:
                positions = all_positions
            else:
                positions = self._candidate_positions(self.probe_cells(q[i], nprobe))
            if positions.size == 0:
                continue
            ctx = None if self._codes is None else self._codes.prepare_query(q[i])
            scores = self._rescore(positions, q[i], ctx)
            ids = self._row_of_position[positions]
            ids, scores = top_k_desc(scores[None, :], ids[None, :], k)
            width = ids.shape[1]
            out_ids[i, :width] = ids[0]
            out_scores[i, :width] = scores[0]
        return out_ids, out_scores

    def __repr__(self) -> str:
        rescoring = "float32" if self._codes is None else type(self._codes).__name__
        return (
            f"IVFIndex(vocab={len(self._store)}, nlist={self.nlist}, "
            f"nprobe={self.nprobe}, rescoring={rescoring})"
        )
