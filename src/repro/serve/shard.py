"""Sharded, replicated, hot-swappable serving over an embedding store.

This module closes the train→serve loop: the embedding matrix a
distributed trainer produced is split into contiguous row shards (the
same block distribution :mod:`repro.gluon` gives masters), each shard
optionally held by several replicas, and batched top-k queries are
scatter-gathered across the shards with a deterministic merge.

**Bit-identical scatter-gather.**  float32 GEMM results depend on operand
shapes (BLAS kernels tile differently per shape), so a naive per-shard
matmul would *not* reproduce the single-host answers bit for bit.  The
:class:`ShardPlan` therefore aligns every shard boundary to a multiple of
the :class:`~repro.serve.index.ExactIndex` ``block_rows`` grid, and each
shard runs a local ``ExactIndex`` with the same ``block_rows`` /
``query_block``.  Every GEMM a shard issues is then *the same GEMM* —
same shape, same bytes — the single-host reference
(:meth:`ShardPlan.reference_index`) issues for that row block, and the
per-block candidate sets are identical.  Top-k selection under the total
order (descending score, ascending id) is associative —
``top_k(top_k(A) ∪ B) == top_k(A ∪ B)`` — so merging per-shard top-k
lists with :func:`~repro.serve.index.top_k_desc` yields answers
bit-identical to the reference for every shard count, replica count and
worker setting.

**Replicas, failover, recovery.**  Each shard's ``replicas`` copies are
routed load-aware (fewest queries served, lowest replica id on ties —
deterministic).  A :class:`~repro.cluster.faults.FaultSchedule` can be
attached: each ``search`` call is one serving round, scheduled crashes
kill the mapped replica (``host = shard * replicas + replica``), routing
fails over to a surviving replica (identical answers — replicas hold the
same rows), and the replica rejoins after ``recovery_rounds`` rounds with
detect/restore time and checkpoint bytes accounted in a
:class:`~repro.cluster.faults.FaultReport`.  A shard with no live replica
raises :class:`~repro.cluster.faults.UnrecoverableFaultError`.

**Generations.**  :meth:`ShardedIndex.promote` atomically swaps in a new
store (e.g. a training checkpoint resumed past more rounds) *without
draining*: queries already submitted but not yet flushed are answered by
the new generation; none are dropped.  Each generation keeps a running
sha256 fingerprint of every ``(word, ids, scores)`` answer it served —
the per-generation analogue of ``ServeReport.answers_sha256`` — so a
hot swap is observable as a deterministic fingerprint change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import hashlib

import numpy as np

from repro.analysis.runtime import (
    DoAllRaceSanitizer,
    SanitizedExecutor,
    SanitizeError,
    note_read,
    note_write,
    sanitize_from_env,
)
from repro.cluster.faults import (
    FaultReport,
    FaultSchedule,
    UnrecoverableFaultError,
)
from repro.galois.do_all import SerialExecutor, do_all, resolve_executor
from repro.gluon.partition_stats import PartitionStats, analyze_partitions
from repro.gluon.partitioner import Partition, contiguous_partitions
from repro.gluon.proxies import block_boundaries
from repro.serve.engine import LRUCache, QueryEngine
from repro.serve.index import ExactIndex, top_k_desc
from repro.serve.store import EmbeddingStore

__all__ = ["ShardPlan", "ShardGeneration", "ShardedIndex", "ShardedEngine"]

#: Rows of the matrix to chunk per ExactIndex block by default; shard
#: boundaries must land on multiples of this for GEMM-shape parity.
_DEFAULT_BLOCK_ROWS = 8192


@dataclass(frozen=True)
class ShardPlan:
    """How ``num_rows`` embedding rows split into grid-aligned shards.

    ``block_rows`` is the GEMM block size shared by every shard's local
    index *and* the single-host reference; every interior shard boundary
    is a multiple of it, which is what makes the scatter-gather merge
    bit-identical (see the module docstring).  The default block size is
    ``min(8192, max(1, num_rows // num_shards))`` so small stores still
    split into ``num_shards`` non-empty shards.
    """

    num_rows: int
    num_shards: int
    replicas: int = 1
    block_rows: int | None = None
    bounds: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.num_rows <= 0:
            raise ValueError(f"num_rows must be positive, got {self.num_rows}")
        if self.num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {self.num_shards}")
        if self.num_shards > self.num_rows:
            raise ValueError(
                f"num_shards={self.num_shards} exceeds {self.num_rows} rows"
            )
        if self.replicas <= 0:
            raise ValueError(f"replicas must be positive, got {self.replicas}")
        if self.block_rows is None:
            object.__setattr__(
                self,
                "block_rows",
                min(_DEFAULT_BLOCK_ROWS, max(1, self.num_rows // self.num_shards)),
            )
        if self.block_rows <= 0:
            raise ValueError(f"block_rows must be positive, got {self.block_rows}")
        num_blocks = -(-self.num_rows // self.block_rows)
        if self.num_shards > num_blocks:
            raise ValueError(
                f"num_shards={self.num_shards} exceeds the {num_blocks} row "
                f"blocks of block_rows={self.block_rows}; shrink block_rows"
            )
        # Distribute whole row-blocks over shards, then convert back to
        # row offsets: every interior boundary is a block_rows multiple.
        block_bounds = block_boundaries(num_blocks, self.num_shards)
        bounds = np.minimum(block_bounds * self.block_rows, self.num_rows)
        object.__setattr__(self, "bounds", bounds.astype(np.int64))

    @property
    def num_hosts(self) -> int:
        return self.num_shards * self.replicas

    def shard_sizes(self) -> np.ndarray:
        return np.diff(self.bounds)

    def shard_slice(self, shard: int) -> slice:
        return slice(int(self.bounds[shard]), int(self.bounds[shard + 1]))

    def partitions(self, replicated: bool = True) -> list[Partition]:
        """The plan as gluon partitions (replica hosts hold mirrors)."""
        return contiguous_partitions(
            self.bounds, self.replicas if replicated else 1
        )

    def stats(self) -> PartitionStats:
        """Partition quality of the replicated layout (rf == replicas)."""
        return analyze_partitions(self.partitions(replicated=True))

    def sub_stores(self, store: EmbeddingStore) -> list[EmbeddingStore]:
        """Per-shard stores sharing memory with ``store`` (row slices)."""
        if len(store) != self.num_rows:
            raise ValueError(
                f"store has {len(store)} rows but the plan covers {self.num_rows}"
            )
        words = store.words
        subs = []
        for shard in range(self.num_shards):
            sl = self.shard_slice(shard)
            subs.append(
                EmbeddingStore(
                    store.matrix[sl], words[sl.start : sl.stop],
                    norms=store.norms[sl],
                )
            )
        return subs

    def reference_index(self, store: EmbeddingStore) -> ExactIndex:
        """The single-host index sharded answers are bit-identical to.

        Parity requires the reference to walk the *same* ``block_rows``
        grid the shards do — ``ExactIndex(store)`` at its default block
        size only coincides when ``plan.block_rows`` is also 8192.
        """
        return ExactIndex(store, block_rows=self.block_rows)

    def as_dict(self) -> dict:
        stats = self.stats()
        sizes = self.shard_sizes()
        return {
            "num_rows": self.num_rows,
            "num_shards": self.num_shards,
            "replicas": self.replicas,
            "block_rows": self.block_rows,
            "bounds": [int(b) for b in self.bounds],
            "replication_factor": stats.replication_factor,
            "master_balance": float(sizes.max() / sizes.mean()),
        }


@dataclass
class ShardGeneration:
    """One hot-swappable store generation and its running answer digest."""

    number: int
    store: EmbeddingStore
    sub_stores: list[EmbeddingStore]
    indexes: list[ExactIndex]
    digest: "hashlib._Hash" = field(default_factory=hashlib.sha256)
    answered: int = 0

    @property
    def fingerprint(self) -> str:
        """sha256 over every (word, ids, scores) this generation served."""
        return self.digest.hexdigest()

    def record(self, word: str, ids: np.ndarray, scores: np.ndarray) -> None:
        fingerprint_update(self.digest, word, ids, scores)
        self.answered += 1

    def summary(self) -> dict:
        return {
            "number": self.number,
            "answered": self.answered,
            "fingerprint": self.fingerprint,
        }


def fingerprint_update(
    digest, word: str, ids: np.ndarray, scores: np.ndarray
) -> None:
    """Fold one answered query into a sha256 running digest.

    The byte layout matches ``ServeReport.answers_sha256`` — word bytes,
    a NUL, int64 ids, float32 scores — so a single-generation load run's
    generation fingerprint equals the report fingerprint.
    """
    digest.update(word.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(np.ascontiguousarray(ids, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(scores, dtype=np.float32).tobytes())


class ShardedIndex:
    """Scatter-gather :class:`~repro.serve.index.Index` over shard replicas.

    Satisfies the ``Index`` protocol, so a plain ``QueryEngine`` can serve
    it; :class:`ShardedEngine` adds generation fingerprints and cache
    hygiene across promotions.  ``executor``/``workers`` control the
    *shard* scatter loop and default to serial — when the index runs
    inside a ``QueryEngine`` flush the engine's query-block ``do_all``
    already carries the parallelism, and nesting two loops on the shared
    ``REPRO_WORKERS`` pool could deadlock.  ``sanitize`` wraps an
    explicitly configured shard executor in the do_all race detector;
    with the default serial scatter the per-shard ``note_read`` /
    ``note_write`` calls instead attach to whatever sanitized loop is
    already active (the engine's), which is how ``REPRO_SANITIZE``
    watches the scatter-gather path end to end.
    """

    def __init__(
        self,
        store: EmbeddingStore,
        num_shards: int = 2,
        replicas: int = 1,
        plan: ShardPlan | None = None,
        block_rows: int | None = None,
        query_block: int = 32,
        executor=None,
        workers: int | None = None,
        sanitize: bool | None = None,
        faults: FaultSchedule | None = None,
        recovery_rounds: int = 2,
    ):
        if plan is None:
            plan = ShardPlan(len(store), num_shards, replicas, block_rows)
        elif plan.num_rows != len(store):
            raise ValueError(
                f"plan covers {plan.num_rows} rows but store has {len(store)}"
            )
        if recovery_rounds <= 0:
            raise ValueError(
                f"recovery_rounds must be positive, got {recovery_rounds}"
            )
        self.plan = plan
        self.query_block = int(query_block)
        self._executor = resolve_executor(executor, workers) or SerialExecutor()
        self.sanitize = sanitize_from_env() if sanitize is None else bool(sanitize)
        self._race_sanitizer: DoAllRaceSanitizer | None = None
        if self.sanitize and resolve_executor(executor, workers) is not None:
            # Own sanitizer only around an explicitly configured shard
            # executor: wrapping the default serial loop would shadow an
            # enclosing engine's sanitized chunk record.
            self._race_sanitizer = DoAllRaceSanitizer()
            self._executor = SanitizedExecutor(
                self._executor, self._race_sanitizer, name="serve.shard"
            )
        self.faults = faults
        self.recovery_rounds = int(recovery_rounds)
        self.fault_report = FaultReport()
        self.failovers = 0
        self.recoveries = 0
        self._round = 0
        # dead_until[s, r]: first round replica r of shard s serves again
        # (0 = alive and never crashed in the current outage window).
        self._dead_until = np.zeros((plan.num_shards, plan.replicas), np.int64)
        self._replica_load = np.zeros((plan.num_shards, plan.replicas), np.int64)
        self._generation = self._build_generation(0, store)
        self.retired: list[dict] = []

    def _build_generation(self, number: int, store: EmbeddingStore) -> ShardGeneration:
        subs = self.plan.sub_stores(store)
        indexes = [
            ExactIndex(sub, block_rows=self.plan.block_rows,
                       query_block=self.query_block)
            for sub in subs
        ]
        return ShardGeneration(number, store, subs, indexes)

    # -- Index protocol ----------------------------------------------------
    @property
    def store(self) -> EmbeddingStore:
        return self._generation.store

    @property
    def generation(self) -> ShardGeneration:
        return self._generation

    @property
    def rounds_served(self) -> int:
        return self._round

    def replica_load(self) -> np.ndarray:
        return self._replica_load.copy()

    def promote(self, store: EmbeddingStore) -> ShardGeneration:
        """Atomically swap in ``store`` as the next generation.

        The new store must match the plan's row count (and the words must
        stay aligned — same vocabulary, new vectors).  In-flight queries
        submitted to an engine but not yet flushed are answered by the
        new generation; nothing is drained or dropped.
        """
        if len(store) != self.plan.num_rows or store.dim != self.store.dim:
            raise ValueError(
                f"promoted store shape ({len(store)}, {store.dim}) does not "
                f"match serving shape ({self.plan.num_rows}, {self.store.dim})"
            )
        old = self._generation
        new = self._build_generation(old.number + 1, store)
        self.retired.append(old.summary())
        self._generation = new  # single reference swap — no partial state
        return new

    # -- fault handling ----------------------------------------------------
    def _apply_faults(self, round_index: int) -> None:
        """Kill replicas the schedule crashes at this serving round."""
        if self.faults is None:
            return
        rounds = self.faults.rounds_per_epoch
        key = divmod(round_index, rounds) if rounds > 0 else (0, round_index)
        for event in self.faults.crashes_at(*key):
            shard, replica = divmod(event.host, self.plan.replicas)
            if shard >= self.plan.num_shards:
                continue
            if self._dead_until[shard, replica] > round_index:
                continue  # already down
            self._dead_until[shard, replica] = round_index + self.recovery_rounds
            report = self.fault_report
            report.crashes += 1
            report.detect_s += self.faults.config.detect_timeout_s
            lost = self._generation.sub_stores[shard].memory_bytes()
            report.checkpoint_restore_bytes += lost
            report.restore_s += lost / self.faults.config.restore_bandwidth_Bps

    def _route(self, round_index: int, num_queries: int) -> np.ndarray:
        """Pick one replica per shard for this round, deterministically.

        Least-loaded wins, ascending replica id breaks ties; a shard with
        dead replicas counts a failover, a replica whose outage window
        just ended counts a recovery.  Runs serially *before* the shard
        scatter — routing state (load counters, outage windows) is never
        touched from inside the parallel loop.
        """
        chosen = np.empty(self.plan.num_shards, dtype=np.int64)
        for shard in range(self.plan.num_shards):
            best = -1
            dead_seen = False
            for replica in range(self.plan.replicas):
                until = self._dead_until[shard, replica]
                if until > round_index:
                    dead_seen = True
                    continue
                if until != 0:  # outage window elapsed — back in rotation
                    self._dead_until[shard, replica] = 0
                    self.recoveries += 1
                if best < 0 or (
                    self._replica_load[shard, replica]
                    < self._replica_load[shard, best]
                ):
                    best = replica
            if best < 0:
                raise UnrecoverableFaultError(
                    f"shard {shard}: all {self.plan.replicas} replicas dead "
                    f"at serving round {round_index}"
                )
            if dead_seen:
                self.failovers += 1
            chosen[shard] = best
            self._replica_load[shard, best] += num_queries
        return chosen

    # -- search ------------------------------------------------------------
    def search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        plan = self.plan
        generation = self._generation  # pin: promote() must not split a call
        round_index = self._round
        self._round += 1
        self._apply_faults(round_index)

        # Shape-check only — each shard's local ExactIndex normalizes the
        # (raw) queries itself, exactly as the single-host reference
        # does.  Normalizing here too would normalize twice, perturbing
        # low-order bits relative to the reference.
        dim = generation.store.dim
        q = np.ascontiguousarray(np.atleast_2d(queries), dtype=np.float32)
        if q.ndim != 2 or q.shape[1] != dim:
            raise ValueError(f"queries must be (n, {dim}), got shape {q.shape}")
        n = q.shape[0]
        k = min(k, plan.num_rows)
        self._route(round_index, n)  # replica pick + load/failover accounting
        shard_ids: list[np.ndarray | None] = [None] * plan.num_shards
        shard_scores: list[np.ndarray | None] = [None] * plan.num_shards

        # note_read/note_write only under the scatter's *own* sanitized
        # executor.  With the default serial scatter the notes would attach
        # to an enclosing sanitized loop (e.g. the engine's flush), where
        # the call-local output arrays are freed after the merge — the
        # sanitizer keys arrays by id(), so a recycled address would show
        # up as a bogus cross-chunk write-write overlap.
        sanitized = self._race_sanitizer is not None

        def scatter(shard: int) -> None:
            if sanitized:
                note_read(q, np.arange(n), "serve.shard.queries")
            ids, scores = generation.indexes[shard].search(q, k)
            ids = ids + plan.bounds[shard]  # local rows → global rows
            if sanitized:
                note_write(ids, np.arange(ids.shape[0]), f"serve.shard{shard}.ids")
                note_write(scores, np.arange(scores.shape[0]), f"serve.shard{shard}.scores")
            shard_ids[shard] = ids
            shard_scores[shard] = scores

        do_all(range(plan.num_shards), scatter, executor=self._executor)
        if self._race_sanitizer is not None and self._race_sanitizer.findings:
            raise SanitizeError(
                self._race_sanitizer.findings, context="serve.shard"
            )
        cand_ids = np.concatenate(shard_ids, axis=1)
        cand_scores = np.concatenate(shard_scores, axis=1)
        return top_k_desc(cand_scores, cand_ids, k)

    # -- reporting ---------------------------------------------------------
    def serve_extras(self) -> dict:
        """JSON-ready sharding facts for ``ServeReport.extras``."""
        extras = {
            "plan": self.plan.as_dict(),
            "generation": self._generation.number,
            "generations": self.retired + [self._generation.summary()],
            "rounds_served": self._round,
            "replica_load": self._replica_load.tolist(),
            "failovers": self.failovers,
            "recoveries": self.recoveries,
        }
        if self.faults is not None:
            extras["faults"] = self.fault_report.as_dict()
        return extras

    def __repr__(self) -> str:
        return (
            f"ShardedIndex(rows={self.plan.num_rows}, "
            f"shards={self.plan.num_shards}, replicas={self.plan.replicas}, "
            f"generation={self._generation.number})"
        )


class ShardedEngine(QueryEngine):
    """A :class:`~repro.serve.engine.QueryEngine` over a :class:`ShardedIndex`.

    Adds two behaviors the sharded tier needs on top of the stock engine:

    - every flushed answer is folded into the *serving* generation's
      sha256 fingerprint (arrival order — the same stream order
      ``ServeReport.answers_sha256`` hashes), and
    - :meth:`promote` swaps the result cache for an empty one (preserving
      the live :class:`~repro.serve.engine.CacheStats` object, so the
      engine's stats alias stays intact) — a hot swap must never serve a
      previous generation's cached answers.
    """

    def __init__(self, index: ShardedIndex, **kwargs):
        if not isinstance(index, ShardedIndex):
            raise TypeError(f"ShardedEngine requires a ShardedIndex, got {type(index).__name__}")
        super().__init__(index, **kwargs)

    def flush(self) -> int:
        batch = list(self._pending)
        generation = self.index.generation
        count = super().flush()
        for ticket in batch:
            generation.record(ticket.word, *ticket.result)
        return count

    def promote(self, store: EmbeddingStore) -> ShardGeneration:
        """Hot-swap ``store`` in under live load; returns the generation.

        Pending (submitted, unflushed) queries are *not* drained — they
        resolve against the new generation at the next flush, so no query
        is dropped and the answer stream switches at a batch boundary.
        """
        generation = self.index.promote(store)
        stale = self.cache
        fresh = LRUCache(stale.capacity)
        fresh.stats = stale.stats  # EngineStats.cache aliases this object
        self.cache = fresh
        return generation

    def serve_extras(self) -> dict:
        return self.index.serve_extras()
