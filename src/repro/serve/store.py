"""Immutable embedding snapshots for serving.

An :class:`EmbeddingStore` is the unit a serving process loads: the float32
embedding matrix, its pre-computed row L2 norms, and the word table, frozen
read-only.  Stores are built once from a trained model, a checkpoint, or a
word2vec text file, then persisted with :meth:`EmbeddingStore.save` so that
serving never re-parses text formats:

- ``format="npz"`` — one compressed ``vectors.npz`` (matrix + norms),
- ``format="raw"`` — raw little-endian float32 files that
  :meth:`EmbeddingStore.open` can memory-map, for stores larger than RAM.

Both layouts live in a directory next to a ``meta.json`` sidecar carrying
the word table and shape, which is validated against the arrays on open —
validation errors always name the offending ``meta.json`` field.  The
sidecar may additionally carry a ``codes`` section describing quantized
code layouts (:mod:`repro.serve.quant`) stored alongside the float32
snapshot; :func:`read_meta` / :func:`write_meta` / :func:`meta_field` are
the shared helpers those variants use to extend the sidecar without
re-implementing its validation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence, TextIO

import numpy as np

from repro.text.vocab import Vocabulary
from repro.w2v.model import Word2VecModel

__all__ = ["EmbeddingStore", "meta_field", "read_meta", "write_meta"]

_FORMAT_VERSION = 1
_META_NAME = "meta.json"
_NPZ_NAME = "vectors.npz"
_RAW_MATRIX_NAME = "vectors.f32"
_RAW_NORMS_NAME = "norms.f32"


def _frozen(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.flags.writeable = False
    return view


def read_meta(directory: str | Path) -> dict:
    """Parse ``meta.json`` under ``directory`` (raises when absent)."""
    meta_path = Path(directory) / _META_NAME
    if not meta_path.is_file():
        raise FileNotFoundError(f"no {_META_NAME} under {directory}")
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    if not isinstance(meta, dict):
        raise ValueError(f"{meta_path}: meta.json must be a JSON object")
    return meta


def write_meta(directory: str | Path, meta: dict) -> Path:
    """Rewrite ``meta.json`` under ``directory`` atomically-enough."""
    meta_path = Path(directory) / _META_NAME
    meta_path.write_text(json.dumps(meta, ensure_ascii=False), encoding="utf-8")
    return meta_path


def meta_field(meta: dict, name: str, kind: type, where: str = "meta.json"):
    """Fetch a required typed field; errors name the missing/bad field."""
    if name not in meta:
        raise ValueError(f"{where}: meta.json missing field {name!r}")
    value = meta[name]
    if kind is float and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ValueError(
            f"{where}: meta.json field {name!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


class EmbeddingStore:
    """Read-only ``(matrix, norms, words)`` triple serving queries.

    ``matrix`` is ``(V, dim)`` float32 (row ``i`` is word ``words[i]``);
    ``norms`` is the per-row L2 norm, pre-computed so indexes never pay the
    reduction at query time.  All arrays are exposed as read-only views —
    a store is a snapshot, never a live model.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        words: Sequence[str],
        norms: np.ndarray | None = None,
    ):
        matrix = np.ascontiguousarray(matrix, dtype=np.float32)
        if matrix.ndim != 2:
            raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
        words = list(words)
        if len(words) != matrix.shape[0]:
            raise ValueError(
                f"word table has {len(words)} entries for {matrix.shape[0]} rows"
            )
        ids: dict[str, int] = {}
        for row, word in enumerate(words):
            if word in ids:
                raise ValueError(f"duplicate word {word!r} (rows {ids[word]} and {row})")
            ids[word] = row
        if norms is None:
            norms = np.linalg.norm(matrix, axis=1)
        norms = np.ascontiguousarray(norms, dtype=np.float32)
        if norms.shape != (matrix.shape[0],):
            raise ValueError(
                f"norms shape {norms.shape} does not match {matrix.shape[0]} rows"
            )
        self._matrix = _frozen(matrix)
        self._norms = _frozen(norms)
        self._words = words
        self._ids = ids
        self._normalized: np.ndarray | None = None

    # -- construction ------------------------------------------------------
    @classmethod
    def from_model(
        cls, model: Word2VecModel | np.ndarray, vocabulary: Vocabulary
    ) -> "EmbeddingStore":
        """Snapshot a trained model's embedding layer (copies the matrix)."""
        matrix = model.embedding if isinstance(model, Word2VecModel) else np.asarray(model)
        if matrix.ndim != 2 or matrix.shape[0] != len(vocabulary):
            raise ValueError(
                f"embedding shape {matrix.shape} does not match vocabulary "
                f"size {len(vocabulary)}"
            )
        words = [vocabulary.word_of(i) for i in range(len(vocabulary))]
        return cls(np.array(matrix, dtype=np.float32), words)

    @classmethod
    def from_checkpoint(cls, blob: bytes, vocabulary: Vocabulary) -> "EmbeddingStore":
        """Snapshot the canonical model inside a training checkpoint."""
        from repro.w2v.io import load_checkpoint_blob

        return cls.from_model(load_checkpoint_blob(blob).model, vocabulary)

    @classmethod
    def from_word2vec_text(cls, source: TextIO | str) -> "EmbeddingStore":
        """Build from a word2vec text file (one parse, then :meth:`save`)."""
        from repro.w2v.io import load_word2vec_text

        words, vectors = load_word2vec_text(source)
        return cls(vectors, words)

    # -- lookups -----------------------------------------------------------
    def __len__(self) -> int:
        return self._matrix.shape[0]

    def __contains__(self, word: str) -> bool:
        return word in self._ids

    @property
    def dim(self) -> int:
        return self._matrix.shape[1]

    @property
    def matrix(self) -> np.ndarray:
        return self._matrix

    @property
    def norms(self) -> np.ndarray:
        return self._norms

    @property
    def words(self) -> list[str]:
        return list(self._words)

    def id_of(self, word: str) -> int:
        try:
            return self._ids[word]
        except KeyError:
            raise KeyError(f"word {word!r} not in store") from None

    def word_of(self, row: int) -> str:
        if not 0 <= row < len(self._words):
            raise IndexError(f"row {row} out of range for {len(self._words)} words")
        return self._words[row]

    def vector(self, word: str) -> np.ndarray:
        """The raw embedding row for ``word`` (read-only view)."""
        return self._matrix[self.id_of(word)]

    def normalized(self) -> np.ndarray:
        """Row-normalized matrix (computed once, cached, read-only).

        Zero rows stay zero rather than dividing by zero, matching
        :meth:`repro.w2v.model.Word2VecModel.normalized_embedding`.
        """
        if self._normalized is None:
            safe = np.where(self._norms > 0, self._norms, 1.0)
            self._normalized = _frozen(
                (self._matrix / safe[:, None]).astype(np.float32)
            )
        return self._normalized

    def memory_bytes(self) -> int:
        return int(self._matrix.nbytes + self._norms.nbytes)

    # -- persistence -------------------------------------------------------
    def save(self, directory: str | Path, format: str = "npz") -> Path:
        """Persist under ``directory`` (created if missing); returns the path.

        ``format="npz"`` writes one compressed archive; ``format="raw"``
        writes plain little-endian float32 files that :meth:`open` can
        memory-map.  Either way ``meta.json`` carries the word table.
        """
        if format not in ("npz", "raw"):
            raise ValueError(f"unknown store format {format!r} (use 'npz' or 'raw')")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        meta = {
            "format_version": _FORMAT_VERSION,
            "format": format,
            "vocab_size": len(self),
            "dim": self.dim,
            "dtype": "<f4",
            "words": self._words,
        }
        if format == "npz":
            with open(directory / _NPZ_NAME, "wb") as handle:
                np.savez_compressed(handle, matrix=self._matrix, norms=self._norms)
        else:
            matrix = np.ascontiguousarray(self._matrix, dtype="<f4")
            norms = np.ascontiguousarray(self._norms, dtype="<f4")
            (directory / _RAW_MATRIX_NAME).write_bytes(matrix.tobytes())
            (directory / _RAW_NORMS_NAME).write_bytes(norms.tobytes())
        (directory / _META_NAME).write_text(
            json.dumps(meta, ensure_ascii=False), encoding="utf-8"
        )
        return directory

    @classmethod
    def open(cls, directory: str | Path, mmap: bool = False) -> "EmbeddingStore":
        """Load a saved store; ``mmap=True`` maps raw-format matrices.

        Shapes in ``meta.json`` are validated against the arrays so a
        truncated or mismatched store fails loudly instead of serving
        garbage.
        """
        directory = Path(directory)
        meta = read_meta(directory)
        where = str(directory)
        if meta_field(meta, "format_version", int, where) != _FORMAT_VERSION:
            raise ValueError(
                f"{where}: unsupported meta.json field 'format_version' "
                f"{meta['format_version']!r} (expected {_FORMAT_VERSION})"
            )
        fmt = meta_field(meta, "format", str, where)
        V = meta_field(meta, "vocab_size", int, where)
        dim = meta_field(meta, "dim", int, where)
        words = meta_field(meta, "words", list, where)
        if len(words) != V:
            raise ValueError(
                f"{where}: meta.json field 'words' lists {len(words)} entries "
                f"but field 'vocab_size' is {V}"
            )
        if fmt == "npz":
            if mmap:
                raise ValueError("mmap=True requires a raw-format store")
            with np.load(directory / _NPZ_NAME) as data:
                matrix, norms = data["matrix"], data["norms"]
        elif fmt == "raw":
            # Validate both file sizes against the meta.json shape before
            # reading anything: a truncated file must fail with an error
            # naming the meta.json fields it contradicts, not surface as
            # a numpy reshape error (or, for norms, a constructor shape
            # error) halfway through loading.
            matrix_bytes = V * dim * 4
            matrix_path = directory / _RAW_MATRIX_NAME
            if matrix_path.stat().st_size != matrix_bytes:
                raise ValueError(
                    f"{where}: {_RAW_MATRIX_NAME} is "
                    f"{matrix_path.stat().st_size} bytes but meta.json fields "
                    f"'vocab_size'/'dim' imply {matrix_bytes} "
                    f"({V}x{dim} float32)"
                )
            norms_path = directory / _RAW_NORMS_NAME
            norms_bytes = V * 4
            if norms_path.stat().st_size != norms_bytes:
                raise ValueError(
                    f"{where}: {_RAW_NORMS_NAME} is "
                    f"{norms_path.stat().st_size} bytes but meta.json field "
                    f"'vocab_size' implies {norms_bytes} ({V} float32 norms)"
                )
            if mmap:
                matrix = np.memmap(matrix_path, dtype="<f4", mode="r", shape=(V, dim))
            else:
                matrix = np.fromfile(matrix_path, dtype="<f4").reshape(V, dim)
            norms = np.fromfile(norms_path, dtype="<f4")
        else:
            raise ValueError(
                f"{where}: unknown meta.json field 'format' value {fmt!r} "
                "(use 'npz' or 'raw')"
            )
        if matrix.shape != (V, dim):
            raise ValueError(
                f"stored matrix shape {matrix.shape} does not match meta ({V}, {dim})"
            )
        return cls(matrix, words, norms=norms)

    def __repr__(self) -> str:
        return f"EmbeddingStore(words={len(self)}, dim={self.dim})"
