"""Tables 2 and 3: end-to-end comparison with the shared-memory state of
the art.

Table 2 (paper): execution time of Word2Vec-C ("W2V") and Gensim ("GEM") on
1 host versus GraphWord2Vec ("GW2V") on 32 hosts, with the speedup of GW2V
over W2V.  GEM runs out of memory on wiki.  Table 3: semantic / syntactic /
total analogy accuracy of the same three systems.

Both tables come from the same three training runs per dataset, executed
once and cached (``repro.experiments.harness.main_comparison``).  GW2V's
reported time is the modeled cluster time (max per-host compute per round +
α–β communication; DESIGN.md §3); W2V/GEM report measured wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import harness
from repro.util.tables import format_table

__all__ = ["run", "format_table2", "format_table3", "main"]

DATASETS = ("1-billion-sim", "news-sim", "wiki-sim")


@dataclass
class ComparisonRow:
    dataset: str
    w2v_seconds: float
    gem_seconds: float | None  # None = OOM
    gw2v_seconds: float
    speedup: float
    w2v_accuracy: object
    gem_accuracy: object | None
    gw2v_accuracy: object


def run(
    names: tuple[str, ...] = DATASETS,
    epochs: int = harness.EXPERIMENT_PARAMS.epochs,
    hosts: int = harness.PAPER_HOSTS,
) -> list[ComparisonRow]:
    rows = []
    for name in names:
        w2v, gem, gw2v = harness.main_comparison(name, epochs=epochs, hosts=hosts)
        rows.append(
            ComparisonRow(
                dataset=name,
                w2v_seconds=w2v.wall_seconds,
                gem_seconds=None if gem.failure == "OOM" else gem.wall_seconds,
                gw2v_seconds=float(gw2v.modeled_seconds or 0.0),
                speedup=w2v.wall_seconds / max(gw2v.modeled_seconds or 1e-12, 1e-12),
                w2v_accuracy=harness.accuracy_of(w2v, name),
                gem_accuracy=harness.accuracy_of(gem, name),
                gw2v_accuracy=harness.accuracy_of(gw2v, name),
            )
        )
    return rows


def format_table2(rows: list[ComparisonRow], hosts: int = harness.PAPER_HOSTS) -> str:
    return format_table(
        ["Dataset", "W2V (s)", "GEM (s)", f"GW2V@{hosts} (s)", "Speedup"],
        [
            [
                r.dataset,
                f"{r.w2v_seconds:.1f}",
                "OOM" if r.gem_seconds is None else f"{r.gem_seconds:.1f}",
                f"{r.gw2v_seconds:.1f}",
                f"{r.speedup:.1f}x",
            ]
            for r in rows
        ],
        title=(
            "Table 2: Execution time of W2V and GEM on 1 host and GW2V on "
            f"{hosts} hosts (modeled), and speedup of GW2V over W2V."
        ),
    )


def format_table3(rows: list[ComparisonRow]) -> str:
    def cells(acc):
        if acc is None:
            return ["-", "-", "-"]
        return [f"{acc.semantic:.1%}", f"{acc.syntactic:.1%}", f"{acc.total:.1%}"]

    body = []
    for r in rows:
        body.append(
            [r.dataset]
            + cells(r.w2v_accuracy)
            + cells(r.gem_accuracy)
            + cells(r.gw2v_accuracy)
        )
    return format_table(
        [
            "Dataset",
            "W2V sem", "W2V syn", "W2V tot",
            "GEM sem", "GEM syn", "GEM tot",
            "GW2V sem", "GW2V syn", "GW2V tot",
        ],
        body,
        title="Table 3: Accuracy (semantic, syntactic, total) of W2V/GEM (1 host) and GW2V (32 hosts).",
    )


def main() -> None:
    rows = run()
    print(format_table2(rows))
    print()
    print(format_table3(rows))


if __name__ == "__main__":
    main()
