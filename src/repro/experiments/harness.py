"""Shared experiment machinery: canonical parameters and timed runs."""
# repro: allow-file[REPRO003] -- the harness's whole job is timing full
# runs end-to-end with the wall clock; nothing here feeds the simulated
# timing model, which only consumes injected StatTimer clocks.

from __future__ import annotations

from dataclasses import dataclass
import functools
import time
from typing import Callable

import numpy as np

from repro.baselines.sgns_reference import (
    GensimStyleWord2Vec,
    MemoryBudgetExceeded,
    Word2VecCReference,
)
from repro.eval.analogy import AnalogyAccuracy, evaluate_analogies
from repro.experiments import datasets
from repro.text.corpus import Corpus
from repro.w2v.distributed import DistributedTrainResult, GraphWord2Vec
from repro.w2v.model import Word2VecModel
from repro.w2v.params import Word2VecParams
from repro.w2v.shared_memory import SharedMemoryWord2Vec

__all__ = [
    "EXPERIMENT_PARAMS",
    "PAPER_HOSTS",
    "GEM_MEMORY_BUDGET_BYTES",
    "experiment_params",
    "run_shared_memory",
    "run_reference",
    "run_distributed",
    "accuracy_of",
    "main_comparison",
]

#: Canonical hyperparameters for all paper-reproduction experiments.  Paper
#: values are window=5, negatives=15, threshold=1e-4, dim=200, epochs=16;
#: dim/negatives/epochs/threshold are reduced with the ~10^4 x corpus
#: scale-down (see EXPERIMENTS.md "Configuration" for the mapping).
EXPERIMENT_PARAMS = Word2VecParams(
    dim=64,
    window=5,
    negatives=10,
    learning_rate=0.025,
    epochs=8,
    subsample_threshold=1e-3,
)

#: The paper's headline cluster size (Tables 2/3, Figures 6/7).
PAPER_HOSTS = 32

#: GEM's materialized-pairs budget — the scaled-down analogue of the 220GB
#: hosts that fit 1-billion/news but OOM on wiki (Table 2).
GEM_MEMORY_BUDGET_BYTES = 40 * 1024 * 1024

DEFAULT_SEED = 7


def experiment_params(**overrides) -> Word2VecParams:
    return EXPERIMENT_PARAMS.with_(**overrides) if overrides else EXPERIMENT_PARAMS


@dataclass
class TimedRun:
    """A trained model with its wall-clock (and modeled, if distributed) time."""

    system: str
    model: Word2VecModel | None
    wall_seconds: float
    modeled_seconds: float | None = None
    distributed: DistributedTrainResult | None = None
    failure: str | None = None


def run_shared_memory(
    corpus: Corpus,
    params: Word2VecParams,
    seed: int = DEFAULT_SEED,
    epoch_hook: Callable[[int, Word2VecModel], None] | None = None,
    workers: int | None = None,
) -> TimedRun:
    """``workers`` > 1 trains Hogwild-style on a thread pool (see
    :class:`~repro.w2v.shared_memory.SharedMemoryWord2Vec`)."""
    trainer = SharedMemoryWord2Vec(corpus, params, seed=seed, workers=workers)
    start = time.perf_counter()
    model = trainer.train(epoch_hook)
    return TimedRun("SM", model, time.perf_counter() - start)


def run_reference(
    kind: str,
    corpus: Corpus,
    params: Word2VecParams,
    seed: int = DEFAULT_SEED,
) -> TimedRun:
    """Run a shared-memory comparator: ``w2v`` or ``gem``."""
    if kind == "w2v":
        trainer = Word2VecCReference(corpus, params, seed=seed)
    elif kind == "gem":
        trainer = GensimStyleWord2Vec(
            corpus, params, seed=seed, memory_budget_bytes=GEM_MEMORY_BUDGET_BYTES
        )
    else:
        raise ValueError(f"unknown reference {kind!r} (expected w2v or gem)")
    start = time.perf_counter()
    try:
        model = trainer.train()
    except MemoryBudgetExceeded as exc:
        return TimedRun(kind.upper(), None, time.perf_counter() - start, failure="OOM")
    return TimedRun(kind.upper(), model, time.perf_counter() - start)


def run_distributed(
    corpus: Corpus,
    params: Word2VecParams,
    num_hosts: int,
    sync_rounds: int | None = None,
    combiner: str = "mc",
    plan: str = "opt",
    seed: int = DEFAULT_SEED,
    epoch_hook: Callable[[int, Word2VecModel], None] | None = None,
    workers: int | None = None,
    sanitize: bool | None = None,
) -> TimedRun:
    """``workers`` > 1 overlaps the simulated hosts on real cores; the
    trained model and the modeled times are bit-identical to ``workers=1``
    (only the real wall-clock of the simulation changes).  ``sanitize``
    enables the :mod:`repro.analysis.runtime` sanitizers (``None`` defers
    to ``REPRO_SANITIZE``); sanitized runs are bit-identical too."""
    trainer = GraphWord2Vec(
        corpus,
        params,
        num_hosts=num_hosts,
        sync_rounds_per_epoch=sync_rounds,
        combiner=combiner,
        plan=plan,
        seed=seed,
        workers=workers,
        sanitize=sanitize,
    )
    start = time.perf_counter()
    # Large-learning-rate divergence (AVG at lr*H) legitimately overflows
    # float32; that outcome is an expected data point, not an error.
    with np.errstate(over="ignore", invalid="ignore"):
        result = trainer.train(epoch_hook)
    return TimedRun(
        "GW2V",
        result.model,
        time.perf_counter() - start,
        modeled_seconds=result.report.total_time_s,
        distributed=result,
    )


def accuracy_of(run: TimedRun, dataset: str) -> AnalogyAccuracy | None:
    if run.model is None:
        return None
    corpus, questions = datasets.load(dataset)
    return evaluate_analogies(run.model, corpus.vocabulary, questions)


@functools.lru_cache(maxsize=None)
def main_comparison(
    dataset: str,
    epochs: int = EXPERIMENT_PARAMS.epochs,
    hosts: int = PAPER_HOSTS,
    seed: int = DEFAULT_SEED,
) -> tuple[TimedRun, TimedRun, TimedRun]:
    """The shared W2V/GEM/GW2V runs behind Tables 2 and 3 (cached)."""
    corpus, _ = datasets.load(dataset)
    params = experiment_params(epochs=epochs)
    w2v = run_reference("w2v", corpus, params, seed=seed)
    gem = run_reference("gem", corpus, params, seed=seed)
    gw2v = run_distributed(corpus, params, num_hosts=hosts, seed=seed)
    return w2v, gem, gw2v
