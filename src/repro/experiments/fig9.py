"""Figure 9: execution-time breakdown and communication volume.

For 2/8/32 hosts x three communication plans x three datasets, the paper
splits execution time into computation and communication and prints the
total communication volume on each bar.  Expected shape: computation scales
~1/H; communication volume grows with hosts (higher replication and sync
frequency); RepModel-Opt moves ~2x fewer bytes than RepModel-Naive;
PullModel sits between them and adds inspection time.

As in Figure 8, each configuration trains 1 epoch and scales to the paper's
16 epochs (identical per-epoch work).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import datasets, harness
from repro.util.tables import format_bytes, format_table
from repro.w2v.distributed import default_sync_rounds

__all__ = ["run", "format_result", "main"]

HOST_COUNTS = (2, 8, 32)
PLANS = ("naive", "opt", "pull")
PAPER_EPOCHS = 16


@dataclass
class BreakdownPoint:
    dataset: str
    plan: str
    hosts: int
    sync_rounds: int
    compute_s: float
    communication_s: float
    inspection_s: float
    comm_bytes: int
    wait_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.compute_s + self.communication_s + self.inspection_s + self.wait_s


def run(
    names: tuple[str, ...] = ("1-billion-sim", "news-sim", "wiki-sim"),
    host_counts: tuple[int, ...] = HOST_COUNTS,
    plans: tuple[str, ...] = PLANS,
    epochs: int = 1,
) -> list[BreakdownPoint]:
    points = []
    scale = PAPER_EPOCHS / epochs
    params = harness.experiment_params(epochs=epochs)
    for name in names:
        corpus, _ = datasets.load(name)
        for plan in plans:
            for hosts in host_counts:
                S = default_sync_rounds(hosts)
                run_ = harness.run_distributed(
                    corpus, params, num_hosts=hosts, sync_rounds=S, plan=plan
                )
                report = run_.distributed.report
                points.append(
                    BreakdownPoint(
                        dataset=name,
                        plan=report.plan,
                        hosts=hosts,
                        sync_rounds=S,
                        compute_s=report.breakdown.compute_s * scale,
                        communication_s=report.breakdown.communication_s * scale,
                        inspection_s=report.breakdown.inspection_s * scale,
                        comm_bytes=int(report.comm_bytes * scale),
                        wait_s=report.breakdown.wait_s * scale,
                    )
                )
    return points


def format_result(points: list[BreakdownPoint]) -> str:
    rows = [
        [
            p.dataset,
            p.plan,
            f"{p.hosts}({p.sync_rounds})",
            f"{p.compute_s:.1f}",
            f"{p.communication_s:.1f}",
            f"{p.inspection_s:.1f}",
            f"{p.wait_s:.1f}",
            f"{p.total_s:.1f}",
            format_bytes(p.comm_bytes),
        ]
        for p in points
    ]
    return format_table(
        ["Dataset", "Plan", "Hosts(S)", "Compute (s)", "Comm (s)", "Inspect (s)", "Wait (s)", "Total (s)", "Comm Volume"],
        rows,
        title=(
            "Figure 9: Breakdown of modeled 16-epoch execution time into "
            "computation and communication, with total communication volume."
        ),
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
