"""Table 1: datasets and their properties.

Paper row format: Vocabulary Words | Training Words | Size.  We print the
measured properties of the synthetic stand-ins next to the paper's values
for the real corpora they substitute.
"""

from __future__ import annotations

from repro.experiments.datasets import table1_rows
from repro.util.tables import format_bytes, format_table

__all__ = ["run", "format_result", "main"]


def run(names: tuple[str, ...] = ("1-billion-sim", "news-sim", "wiki-sim")):
    return table1_rows(names)


def format_result(rows) -> str:
    table = format_table(
        ["Dataset", "Vocab Words", "Training Words", "Size", "Questions",
         "Paper Vocab", "Paper Words", "Paper Size"],
        [
            [
                r["dataset"],
                f'{r["vocabulary_words"]:,}',
                f'{r["training_words"]:,}',
                format_bytes(r["size_bytes"]),
                r["questions"],
                r["paper_vocabulary"],
                r["paper_training_words"],
                r["paper_size"],
            ]
            for r in rows
        ],
        title="Table 1: Datasets and their properties (synthetic stand-ins vs paper).",
    )
    return table


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
