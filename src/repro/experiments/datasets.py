"""Dataset presets mirroring Table 1.

The paper trains on three corpora (Table 1): 1-billion (399K vocab, 665.5M
words, 3.7GB), news (479.3K, 714.1M, 3.9GB) and wiki (2759.5K, 3594.1M,
21GB).  The presets below are their synthetic stand-ins, scaled ~10^4 x down
with the *relative* proportions preserved: news slightly larger than
1-billion with a richer vocabulary, wiki several times larger than both in
tokens and vocabulary.

Corpora are deterministic functions of (preset, seed) and cached per
process, so every experiment in a benchmark run sees identical data.
"""

from __future__ import annotations

from dataclasses import dataclass
import functools

from repro.text.corpus import Corpus
from repro.text.synthetic import (
    AnalogyQuestionSet,
    SyntheticCorpusSpec,
    generate_corpus,
)

__all__ = ["DatasetPreset", "PRESETS", "load", "table1_rows"]

DEFAULT_SEED = 1


@dataclass(frozen=True)
class PaperRow:
    """The corresponding row of the paper's Table 1."""

    vocabulary_words: str
    training_words: str
    size: str


@dataclass(frozen=True)
class DatasetPreset:
    name: str
    spec: SyntheticCorpusSpec
    paper: PaperRow


PRESETS: dict[str, DatasetPreset] = {
    "1-billion-sim": DatasetPreset(
        name="1-billion-sim",
        spec=SyntheticCorpusSpec(
            name="1-billion-sim",
            num_tokens=60_000,
            pairs_per_family=8,
            filler_vocab=600,
            questions_per_family=12,
        ),
        paper=PaperRow("399.0K", "665.5M", "3.7GB"),
    ),
    "news-sim": DatasetPreset(
        name="news-sim",
        spec=SyntheticCorpusSpec(
            name="news-sim",
            num_tokens=65_000,
            pairs_per_family=8,
            filler_vocab=750,
            zipf_exponent=1.1,
            questions_per_family=12,
        ),
        paper=PaperRow("479.3K", "714.1M", "3.9GB"),
    ),
    "wiki-sim": DatasetPreset(
        name="wiki-sim",
        spec=SyntheticCorpusSpec(
            name="wiki-sim",
            num_tokens=150_000,
            pairs_per_family=12,
            filler_vocab=1_800,
            questions_per_family=14,
        ),
        paper=PaperRow("2759.5K", "3594.1M", "21GB"),
    ),
    # Not in the paper: a fast preset for tests and the quickstart example.
    "tiny-sim": DatasetPreset(
        name="tiny-sim",
        spec=SyntheticCorpusSpec(
            name="tiny-sim",
            num_tokens=8_000,
            pairs_per_family=4,
            filler_vocab=150,
            questions_per_family=6,
        ),
        paper=PaperRow("-", "-", "-"),
    ),
}


@functools.lru_cache(maxsize=None)
def load(name: str, seed: int = DEFAULT_SEED) -> tuple[Corpus, AnalogyQuestionSet]:
    """Generate (cached) the corpus and question set of a preset."""
    try:
        preset = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(PRESETS)}"
        ) from None
    return generate_corpus(preset.spec, seed=seed)


def table1_rows(names: tuple[str, ...] = ("1-billion-sim", "news-sim", "wiki-sim")):
    """Measured dataset properties next to the paper's Table 1 values."""
    rows = []
    for name in names:
        preset = PRESETS[name]
        corpus, questions = load(name)
        vocab = corpus.vocabulary
        rows.append(
            {
                "dataset": name,
                "vocabulary_words": len(vocab),
                "training_words": corpus.num_tokens,
                "size_bytes": vocab.size_on_disk_bytes(),
                "questions": len(questions),
                "paper_vocabulary": preset.paper.vocabulary_words,
                "paper_training_words": preset.paper.training_words,
                "paper_size": preset.paper.size,
            }
        )
    return rows
