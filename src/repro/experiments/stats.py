"""Multi-seed repetition statistics for experiments.

Single-seed results can mislead at small scale; this utility repeats any
seed-parameterized measurement and reports mean, standard deviation, and a
Student-t 95% confidence interval — the minimal statistical hygiene for
reporting stochastic training results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy.stats import t as student_t

__all__ = ["RunStatistics", "repeat_runs"]


@dataclass(frozen=True)
class RunStatistics:
    """Summary of repeated measurements."""

    values: tuple[float, ...]
    mean: float
    std: float  # sample standard deviation (ddof=1)
    stderr: float
    ci95_low: float
    ci95_high: float

    @property
    def n(self) -> int:
        return len(self.values)

    def __str__(self) -> str:
        return (
            f"{self.mean:.4f} ± {self.stderr:.4f} "
            f"(95% CI [{self.ci95_low:.4f}, {self.ci95_high:.4f}], n={self.n})"
        )


def repeat_runs(
    measure: Callable[[int], float],
    seeds: Sequence[int],
) -> RunStatistics:
    """Evaluate ``measure(seed)`` for each seed and summarize.

    At least two seeds are required (a confidence interval needs variance);
    for a single observation report the raw value instead.
    """
    if len(seeds) < 2:
        raise ValueError(f"need >= 2 seeds for statistics, got {len(seeds)}")
    values = np.array([float(measure(int(s))) for s in seeds], dtype=np.float64)
    n = len(values)
    mean = float(values.mean())
    std = float(values.std(ddof=1))
    stderr = std / np.sqrt(n)
    half_width = float(student_t.ppf(0.975, df=n - 1) * stderr)
    return RunStatistics(
        values=tuple(float(v) for v in values),
        mean=mean,
        std=std,
        stderr=float(stderr),
        ci95_low=mean - half_width,
        ci95_high=mean + half_width,
    )
