"""Figure 7: effect of synchronization frequency (S = 12/24/48 at 32 hosts).

The paper reports semantic/syntactic/total accuracy of AVG and MC on
1-billion for 12, 24 and 48 synchronization rounds per epoch, with the
1-host accuracy as a dotted reference line.  Expected shape: accuracy
improves with frequency, and the improvement is larger for MC than AVG.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import datasets, harness
from repro.util.tables import format_table

__all__ = ["run", "format_result", "main"]

DATASET = "1-billion-sim"
FREQUENCIES = (12, 24, 48)


@dataclass
class FrequencyPoint:
    combiner: str
    sync_rounds: int
    semantic: float
    syntactic: float
    total: float


@dataclass
class Fig7Result:
    points: list[FrequencyPoint]
    reference_semantic: float
    reference_syntactic: float
    reference_total: float


def run(
    dataset: str = DATASET,
    epochs: int = 6,
    hosts: int = harness.PAPER_HOSTS,
    frequencies: tuple[int, ...] = FREQUENCIES,
) -> Fig7Result:
    corpus, _questions = datasets.load(dataset)
    params = harness.experiment_params(epochs=epochs)

    sm = harness.run_shared_memory(corpus, params)
    sm_acc = harness.accuracy_of(sm, dataset)

    points = []
    for combiner in ("avg", "mc"):
        for S in frequencies:
            run_ = harness.run_distributed(
                corpus, params, num_hosts=hosts, sync_rounds=S, combiner=combiner
            )
            acc = harness.accuracy_of(run_, dataset)
            points.append(
                FrequencyPoint(
                    combiner=combiner.upper(),
                    sync_rounds=S,
                    semantic=acc.semantic,
                    syntactic=acc.syntactic,
                    total=acc.total,
                )
            )
    return Fig7Result(
        points=points,
        reference_semantic=sm_acc.semantic,
        reference_syntactic=sm_acc.syntactic,
        reference_total=sm_acc.total,
    )


def format_result(result: Fig7Result) -> str:
    rows = [
        [p.combiner, p.sync_rounds, f"{p.semantic:.1%}", f"{p.syntactic:.1%}", f"{p.total:.1%}"]
        for p in result.points
    ]
    rows.append(
        [
            "SM (1 host)",
            "-",
            f"{result.reference_semantic:.1%}",
            f"{result.reference_syntactic:.1%}",
            f"{result.reference_total:.1%}",
        ]
    )
    return format_table(
        ["Reduction", "Sync Frequency", "Semantic", "Syntactic", "Total"],
        rows,
        title=(
            "Figure 7: Effect of synchronization frequency on accuracy "
            "(32 hosts, 1-billion-sim; SM row is the 1-host dotted line)."
        ),
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
