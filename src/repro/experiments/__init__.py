"""Benchmark-harness experiments reproducing every table and figure (§5).

Each module exposes ``run(...)`` returning structured rows and a
``format_result(...)`` printer that emits the same rows/series the paper
reports.  ``benchmarks/`` wraps these in pytest-benchmark entry points; the
modules are also directly runnable (``python -m repro.experiments.table2``).

Scale deviations from the paper (documented in EXPERIMENTS.md): synthetic
corpora ~10^3-10^4 x smaller, dim 200 -> 64, negatives 15 -> 10, epochs
16 -> 8 (figures) so the full suite completes on one laptop core.
"""

from repro.experiments import (
    datasets,
    fig6,
    fig7,
    fig8,
    fig9,
    stats,
    table1,
    table23,
)

__all__ = [
    "datasets",
    "table1",
    "table23",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "stats",
]
