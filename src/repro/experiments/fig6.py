"""Figure 6: accuracy per epoch — reduction operators and learning rates.

The paper plots total analogy accuracy after each epoch on 1-billion for:
the shared-memory baseline (SM) on 1 host; distributed averaging (AVG) on
32 hosts at learning rates from 0.025 (the sequential rate) to 0.8 (32 x);
and the model combiner (MC) on 32 hosts at 0.025.  Expected shape: SM
converges fastest; AVG at 0.025 converges slowly (mini-batch effect); AVG
at 0.8 diverges to ~0; MC at 0.025 tracks far above AVG with no learning-
rate tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.analogy import evaluate_analogies
from repro.experiments import datasets, harness
from repro.util.tables import format_table

__all__ = ["run", "format_result", "main"]

DATASET = "1-billion-sim"
AVG_LEARNING_RATES = (0.025, 0.1, 0.8)


@dataclass
class Series:
    label: str
    accuracy_by_epoch: list[float]


def _tracked(corpus, questions):
    history: list[float] = []

    def hook(_epoch, model):
        history.append(
            evaluate_analogies(model, corpus.vocabulary, questions).total
        )

    return history, hook


def run(
    dataset: str = DATASET,
    epochs: int = 8,
    hosts: int = harness.PAPER_HOSTS,
    sync_rounds: int = 48,
    avg_learning_rates: tuple[float, ...] = AVG_LEARNING_RATES,
) -> list[Series]:
    corpus, questions = datasets.load(dataset)
    series: list[Series] = []

    params = harness.experiment_params(epochs=epochs)
    history, hook = _tracked(corpus, questions)
    harness.run_shared_memory(corpus, params, epoch_hook=hook)
    series.append(Series("SM lr=0.025 (1 host)", list(history)))

    history, hook = _tracked(corpus, questions)
    harness.run_distributed(
        corpus, params, num_hosts=hosts, sync_rounds=sync_rounds,
        combiner="mc", epoch_hook=hook,
    )
    series.append(Series(f"MC lr=0.025 ({hosts} hosts)", list(history)))

    for lr in avg_learning_rates:
        history, hook = _tracked(corpus, questions)
        harness.run_distributed(
            corpus, params.with_(learning_rate=lr), num_hosts=hosts,
            sync_rounds=sync_rounds, combiner="avg", epoch_hook=hook,
        )
        series.append(Series(f"AVG lr={lr} ({hosts} hosts)", list(history)))
    return series


def format_result(series: list[Series]) -> str:
    epochs = max(len(s.accuracy_by_epoch) for s in series)
    headers = ["Epoch"] + [s.label for s in series]
    rows = []
    for e in range(epochs):
        row = [e + 1]
        for s in series:
            acc = s.accuracy_by_epoch[e] if e < len(s.accuracy_by_epoch) else float("nan")
            row.append(f"{acc:.1%}")
        rows.append(row)
    return format_table(
        headers,
        rows,
        title=(
            "Figure 6: Total accuracy after each epoch (1-billion-sim); "
            "SM vs distributed AVG at several learning rates vs MC."
        ),
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
