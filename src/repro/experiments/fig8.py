"""Figure 8: strong scaling of the three communication plans.

The paper runs 1-64 hosts on all three datasets, raising the sync frequency
roughly linearly with the host count (labels "H(S)": 1(1), 2(3), 4(6),
8(12), 16(24), 32(48), 64(96)), and plots total training time for
RepModel-Naive, RepModel-Opt and PullModel.  Expected shape: all variants
scale to 32 hosts; RepModel-Opt is fastest (it exploits update sparsity);
PullModel pays inspection overhead; Naive pays dense communication, with
its penalty growing with hosts.

Each configuration here trains ``epochs`` epochs (default 1) and scales the
modeled time to the paper's 16-epoch training, which is exact because every
epoch performs identical work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import datasets, harness
from repro.util.tables import format_table
from repro.w2v.distributed import default_sync_rounds

__all__ = ["run", "format_result", "main", "HOST_COUNTS"]

HOST_COUNTS = (1, 2, 4, 8, 16, 32)
PLANS = ("naive", "opt", "pull")
PAPER_EPOCHS = 16


@dataclass
class ScalingPoint:
    dataset: str
    plan: str
    hosts: int
    sync_rounds: int
    time_s: float  # modeled, scaled to PAPER_EPOCHS
    compute_s: float
    communication_s: float
    inspection_s: float
    comm_bytes: int


def run(
    names: tuple[str, ...] = ("1-billion-sim",),
    host_counts: tuple[int, ...] = HOST_COUNTS,
    plans: tuple[str, ...] = PLANS,
    epochs: int = 1,
) -> list[ScalingPoint]:
    points = []
    scale = PAPER_EPOCHS / epochs
    params = harness.experiment_params(epochs=epochs)
    for name in names:
        corpus, _ = datasets.load(name)
        for hosts in host_counts:
            S = default_sync_rounds(hosts) if hosts > 1 else 1
            for plan in plans:
                run_ = harness.run_distributed(
                    corpus, params, num_hosts=hosts, sync_rounds=S, plan=plan
                )
                report = run_.distributed.report
                points.append(
                    ScalingPoint(
                        dataset=name,
                        plan=report.plan,
                        hosts=hosts,
                        sync_rounds=S,
                        time_s=report.total_time_s * scale,
                        compute_s=report.breakdown.compute_s * scale,
                        communication_s=report.breakdown.communication_s * scale,
                        inspection_s=report.breakdown.inspection_s * scale,
                        comm_bytes=int(report.comm_bytes * scale),
                    )
                )
    return points


def format_result(points: list[ScalingPoint]) -> str:
    by_key: dict[tuple[str, str], dict[int, ScalingPoint]] = {}
    hosts_seen: list[int] = []
    for p in points:
        by_key.setdefault((p.dataset, p.plan), {})[p.hosts] = p
        if p.hosts not in hosts_seen:
            hosts_seen.append(p.hosts)
    headers = ["Dataset", "Plan"] + [
        f"{h}({default_sync_rounds(h) if h > 1 else 1})" for h in hosts_seen
    ]
    rows = []
    for (dataset, plan), series in by_key.items():
        row = [dataset, plan]
        base = series.get(hosts_seen[0])
        for h in hosts_seen:
            p = series.get(h)
            if p is None:
                row.append("-")
            else:
                speedup = base.time_s / p.time_s if base else float("nan")
                row.append(f"{p.time_s:.1f}s ({speedup:.1f}x)")
        rows.append(row)
    return format_table(
        headers,
        rows,
        title=(
            "Figure 8: Strong scaling (modeled 16-epoch time; columns are "
            "Hosts(Sync Frequency), cells show time and speedup vs 1 host)."
        ),
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
