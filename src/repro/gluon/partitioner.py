"""CuSP-style graph partitioning (Hoang et al., IPDPS'19).

Distributed graph systems first partition the *edges* among hosts; each host
then materializes proxies for the endpoints of its edges.  CuSP expresses
partitioning policies as two assignments: master-of-node and owner-of-edge.
We implement the three classic policies evaluated in the D-Galois papers plus
the customized policy GraphWord2Vec uses:

- ``oec`` (outgoing edge cut): edge owned by its source's master host,
- ``iec`` (incoming edge cut): edge owned by its destination's master host,
- ``cvc`` (Cartesian vertex cut): hosts in a pr x pc grid; edge (u, v) goes
  to the host at (row of u's master, column of v's master),
- :func:`replicate_all_partitions`: every host has a proxy for every node
  (the paper modified Gluon this way because Word2Vec generates edges on the
  fly between arbitrary node pairs — §4.2).

Masters are always the contiguous block distribution of
:mod:`repro.gluon.proxies`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.gluon.proxies import block_boundaries, block_owner_array

__all__ = [
    "Partition",
    "contiguous_partitions",
    "partition_edges",
    "replicate_all_partitions",
]


@dataclass
class Partition:
    """One host's share of a distributed graph.

    ``local_to_global`` enumerates the proxies present on this host (masters
    first, then mirrors, each sorted by global id).  ``edges_local`` holds
    this host's edges in local ids; label arrays in :mod:`repro.dgraph` are
    indexed by local id.
    """

    host: int
    num_hosts: int
    num_global_nodes: int
    local_to_global: np.ndarray
    master_bounds: np.ndarray  # shared block boundaries, length H+1
    edges_local: tuple[np.ndarray, np.ndarray]  # (src, dst) local ids
    edge_data: np.ndarray | None = None
    _global_to_local: dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.local_to_global = np.asarray(self.local_to_global, dtype=np.int64)
        if len(np.unique(self.local_to_global)) != len(self.local_to_global):
            raise ValueError("duplicate proxies in partition")
        self._global_to_local = {
            int(g): i for i, g in enumerate(self.local_to_global)
        }

    # -- proxy queries ------------------------------------------------------
    @property
    def num_local(self) -> int:
        return len(self.local_to_global)

    def master_host_of(self, global_ids: np.ndarray) -> np.ndarray:
        return block_owner_array(global_ids, self.master_bounds)

    def to_local(self, global_id: int) -> int:
        try:
            return self._global_to_local[int(global_id)]
        except KeyError:
            raise KeyError(
                f"global node {global_id} has no proxy on host {self.host}"
            ) from None

    def to_local_array(self, global_ids: np.ndarray) -> np.ndarray:
        return np.fromiter(
            (self._global_to_local[int(g)] for g in np.asarray(global_ids)),
            dtype=np.int64,
            count=len(global_ids),
        )

    def has_proxy(self, global_id: int) -> bool:
        return int(global_id) in self._global_to_local

    def is_master_local(self) -> np.ndarray:
        """Boolean mask over local ids: proxy is the master."""
        owners = self.master_host_of(self.local_to_global)
        return owners == self.host

    def masters_local(self) -> np.ndarray:
        return np.nonzero(self.is_master_local())[0].astype(np.int64)

    def mirrors_local(self) -> np.ndarray:
        return np.nonzero(~self.is_master_local())[0].astype(np.int64)

    def master_block_global(self) -> np.ndarray:
        """Global ids whose master lives on this host."""
        lo, hi = self.master_bounds[self.host], self.master_bounds[self.host + 1]
        return np.arange(lo, hi, dtype=np.int64)

    def replication_factor_contrib(self) -> int:
        """Proxies on this host (summed over hosts / N = replication factor)."""
        return self.num_local


def _grid_shape(num_hosts: int) -> tuple[int, int]:
    """Most-square pr x pc factorization with pr <= pc (CVC convention)."""
    pr = int(np.sqrt(num_hosts))
    while num_hosts % pr != 0:
        pr -= 1
    return pr, num_hosts // pr


def partition_edges(
    src: np.ndarray,
    dst: np.ndarray,
    num_nodes: int,
    num_hosts: int,
    policy: str = "oec",
    edge_data: np.ndarray | None = None,
) -> list[Partition]:
    """Partition the edge list among ``num_hosts`` hosts under ``policy``.

    Every edge is assigned to exactly one host; every endpoint of a host's
    edges gets a proxy there; masters additionally get a proxy on their block
    owner even if no local edge touches them (so label state always has a
    canonical home).
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError(f"src/dst shape mismatch: {src.shape} vs {dst.shape}")
    if src.size and (min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= num_nodes):
        raise ValueError("edge endpoint out of range")
    bounds = block_boundaries(num_nodes, num_hosts)

    if policy == "oec":
        owner = block_owner_array(src, bounds)
    elif policy == "iec":
        owner = block_owner_array(dst, bounds)
    elif policy == "cvc":
        pr, pc = _grid_shape(num_hosts)
        row = block_owner_array(src, bounds) % pr
        col = block_owner_array(dst, bounds) % pc
        owner = row * pc + col
    else:
        raise ValueError(f"unknown partition policy {policy!r}")

    partitions: list[Partition] = []
    for host in range(num_hosts):
        mask = owner == host
        h_src, h_dst = src[mask], dst[mask]
        h_data = edge_data[mask] if edge_data is not None else None
        masters = np.arange(bounds[host], bounds[host + 1], dtype=np.int64)
        endpoints = np.unique(np.concatenate([h_src, h_dst, masters]))
        is_master = block_owner_array(endpoints, bounds) == host
        # masters first, then mirrors — both already sorted by global id
        local_order = np.concatenate([endpoints[is_master], endpoints[~is_master]])
        part = Partition(
            host=host,
            num_hosts=num_hosts,
            num_global_nodes=num_nodes,
            local_to_global=local_order,
            master_bounds=bounds,
            edges_local=(np.empty(0, np.int64), np.empty(0, np.int64)),
            edge_data=h_data,
        )
        part.edges_local = (
            part.to_local_array(h_src),
            part.to_local_array(h_dst),
        )
        partitions.append(part)
    return partitions


def contiguous_partitions(
    master_bounds: np.ndarray, replicas: int = 1
) -> list[Partition]:
    """Edge-free partitions over explicit contiguous master blocks.

    ``master_bounds`` (length ``B + 1``, starting at 0, non-decreasing)
    gives each of ``B`` blocks the node range
    ``[master_bounds[b], master_bounds[b + 1])``.  With ``replicas == 1``
    each block is one host holding exactly its own rows — the sharded
    embedding-store layout of :mod:`repro.serve.shard`.

    With ``replicas > 1`` every block is served by ``replicas`` hosts:
    host ``b * replicas`` is the master of the block, and hosts
    ``b * replicas + 1 ..`` hold the same rows as mirrors (their master
    blocks are zero-width).  The expanded boundary array keeps
    :func:`~repro.gluon.proxies.block_owner_array`'s invariant — a node's
    owner is always the first host of its block group — so
    :func:`~repro.gluon.partition_stats.analyze_partitions` sees masters
    covering the nodes exactly once and a replication factor equal to
    ``replicas``.
    """
    bounds = np.asarray(master_bounds, dtype=np.int64)
    if bounds.ndim != 1 or len(bounds) < 2:
        raise ValueError(f"master_bounds needs at least 2 entries, got {bounds.shape}")
    if bounds[0] != 0:
        raise ValueError(f"master_bounds must start at 0, got {bounds[0]}")
    if np.any(np.diff(bounds) < 0):
        raise ValueError("master_bounds must be non-decreasing")
    if replicas < 1:
        raise ValueError(f"replicas must be at least 1, got {replicas}")
    num_blocks = len(bounds) - 1
    num_nodes = int(bounds[-1])
    num_hosts = num_blocks * replicas

    expanded = np.empty(num_hosts + 1, dtype=np.int64)
    for b in range(num_blocks):
        expanded[b * replicas] = bounds[b]
        expanded[b * replicas + 1 : (b + 1) * replicas] = bounds[b + 1]
    expanded[-1] = bounds[-1]

    empty = (np.empty(0, np.int64), np.empty(0, np.int64))
    partitions: list[Partition] = []
    for b in range(num_blocks):
        rows = np.arange(bounds[b], bounds[b + 1], dtype=np.int64)
        for r in range(replicas):
            partitions.append(
                Partition(
                    host=b * replicas + r,
                    num_hosts=num_hosts,
                    num_global_nodes=num_nodes,
                    local_to_global=rows,
                    master_bounds=expanded,
                    edges_local=empty,
                )
            )
    return partitions


def replicate_all_partitions(num_nodes: int, num_hosts: int) -> list[Partition]:
    """GraphWord2Vec's policy: every host holds a proxy for every node.

    Local id == global id on every host; masters are the contiguous block
    distribution.  Edges are generated on the fly by the application, so the
    partitions carry no edge lists.
    """
    bounds = block_boundaries(num_nodes, num_hosts)
    all_nodes = np.arange(num_nodes, dtype=np.int64)
    empty = (np.empty(0, np.int64), np.empty(0, np.int64))
    return [
        Partition(
            host=h,
            num_hosts=num_hosts,
            num_global_nodes=num_nodes,
            local_to_global=all_nodes,
            master_bounds=bounds,
            edges_local=empty,
        )
        for h in range(num_hosts)
    ]
