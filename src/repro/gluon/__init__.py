"""Gluon-style communication substrate (Dathathri et al., PLDI'18).

Gluon abstracts partitioning and bulk-synchronous communication for
distributed graph analytics: nodes have one *master* proxy and any number of
*mirror* proxies; synchronization is a reduce phase (mirrors -> master, with
a user reduction operator) followed by a broadcast phase (master -> mirrors),
and a bit-vector of updated nodes lets it exploit sparsity in the updates.

This package reproduces that substrate over a simulated network with exact
byte accounting:

- :mod:`repro.gluon.bitvector` — updated-node tracking,
- :mod:`repro.gluon.proxies` — master/mirror proxy metadata per partition,
- :mod:`repro.gluon.partitioner` — CuSP-style partitioning policies,
- :mod:`repro.gluon.comm` — the simulated transport with byte/message stats,
- :mod:`repro.gluon.sync` — the reduce/broadcast engine,
- :mod:`repro.gluon.plans` — GraphWord2Vec's communication variants
  (RepModel-Naive, RepModel-Opt, PullModel; paper §4.4).
"""

from repro.gluon.bitvector import BitVector
from repro.gluon.comm import MessageStats, SimulatedNetwork
from repro.gluon.partition_stats import PartitionStats, analyze_partitions
from repro.gluon.partitioner import (
    Partition,
    partition_edges,
    replicate_all_partitions,
)
from repro.gluon.plans import CommPlan, PullModel, RepModelNaive, RepModelOpt, get_plan
from repro.gluon.sync import FieldSync, GluonSynchronizer

__all__ = [
    "BitVector",
    "MessageStats",
    "SimulatedNetwork",
    "Partition",
    "PartitionStats",
    "analyze_partitions",
    "partition_edges",
    "replicate_all_partitions",
    "CommPlan",
    "RepModelNaive",
    "RepModelOpt",
    "PullModel",
    "get_plan",
    "FieldSync",
    "GluonSynchronizer",
]
