"""Dense bit vector over uint64 words.

Gluon tracks which nodes were updated in a synchronization round with a bit
vector; only set positions participate in the reduce/broadcast phases
(RepModel-Opt).  The vector also has a defined *wire size* so the simulated
network can charge for shipping it alongside sparse payloads.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["BitVector"]

_WORD_BITS = 64


class BitVector:
    """Fixed-size bit set with NumPy word storage and vectorized bulk ops."""

    __slots__ = ("size", "_words")

    def __init__(self, size: int):
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self.size = int(size)
        self._words = np.zeros((size + _WORD_BITS - 1) // _WORD_BITS, dtype=np.uint64)

    # -- construction -----------------------------------------------------
    @classmethod
    def from_indices(cls, size: int, indices: Iterable[int] | np.ndarray) -> "BitVector":
        bv = cls(size)
        bv.set_many(indices)
        return bv

    def copy(self) -> "BitVector":
        out = BitVector.__new__(BitVector)
        out.size = self.size
        out._words = self._words.copy()
        return out

    # -- element ops ------------------------------------------------------
    def _check(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < self.size:
            raise IndexError(f"bit {index} out of range [0, {self.size})")
        return index

    def set(self, index: int) -> None:
        index = self._check(index)
        self._words[index >> 6] |= np.uint64(1 << (index & 63))

    def clear(self, index: int) -> None:
        index = self._check(index)
        self._words[index >> 6] &= np.uint64(~(1 << (index & 63)) & (2**64 - 1))

    def test(self, index: int) -> bool:
        index = self._check(index)
        return bool((self._words[index >> 6] >> np.uint64(index & 63)) & np.uint64(1))

    __contains__ = test

    # -- bulk ops ---------------------------------------------------------
    def set_many(self, indices: Iterable[int] | np.ndarray) -> None:
        idx = np.asarray(list(indices) if not isinstance(indices, np.ndarray) else indices)
        if idx.size == 0:
            return
        if not np.issubdtype(idx.dtype, np.integer):
            # A float (or bool) array would be silently truncated by the
            # int64 cast below, setting the wrong bits; refuse it instead.
            raise TypeError(
                f"set_many requires integer indices, got dtype {idx.dtype}"
            )
        idx = idx.astype(np.int64, copy=False)
        if idx.min() < 0 or idx.max() >= self.size:
            raise IndexError(
                f"indices out of range [0, {self.size}): "
                f"min={idx.min()}, max={idx.max()}"
            )
        words = idx >> 6
        bits = np.left_shift(np.uint64(1), (idx & 63).astype(np.uint64))
        np.bitwise_or.at(self._words, words, bits)

    def reset(self) -> None:
        self._words[:] = 0

    def count(self) -> int:
        """Number of set bits (popcount)."""
        return int(np.bitwise_count(self._words).sum())

    def indices(self) -> np.ndarray:
        """Sorted array of set bit positions (int64)."""
        if self.size == 0:
            return np.empty(0, dtype=np.int64)
        bits = np.unpackbits(self._words.view(np.uint8), bitorder="little")
        return np.nonzero(bits[: self.size])[0].astype(np.int64)

    def __iter__(self) -> Iterator[int]:
        return iter(self.indices().tolist())

    def any(self) -> bool:
        return bool(self._words.any())

    # -- set algebra ------------------------------------------------------
    def _check_same_size(self, other: "BitVector") -> None:
        if self.size != other.size:
            raise ValueError(f"size mismatch: {self.size} vs {other.size}")

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_same_size(other)
        out = self.copy()
        out._words |= other._words
        return out

    def __ior__(self, other: "BitVector") -> "BitVector":
        self._check_same_size(other)
        self._words |= other._words
        return self

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_same_size(other)
        out = self.copy()
        out._words &= other._words
        return out

    def __iand__(self, other: "BitVector") -> "BitVector":
        self._check_same_size(other)
        self._words &= other._words
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self.size == other.size and bool(np.array_equal(self._words, other._words))

    def __hash__(self) -> int:  # pragma: no cover - mutable; not hashable
        raise TypeError("BitVector is mutable and unhashable")

    def __repr__(self) -> str:
        return f"BitVector(size={self.size}, count={self.count()})"

    # -- wire accounting ---------------------------------------------------
    def nbytes(self) -> int:
        """Bytes needed to transmit this bit vector."""
        return int(self._words.nbytes)
