"""Master/mirror proxy helpers.

In Gluon every partition holds *proxies* for the nodes incident to its edges;
exactly one proxy per node (across all hosts) is the master, holding the
canonical value.  Master assignment here is the contiguous block distribution
the paper uses for GraphWord2Vec ("P1 has the master proxies for the first
contiguous chunk of the nodes, P2 the second, ...", Fig. 4).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "block_boundaries",
    "block_owner",
    "block_owner_array",
    "master_block_slice",
]


def block_boundaries(num_nodes: int, num_hosts: int) -> np.ndarray:
    """Start offsets of each host's contiguous master block; length H+1.

    The first ``num_nodes % num_hosts`` blocks get one extra node, so blocks
    differ in size by at most one.
    """
    if num_hosts <= 0:
        raise ValueError(f"num_hosts must be positive, got {num_hosts}")
    if num_nodes < 0:
        raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
    base, extra = divmod(num_nodes, num_hosts)
    sizes = np.full(num_hosts, base, dtype=np.int64)
    sizes[:extra] += 1
    bounds = np.zeros(num_hosts + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds


def block_owner(node: int, bounds: np.ndarray) -> int:
    """Host whose master block contains global node id ``node``."""
    if not 0 <= node < bounds[-1]:
        raise IndexError(f"node {node} out of range [0, {bounds[-1]})")
    return int(np.searchsorted(bounds, node, side="right") - 1)


def block_owner_array(nodes: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Vectorized :func:`block_owner` over an id array."""
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.size and (nodes.min() < 0 or nodes.max() >= bounds[-1]):
        raise IndexError("node id out of range")
    return (np.searchsorted(bounds, nodes, side="right") - 1).astype(np.int64)


def master_block_slice(bounds: np.ndarray, host: int) -> slice:
    """Global-id slice of ``host``'s contiguous master block."""
    if not 0 <= host < len(bounds) - 1:
        raise ValueError(f"host {host} out of range [0, {len(bounds) - 1})")
    return slice(int(bounds[host]), int(bounds[host + 1]))
