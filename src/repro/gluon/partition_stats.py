"""Partition-quality analysis (Gill et al., PVLDB'19 — the paper's ref [10]).

Partitioning policy drives distributed performance through three measures:
*replication factor* (average proxies per node — the broadcast fan-out),
*edge balance* (max/mean edges per host — the compute imbalance), and
*master balance*.  This module computes them for any policy's output and
backs the partition-policy ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.gluon.partitioner import Partition

__all__ = ["PartitionStats", "analyze_partitions"]


@dataclass(frozen=True)
class PartitionStats:
    num_hosts: int
    num_nodes: int
    num_edges: int
    replication_factor: float  # total proxies / nodes
    edge_balance: float  # max edges per host / mean edges per host
    master_balance: float  # max masters per host / mean masters per host
    mirrors_total: int
    edges_per_host: tuple[int, ...]

    def __str__(self) -> str:
        return (
            f"PartitionStats(hosts={self.num_hosts}, rf={self.replication_factor:.2f}, "
            f"edge_balance={self.edge_balance:.2f}, "
            f"master_balance={self.master_balance:.2f})"
        )


def analyze_partitions(partitions: Sequence[Partition]) -> PartitionStats:
    """Compute quality measures for one partitioning of a graph."""
    if not partitions:
        raise ValueError("no partitions")
    num_hosts = len(partitions)
    num_nodes = partitions[0].num_global_nodes
    proxies_total = sum(p.num_local for p in partitions)
    masters_per_host = np.array(
        [len(p.masters_local()) for p in partitions], dtype=np.int64
    )
    if int(masters_per_host.sum()) != num_nodes:
        raise ValueError(
            f"masters do not cover nodes exactly: {masters_per_host.sum()} of {num_nodes}"
        )
    edges_per_host = np.array(
        [len(p.edges_local[0]) for p in partitions], dtype=np.int64
    )
    num_edges = int(edges_per_host.sum())

    def balance(per_host: np.ndarray) -> float:
        mean = per_host.mean()
        return float(per_host.max() / mean) if mean > 0 else 1.0

    return PartitionStats(
        num_hosts=num_hosts,
        num_nodes=num_nodes,
        num_edges=num_edges,
        replication_factor=proxies_total / float(num_nodes),
        edge_balance=balance(edges_per_host),
        master_balance=balance(masters_per_host),
        mirrors_total=proxies_total - num_nodes,
        edges_per_host=tuple(int(e) for e in edges_per_host),
    )
