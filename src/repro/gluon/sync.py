"""The Gluon reduce/broadcast synchronization engine.

Two synchronization modes cover the library's needs:

- :meth:`GluonSynchronizer.sync_replicated` — the GraphWord2Vec mode.  The
  model (one or more ``(N, dim)`` label arrays) is replicated on all hosts;
  each sync round, mirrors ship their accumulated *deltas* (current − base)
  to the node's master, the master folds them with a
  :class:`~repro.core.combiners.GradientCombiner` (model combiner, averaging,
  sum, ...) on top of the canonical value, and new canonical values are
  broadcast back according to a :class:`~repro.gluon.plans.CommPlan`.
- :meth:`GluonSynchronizer.sync_value` — the classic graph-analytics mode
  used by the apps in :mod:`repro.dgraph.apps`.  Mirrors send their label
  *values*; masters reduce them with an elementwise operator (min for sssp,
  add for pagerank residuals, ...); changed canonical values are broadcast to
  every host holding a proxy.

All payloads flow through the :class:`~repro.gluon.comm.SimulatedNetwork` —
masters really consume what mirrors sent — so the byte accounting and the
data movement cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.combiners import GradientCombiner
from repro.gluon.bitvector import BitVector
from repro.gluon.comm import ID_BYTES, VALUE_BYTES, PhaseRecord, SimulatedNetwork
from repro.gluon.partitioner import Partition
from repro.gluon.plans import CommPlan

__all__ = ["FieldSync", "GluonSynchronizer", "ReplicatedSyncResult", "ValueSyncResult"]


@dataclass
class FieldSync:
    """A replicated model field registered for synchronization.

    ``arrays[h]`` is host ``h``'s replica, shape ``(N, dim)``; ``bases[h]``
    is the snapshot taken at the start of the current round (what deltas are
    measured against).  Both are updated in place by the synchronizer.
    """

    name: str
    arrays: list[np.ndarray]
    bases: list[np.ndarray]

    def __post_init__(self) -> None:
        shapes = {a.shape for a in self.arrays} | {b.shape for b in self.bases}
        if len(shapes) != 1:
            raise ValueError(f"field {self.name!r}: inconsistent replica shapes {shapes}")
        if self.arrays[0].ndim != 2:
            raise ValueError(f"field {self.name!r}: replicas must be 2-D (N, dim)")

    @property
    def dim(self) -> int:
        return self.arrays[0].shape[1]

    @property
    def num_nodes(self) -> int:
        return self.arrays[0].shape[0]

    def snapshot_bases(self) -> None:
        """Record current replica values as the new delta baseline."""
        for base, arr in zip(self.bases, self.arrays):
            np.copyto(base, arr)


@dataclass
class ReplicatedSyncResult:
    """Accounting for one replicated-field sync round."""

    field: str
    changed_per_master: list[np.ndarray]
    reduce_record: PhaseRecord
    broadcast_record: PhaseRecord
    request_record: PhaseRecord | None = None
    #: Per host: global ids whose replica was overwritten by the broadcast.
    received_per_host: list[np.ndarray] = field(default_factory=list)

    @property
    def num_changed(self) -> int:
        return int(sum(len(c) for c in self.changed_per_master))

    @property
    def total_bytes(self) -> int:
        total = self.reduce_record.total_bytes + self.broadcast_record.total_bytes
        if self.request_record is not None:
            total += self.request_record.total_bytes
        return total


@dataclass
class ValueSyncResult:
    """Accounting for one value-mode sync round."""

    field: str
    #: Per host: local ids whose value changed during this sync (master
    #: reductions and received broadcasts), for worklist-driven algorithms.
    changed_local: list[np.ndarray]
    reduce_record: PhaseRecord
    broadcast_record: PhaseRecord

    @property
    def any_changed(self) -> bool:
        return any(len(c) for c in self.changed_local)


class GluonSynchronizer:
    """Reduce/broadcast engine over a set of partitions and a network."""

    def __init__(self, partitions: Sequence[Partition], network: SimulatedNetwork):
        if not partitions:
            raise ValueError("need at least one partition")
        if len(partitions) != network.num_hosts:
            raise ValueError(
                f"{len(partitions)} partitions but network has {network.num_hosts} hosts"
            )
        hosts = sorted(p.host for p in partitions)
        if hosts != list(range(len(partitions))):
            raise ValueError(f"partition hosts must be 0..H-1, got {hosts}")
        self.partitions = sorted(partitions, key=lambda p: p.host)
        self.network = network
        self.num_hosts = len(partitions)
        self.bounds = self.partitions[0].master_bounds
        #: Optional :class:`~repro.analysis.runtime.GluonSyncChecker`; when
        #: set, replicated syncs and crash restores are observed (never
        #: perturbed) for protocol violations.
        self.checker = None
        # Mirror location map for value-mode sync: (master_host, mirror_host)
        # -> sorted global ids in master_host's block proxied on mirror_host.
        self._mirror_ids: dict[tuple[int, int], np.ndarray] = {}
        for part in self.partitions:
            owners = part.master_host_of(part.local_to_global)
            for m in range(self.num_hosts):
                if m == part.host:
                    continue
                ids = np.sort(part.local_to_global[owners == m])
                self._mirror_ids[(m, part.host)] = ids

    # ------------------------------------------------------------------
    # Replicated-model synchronization (GraphWord2Vec)
    # ------------------------------------------------------------------
    def sync_replicated(
        self,
        field: FieldSync,
        updated: Sequence[BitVector],
        combiner: GradientCombiner,
        plan: CommPlan,
        accessed_next: Sequence[np.ndarray] | None = None,
        fold_offset: int = 0,
    ) -> ReplicatedSyncResult:
        """One reduce+broadcast round for a replicated field.

        ``updated[h]`` flags the nodes host ``h`` wrote since its base
        snapshot.  ``accessed_next[h]`` (sorted global ids) is required by
        plans with :attr:`~repro.gluon.plans.CommPlan.requires_access_sets`.
        Bit vectors are *not* cleared and bases are *not* re-snapshotted here
        — the trainer owns round boundaries (it may sync several fields).

        ``fold_offset`` rotates the (order-dependent) inductive fold of
        contributions: host ``fold_offset % H`` is folded first this round.
        The paper leaves the induction order open; rotating it round-robin
        avoids permanently privileging one host's shard (an ablation
        benchmark quantifies the effect).
        """
        H = self.num_hosts
        if len(updated) != H:
            raise ValueError(f"need {H} updated bit-vectors, got {len(updated)}")
        if plan.requires_access_sets and accessed_next is None:
            raise ValueError(f"plan {plan.name} requires access sets")
        for part in self.partitions:
            if part.num_local != field.num_nodes:
                raise ValueError(
                    "sync_replicated requires fully replicated partitions "
                    f"(host {part.host} has {part.num_local} of {field.num_nodes} nodes)"
                )
        dim = field.dim
        dtype = field.arrays[0].dtype

        if self.checker is not None:
            # Validate writes-vs-flags while replicas are still untouched.
            self.checker.before_replicated(field, self.bounds, updated)

        touched = [updated[h].indices() for h in range(H)]
        deltas = [
            (field.arrays[h][touched[h]].astype(np.float64) -
             field.bases[h][touched[h]].astype(np.float64))
            for h in range(H)
        ]

        # -- reduce phase: mirrors -> masters ---------------------------------
        with self.network.phase(f"reduce:{field.name}") as reduce_record:
            for h in range(H):
                t, d = touched[h], deltas[h]
                owner = np.searchsorted(self.bounds, t, side="right") - 1
                for m in range(H):
                    if m == h:
                        continue
                    sel = owner == m
                    ids = t[sel]
                    block = int(self.bounds[m + 1] - self.bounds[m])
                    wire = plan.reduce_wire_bytes(len(ids), dim, block)
                    if wire > 0:
                        self.network.send(h, m, wire, payload=(ids, d[sel]))

            changed_per_master: list[np.ndarray] = []
            for m in range(H):
                lo, hi = int(self.bounds[m]), int(self.bounds[m + 1])
                # Gather contributions in ascending host order: the master's
                # own local delta participates exactly like a mirror's.
                contribs: dict[int, tuple[np.ndarray, np.ndarray]] = {}
                own_sel = (touched[m] >= lo) & (touched[m] < hi)
                contribs[m] = (touched[m][own_sel], deltas[m][own_sel])
                for src, payload in self.network.drain(m):
                    contribs[src] = payload
                all_ids = [
                    contribs[src][0] for src in sorted(contribs)
                    if len(contribs[src][0])
                ]
                if not all_ids:
                    changed_per_master.append(np.empty(0, dtype=np.int64))
                    continue
                union = np.unique(np.concatenate(all_ids))
                state = combiner.create(len(union), dim)
                for src in sorted(contribs, key=lambda h: (h - fold_offset) % H):
                    ids, vals = contribs[src]
                    if len(ids) == 0:
                        continue
                    rows = np.searchsorted(union, ids)
                    state.accumulate(rows, vals)
                combined = state.result()
                canonical = field.bases[m][union].astype(np.float64) + combined
                field.arrays[m][union] = canonical.astype(dtype)
                changed_per_master.append(union)

        # -- pull-request phase (PullModel only) ------------------------------
        request_record: PhaseRecord | None = None
        if plan.requires_access_sets:
            assert accessed_next is not None
            with self.network.phase(f"request:{field.name}") as request_record:
                for h in range(H):
                    acc = np.asarray(accessed_next[h], dtype=np.int64)
                    owner = np.searchsorted(self.bounds, acc, side="right") - 1
                    for m in range(H):
                        if m == h:
                            continue
                        ids = acc[owner == m]
                        wire = plan.request_wire_bytes(len(ids))
                        if wire > 0:
                            self.network.send(h, m, wire, payload=ids)
                # Masters consume the requests (content == accessed_next,
                # which the broadcast below re-derives; drain keeps inboxes
                # and the data/accounting paths consistent).
                for m in range(H):
                    self.network.drain(m)

        # -- broadcast phase: masters -> mirrors ------------------------------
        with self.network.phase(f"broadcast:{field.name}") as broadcast_record:
            for m in range(H):
                lo, hi = int(self.bounds[m]), int(self.bounds[m + 1])
                changed = changed_per_master[m]
                for h in range(H):
                    if h == m:
                        continue
                    accessed = None
                    if plan.requires_access_sets:
                        acc = np.asarray(accessed_next[h], dtype=np.int64)  # type: ignore[index]
                        accessed = acc[(acc >= lo) & (acc < hi)]
                    ids, wire = plan.broadcast_selection(
                        changed, hi - lo, accessed, dim
                    )
                    if wire > 0:
                        self.network.send(
                            m, h, wire, payload=(ids, field.arrays[m][ids].copy())
                        )
            received_per_host: list[np.ndarray] = []
            for h in range(H):
                got: list[np.ndarray] = []
                for _src, (ids, vals) in self.network.drain(h):
                    if len(ids):
                        field.arrays[h][ids] = vals
                        got.append(ids)
                received_per_host.append(
                    np.unique(np.concatenate(got)) if got else np.empty(0, np.int64)
                )

        # Repair the delta baselines: after the sync every overwritten replica
        # row and every master row holds a canonical value, which is the new
        # reference the next round's deltas are measured against.  Rows a
        # plan chose not to refresh (PullModel) keep their old base — they
        # will be refreshed (and re-based) before the host may touch them.
        for h in range(H):
            ids = received_per_host[h]
            if len(ids):
                field.bases[h][ids] = field.arrays[h][ids]
        for m in range(H):
            ids = changed_per_master[m]
            if len(ids):
                field.bases[m][ids] = field.arrays[m][ids]

        if self.checker is not None:
            self.checker.after_replicated(
                field,
                self.bounds,
                plan,
                updated,
                changed_per_master,
                received_per_host,
                accessed_next,
            )

        return ReplicatedSyncResult(
            field=field.name,
            changed_per_master=changed_per_master,
            reduce_record=reduce_record,
            broadcast_record=broadcast_record,
            request_record=request_record,
            received_per_host=received_per_host,
        )

    # ------------------------------------------------------------------
    # Crash recovery (fault injection)
    # ------------------------------------------------------------------
    def restore_host(self, field: FieldSync, host: int, phase: str = "recovery") -> int:
        """Rebuild ``host``'s replica of ``field`` after a fail-stop crash.

        Every surviving master streams its full canonical block to the
        recovering host.  Masters read from their delta *bases*, which hold
        the canonical values of the last completed round (bases of master
        rows are only rewritten by the post-sync repair), so the transfer is
        correct even while survivors are mid-round.  Blocks are contiguous,
        so ids stay implicit on the wire.  The recovering host's own master
        block is not touched — the caller restores it from the round
        checkpoint (stable storage), which is the only surviving copy.

        Returns the wire bytes charged to the ``{phase}:{field}`` records.
        """
        if not 0 <= host < self.num_hosts:
            raise ValueError(f"host {host} out of range [0, {self.num_hosts})")
        dim = field.dim
        with self.network.phase(f"{phase}:{field.name}") as record:
            for m in range(self.num_hosts):
                if m == host:
                    continue
                lo, hi = int(self.bounds[m]), int(self.bounds[m + 1])
                rows = hi - lo
                if rows == 0:
                    continue
                wire = rows * dim * VALUE_BYTES
                self.network.send(
                    m,
                    host,
                    wire,
                    payload=(np.arange(lo, hi, dtype=np.int64), field.bases[m][lo:hi].copy()),
                )
            for _src, (ids, vals) in self.network.drain(host):
                field.arrays[host][ids] = vals
                field.bases[host][ids] = vals
        if self.checker is not None:
            self.checker.after_restore(field, host)
        return record.total_bytes

    # ------------------------------------------------------------------
    # Value-mode synchronization (classic graph analytics)
    # ------------------------------------------------------------------
    def sync_value(
        self,
        name: str,
        arrays: Sequence[np.ndarray],
        updated: Sequence[BitVector],
        reduce_op: Callable[[np.ndarray, np.ndarray], np.ndarray],
    ) -> ValueSyncResult:
        """Reduce updated mirror *values* into masters, broadcast changes.

        ``arrays[h]`` is host ``h``'s label array indexed by local id (1-D or
        2-D); ``updated[h]`` flags locally-written nodes.  ``reduce_op`` must
        be idempotent-safe elementwise (min, max, add-on-residue-semantics is
        the caller's responsibility).  Returns per-host local ids whose value
        changed so data-driven algorithms can refill worklists.  Bit vectors
        are cleared.
        """
        H = self.num_hosts
        width = 1 if arrays[0].ndim == 1 else int(arrays[0].shape[1])
        changed_local: list[list[int]] = [[] for _ in range(H)]

        with self.network.phase(f"reduce:{name}") as reduce_record:
            for part in self.partitions:
                h = part.host
                idx = updated[h].indices()
                if idx.size == 0:
                    continue
                gids = part.local_to_global[idx]
                owners = part.master_host_of(gids)
                for m in range(H):
                    if m == h:
                        continue
                    sel = owners == m
                    if not sel.any():
                        continue
                    ids = gids[sel]
                    vals = arrays[h][idx[sel]].copy()
                    wire = len(ids) * (ID_BYTES + width * VALUE_BYTES)
                    self.network.send(h, m, wire, payload=(ids, vals))
            master_changed: list[np.ndarray] = []
            for part in self.partitions:
                m = part.host
                changed_ids: set[int] = set()
                # The master's own local updates are already in its array but
                # still count as changes to propagate.
                own = updated[m].indices()
                if own.size:
                    own_g = part.local_to_global[own]
                    own_masters = own_g[part.master_host_of(own_g) == m]
                    changed_ids.update(int(g) for g in own_masters)
                for _src, (ids, vals) in self.network.drain(m):
                    rows = part.to_local_array(ids)
                    before = arrays[m][rows].copy()
                    arrays[m][rows] = reduce_op(arrays[m][rows], vals)
                    delta = arrays[m][rows] != before
                    if delta.ndim > 1:
                        delta = delta.any(axis=1)
                    changed_ids.update(int(g) for g in ids[delta])
                    changed_local[m].extend(int(r) for r in rows[delta])
                master_changed.append(
                    np.array(sorted(changed_ids), dtype=np.int64)
                )

        with self.network.phase(f"broadcast:{name}") as broadcast_record:
            for part in self.partitions:
                m = part.host
                changed = master_changed[m]
                if changed.size == 0:
                    continue
                local_rows = part.to_local_array(changed)
                values = arrays[m][local_rows]
                for h in range(H):
                    if h == m:
                        continue
                    on_h = self._mirror_ids[(m, h)]
                    sel = np.isin(changed, on_h, assume_unique=True)
                    if not sel.any():
                        continue
                    ids = changed[sel]
                    wire = len(ids) * (ID_BYTES + width * VALUE_BYTES)
                    self.network.send(m, h, wire, payload=(ids, values[sel].copy()))
            for part in self.partitions:
                h = part.host
                for _src, (ids, vals) in self.network.drain(h):
                    rows = part.to_local_array(ids)
                    before = arrays[h][rows].copy()
                    arrays[h][rows] = vals
                    delta = arrays[h][rows] != before
                    if delta.ndim > 1:
                        delta = delta.any(axis=1)
                    changed_local[h].extend(int(r) for r in rows[delta])

        for bv in updated:
            bv.reset()
        return ValueSyncResult(
            field=name,
            changed_local=[np.array(sorted(set(c)), dtype=np.int64) for c in changed_local],
            reduce_record=reduce_record,
            broadcast_record=broadcast_record,
        )
