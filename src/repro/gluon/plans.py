"""Communication plans for model synchronization (paper §4.4).

All three plans compute *bitwise-identical models* — they feed exactly the
same contributions to the reduction operator — and differ only in which
bytes cross the wire (and, for PullModel, in an extra inspection/request
phase and a reduced per-host memory footprint):

- :class:`RepModelNaive` — fully replicated model, dense communication:
  every sync ships every mirror to its master and every master to every
  mirror, like a dense-matrix collective.  No ids on the wire.
- :class:`RepModelOpt` — fully replicated model, sparse communication: a
  bit-vector tracks updated nodes; reduce sends only updated mirrors,
  broadcast sends only nodes updated on at least one host.  Ids accompany
  values.  This is the paper's default.
- :class:`PullModel` — an inspection phase generates the next round's edges
  to find the nodes each host will *access*; the broadcast pulls exactly
  those masters (updated or not), so hosts only need storage for accessed
  nodes.  Costs an id-only request message per (host, master) pair.

Wire-size conventions come from :mod:`repro.gluon.comm`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.gluon.comm import ID_BYTES, VALUE_BYTES

__all__ = ["CommPlan", "RepModelNaive", "RepModelOpt", "PullModel", "get_plan"]


class CommPlan(ABC):
    """Byte-accounting and target-selection strategy for one sync round."""

    name: str = "abstract"
    #: Plan needs per-host next-round access sets (inspection phase output).
    requires_access_sets: bool = False

    @abstractmethod
    def reduce_wire_bytes(self, num_updated: int, dim: int, block_size: int) -> int:
        """Payload bytes for one mirror->master message; 0 suppresses it."""

    @abstractmethod
    def broadcast_selection(
        self,
        changed_ids: np.ndarray,
        block_size: int,
        accessed_ids: np.ndarray | None,
        dim: int,
    ) -> tuple[np.ndarray, int]:
        """Ids to ship master->mirror and the payload bytes charged.

        ``changed_ids`` are the global ids in the master's block whose
        canonical value changed this round; ``accessed_ids`` is the
        destination host's next-round access set restricted to the block
        (``None`` unless :attr:`requires_access_sets`).  Returns the ids
        whose values are written at the destination plus the wire size.
        """

    def request_wire_bytes(self, num_accessed: int) -> int:
        """Payload bytes of the pull-request (id-only) message; 0 = none."""
        return 0


class RepModelNaive(CommPlan):
    """Dense reduce and broadcast; pays for the full block every round."""

    name = "RepModel-Naive"

    def reduce_wire_bytes(self, num_updated: int, dim: int, block_size: int) -> int:
        # Dense: the whole master block's vectors, ids implicit.
        return block_size * dim * VALUE_BYTES

    def broadcast_selection(
        self,
        changed_ids: np.ndarray,
        block_size: int,
        accessed_ids: np.ndarray | None,
        dim: int,
    ) -> tuple[np.ndarray, int]:
        # Pays dense; only changed rows carry new data (unchanged rows are
        # already equal on every replica), so writing changed_ids suffices.
        return changed_ids, block_size * dim * VALUE_BYTES


def _membership_bytes(num_ids: int, universe: int) -> int:
    """Wire cost of naming ``num_ids`` nodes out of ``universe``.

    Gluon adaptively encodes the update set as either an explicit id list
    or a bit vector over the block, whichever is smaller (dense rounds make
    the bit vector win), plus one tag byte selecting the encoding.
    """
    id_list = num_ids * ID_BYTES
    bit_vector = ((universe + 63) // 64) * 8
    return 1 + min(id_list, bit_vector)


class RepModelOpt(CommPlan):
    """Sparse reduce/broadcast of updated nodes only (paper default).

    Update-set membership uses Gluon's adaptive encoding (id list or block
    bit vector, whichever is smaller).
    """

    name = "RepModel-Opt"

    def reduce_wire_bytes(self, num_updated: int, dim: int, block_size: int) -> int:
        if num_updated == 0:
            return 0
        return _membership_bytes(num_updated, block_size) + num_updated * dim * VALUE_BYTES

    def broadcast_selection(
        self,
        changed_ids: np.ndarray,
        block_size: int,
        accessed_ids: np.ndarray | None,
        dim: int,
    ) -> tuple[np.ndarray, int]:
        if changed_ids.size == 0:
            return changed_ids, 0
        wire = _membership_bytes(int(changed_ids.size), block_size)
        return changed_ids, wire + int(changed_ids.size) * dim * VALUE_BYTES


class PullModel(CommPlan):
    """Broadcast pulls exactly the next round's accessed masters."""

    name = "PullModel"
    requires_access_sets = True

    def reduce_wire_bytes(self, num_updated: int, dim: int, block_size: int) -> int:
        if num_updated == 0:
            return 0
        return num_updated * (ID_BYTES + dim * VALUE_BYTES)

    def broadcast_selection(
        self,
        changed_ids: np.ndarray,
        block_size: int,
        accessed_ids: np.ndarray | None,
        dim: int,
    ) -> tuple[np.ndarray, int]:
        if accessed_ids is None:
            raise ValueError("PullModel broadcast requires the access set")
        if accessed_ids.size == 0:
            return accessed_ids, 0
        # Ids were carried by the request message, so only values go back.
        return accessed_ids, int(accessed_ids.size) * dim * VALUE_BYTES

    def request_wire_bytes(self, num_accessed: int) -> int:
        if num_accessed == 0:
            return 0
        return num_accessed * ID_BYTES


_REGISTRY: dict[str, type[CommPlan]] = {
    "naive": RepModelNaive,
    "opt": RepModelOpt,
    "pull": PullModel,
    RepModelNaive.name: RepModelNaive,
    RepModelOpt.name: RepModelOpt,
    PullModel.name: PullModel,
}


def get_plan(name: str) -> CommPlan:
    """Instantiate a plan by short (``naive``/``opt``/``pull``) or full name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown communication plan {name!r}; available: naive, opt, pull"
        ) from None
