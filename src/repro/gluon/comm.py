"""Simulated message transport with exact byte accounting.

The reproduction replaces the MPI/LCI transport under Gluon with an
in-process network: messages are delivered immediately (the engine is bulk
synchronous, so delivery order within a phase does not matter), and the
network records, per communication phase, how many bytes each host sent and
received.  Those records are both the paper's *communication volume* numbers
(Figure 9 prints total volume) and the input to the α–β timing model in
:mod:`repro.cluster.network` (Figures 8/9 time breakdowns).

Wire-size conventions (documented so volumes are reproducible):

- node ids: 4 bytes (uint32 — vocabularies here are < 2^32),
- float payloads: 4 bytes per element (float32, as in the paper's vectors),
- bit vectors: their word storage (``BitVector.nbytes``),
- metadata header per message: 16 bytes.

Fault injection: the network optionally consults a
:class:`~repro.cluster.faults.TransientFaultInjector` on every send.
Transient faults (drops, corruptions) are recovered by retransmission
inside the BSP phase barrier, so the payload is always delivered — the
fault surfaces as extra bytes charged to the phase (and to
``MessageStats.resent_bytes``) plus backoff time the injector accumulates.
Without an injector the send path is exactly the fault-free one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster -> gluon)
    from repro.cluster.faults import TransientFaultInjector

__all__ = ["MessageStats", "PhaseRecord", "SimulatedNetwork", "HEADER_BYTES", "ID_BYTES", "VALUE_BYTES"]

HEADER_BYTES = 16
ID_BYTES = 4
VALUE_BYTES = 4


@dataclass
class PhaseRecord:
    """Per-host sent/received byte totals for one communication phase."""

    name: str
    num_hosts: int
    sent: np.ndarray = field(default=None)  # type: ignore[assignment]
    recv: np.ndarray = field(default=None)  # type: ignore[assignment]
    messages: int = 0
    #: Bytes of ``sent``/``recv`` that are fault retransmissions (and NACKs).
    resent_bytes: int = 0

    def __post_init__(self) -> None:
        if self.sent is None:
            self.sent = np.zeros(self.num_hosts, dtype=np.int64)
        if self.recv is None:
            self.recv = np.zeros(self.num_hosts, dtype=np.int64)

    @property
    def total_bytes(self) -> int:
        return int(self.sent.sum())

    def max_host_bytes(self) -> int:
        """Busiest endpoint's traffic — the bandwidth-bound term."""
        return int(np.maximum(self.sent, self.recv).max()) if self.num_hosts else 0


@dataclass
class MessageStats:
    """Aggregated transport statistics."""

    total_messages: int = 0
    total_bytes: int = 0
    resent_bytes: int = 0
    retransmissions: int = 0
    bytes_by_phase: dict[str, int] = field(default_factory=dict)
    messages_by_phase: dict[str, int] = field(default_factory=dict)

    def record(self, phase: str, nbytes: int) -> None:
        self.total_messages += 1
        self.total_bytes += nbytes
        self.bytes_by_phase[phase] = self.bytes_by_phase.get(phase, 0) + nbytes
        self.messages_by_phase[phase] = self.messages_by_phase.get(phase, 0) + 1

    def record_resend(self, phase: str, nbytes: int) -> None:
        """Charge fault-retransmission bytes (no new logical message)."""
        self.total_bytes += nbytes
        self.resent_bytes += nbytes
        self.retransmissions += 1
        self.bytes_by_phase[phase] = self.bytes_by_phase.get(phase, 0) + nbytes


class SimulatedNetwork:
    """Point-to-point transport among ``num_hosts`` simulated hosts.

    Usage::

        net = SimulatedNetwork(4)
        with net.phase("reduce") as record:
            net.send(src=1, dst=0, nbytes=..., payload=...)
        msgs = net.drain(dst=0)

    Sends outside a :meth:`phase` block are charged to the ``"default"``
    phase.  ``drain`` returns and clears a host's inbox in arrival order.
    """

    def __init__(self, num_hosts: int, fault_injector: "TransientFaultInjector | None" = None):
        if num_hosts <= 0:
            raise ValueError(f"num_hosts must be positive, got {num_hosts}")
        self.num_hosts = int(num_hosts)
        self.fault_injector = fault_injector
        self.stats = MessageStats()
        self.phase_records: list[PhaseRecord] = []
        self._active: PhaseRecord | None = None
        self._default: PhaseRecord | None = None
        self._inboxes: list[list[tuple[int, Any]]] = [[] for _ in range(num_hosts)]

    # -- phases -------------------------------------------------------------
    def phase(self, name: str) -> "_PhaseContext":
        return _PhaseContext(self, name)

    def _begin_phase(self, name: str) -> PhaseRecord:
        if self._active is not None:
            raise RuntimeError(
                f"phase {self._active.name!r} still active; phases do not nest"
            )
        self._active = PhaseRecord(name=name, num_hosts=self.num_hosts)
        return self._active

    def _end_phase(self) -> PhaseRecord:
        if self._active is None:
            raise RuntimeError("no active phase")
        record, self._active = self._active, None
        self.phase_records.append(record)
        return record

    # -- messaging ------------------------------------------------------------
    def send(self, src: int, dst: int, nbytes: int, payload: Any = None) -> None:
        """Deliver ``payload`` from ``src`` to ``dst``, charging ``nbytes``.

        ``nbytes`` is the modeled wire size of the payload *excluding* the
        fixed per-message header, which is added here.
        """
        for host, label in ((src, "src"), (dst, "dst")):
            if not 0 <= host < self.num_hosts:
                raise ValueError(f"{label} host {host} out of range [0, {self.num_hosts})")
        if src == dst:
            raise ValueError("loopback messages are local copies, not sends")
        if nbytes < 0:
            raise ValueError(f"negative payload size {nbytes}")
        wire = int(nbytes) + HEADER_BYTES
        if self._active is not None:
            record = self._active
        else:
            if self._default is None:
                self._default = PhaseRecord(name="default", num_hosts=self.num_hosts)
                self.phase_records.append(self._default)
            record = self._default
        phase_name = record.name
        record.sent[src] += wire
        record.recv[dst] += wire
        record.messages += 1
        self.stats.record(phase_name, wire)
        if self.fault_injector is not None:
            extra, _delay = self.fault_injector.on_send(wire)
            if extra:
                # Retransmissions traverse the same endpoints; the barrier
                # absorbs the backoff delay (accumulated by the injector).
                record.sent[src] += extra
                record.recv[dst] += extra
                record.resent_bytes += extra
                self.stats.record_resend(phase_name, extra)
        self._inboxes[dst].append((src, payload))

    def drain(self, dst: int) -> list[tuple[int, Any]]:
        """Return and clear ``dst``'s inbox as ``(src, payload)`` pairs."""
        if not 0 <= dst < self.num_hosts:
            raise ValueError(f"host {dst} out of range")
        msgs, self._inboxes[dst] = self._inboxes[dst], []
        return msgs

    def pending(self, dst: int) -> int:
        return len(self._inboxes[dst])

    # -- accounting ------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self.stats.total_bytes

    @property
    def total_messages(self) -> int:
        return self.stats.total_messages

    def records_for(self, name: str) -> Iterator[PhaseRecord]:
        return (r for r in self.phase_records if r.name == name)


class _PhaseContext:
    def __init__(self, net: SimulatedNetwork, name: str):
        self._net = net
        self._name = name
        self.record: PhaseRecord | None = None

    def __enter__(self) -> PhaseRecord:
        self.record = self._net._begin_phase(self._name)
        return self.record

    def __exit__(self, *exc) -> None:
        self._net._end_phase()
