"""Per-run metric collection for the simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TimeBreakdown", "ClusterMetrics"]


@dataclass
class TimeBreakdown:
    """Modeled wall-clock split the way Figure 9 reports it."""

    compute_s: float = 0.0
    communication_s: float = 0.0
    inspection_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.compute_s + self.communication_s + self.inspection_s

    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(
            compute_s=self.compute_s + other.compute_s,
            communication_s=self.communication_s + other.communication_s,
            inspection_s=self.inspection_s + other.inspection_s,
        )


class ClusterMetrics:
    """Collects per-round per-host compute measurements.

    Hosts run sequentially in the simulation; a real cluster runs them
    concurrently, so each BSP round's compute contributes its *maximum*
    per-host time to the modeled wall clock.
    """

    def __init__(self, num_hosts: int):
        if num_hosts <= 0:
            raise ValueError(f"num_hosts must be positive, got {num_hosts}")
        self.num_hosts = num_hosts
        self._rounds: list[np.ndarray] = []
        self._inspection_rounds: list[np.ndarray] = []
        self._current: np.ndarray | None = None
        self._current_inspection: np.ndarray | None = None

    # -- round lifecycle ----------------------------------------------------
    def begin_round(self) -> None:
        if self._current is not None:
            raise RuntimeError("previous round not ended")
        self._current = np.zeros(self.num_hosts)
        self._current_inspection = np.zeros(self.num_hosts)

    def record_compute(self, host: int, seconds: float) -> None:
        if self._current is None:
            raise RuntimeError("no active round")
        if seconds < 0:
            raise ValueError(f"negative time {seconds}")
        self._current[host] += seconds

    def record_inspection(self, host: int, seconds: float) -> None:
        if self._current_inspection is None:
            raise RuntimeError("no active round")
        if seconds < 0:
            raise ValueError(f"negative time {seconds}")
        self._current_inspection[host] += seconds

    def end_round(self) -> None:
        if self._current is None:
            raise RuntimeError("no active round")
        self._rounds.append(self._current)
        self._inspection_rounds.append(self._current_inspection)
        self._current = None
        self._current_inspection = None

    # -- aggregation -----------------------------------------------------------
    @property
    def num_rounds(self) -> int:
        return len(self._rounds)

    def modeled_compute_s(self) -> float:
        """Sum over rounds of the slowest host's compute time."""
        return float(sum(r.max() for r in self._rounds))

    def modeled_inspection_s(self) -> float:
        return float(sum(r.max() for r in self._inspection_rounds))

    def sequential_compute_s(self) -> float:
        """Total measured compute across all hosts (1-host equivalent work)."""
        return float(sum(r.sum() for r in self._rounds))

    def per_host_compute_s(self) -> np.ndarray:
        if not self._rounds:
            return np.zeros(self.num_hosts)
        return np.sum(self._rounds, axis=0)
