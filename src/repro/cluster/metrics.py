"""Per-run metric collection for the simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TimeBreakdown", "ClusterMetrics"]


@dataclass
class TimeBreakdown:
    """Modeled wall-clock split the way Figure 9 reports it.

    ``compute_s`` is *busy* compute — the mean over hosts, summed over
    rounds — and ``wait_s`` is the slack between that and the execution's
    makespan: under BSP it is exactly the time hosts idle at round
    barriers waiting for the slowest host (straggler time), under the
    async engine it is whatever blocking the staleness bound still forces.
    ``compute_s + wait_s`` therefore equals the compute-phase critical
    path (for BSP: the sum over rounds of the per-round max), keeping
    ``total_s`` identical to the pre-wait-bucket breakdown.

    ``recovery_s`` is the time that exists only because faults happened
    (crash detection, checkpoint restore, chunk replay, retransmission
    backoff); it is 0.0 for fault-free runs, keeping their totals
    identical to the pre-fault-model breakdown.
    """

    compute_s: float = 0.0
    communication_s: float = 0.0
    inspection_s: float = 0.0
    recovery_s: float = 0.0
    wait_s: float = 0.0

    @property
    def total_s(self) -> float:
        return (
            self.compute_s
            + self.communication_s
            + self.inspection_s
            + self.recovery_s
            + self.wait_s
        )

    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(
            compute_s=self.compute_s + other.compute_s,
            communication_s=self.communication_s + other.communication_s,
            inspection_s=self.inspection_s + other.inspection_s,
            recovery_s=self.recovery_s + other.recovery_s,
            wait_s=self.wait_s + other.wait_s,
        )


class ClusterMetrics:
    """Collects per-round per-host compute measurements.

    A real cluster runs hosts concurrently, so each BSP round's compute
    contributes its *maximum* per-host time to the modeled wall clock.  The
    trainer feeds this with per-thread CPU time (``time.thread_time``), not
    wall time: whether the simulator executes hosts serially or overlaps
    them on real cores (``GraphWord2Vec(workers=...)``), the recorded
    per-host seconds — and hence every modeled figure derived here — stay
    contention-independent and comparable across executors.
    """

    def __init__(self, num_hosts: int):
        if num_hosts <= 0:
            raise ValueError(f"num_hosts must be positive, got {num_hosts}")
        self.num_hosts = num_hosts
        self._rounds: list[np.ndarray] = []
        self._inspection_rounds: list[np.ndarray] = []
        self._recovery_rounds: list[np.ndarray] = []
        self._current: np.ndarray | None = None
        self._current_inspection: np.ndarray | None = None
        self._current_recovery: np.ndarray | None = None

    # -- round lifecycle ----------------------------------------------------
    def begin_round(self) -> None:
        if self._current is not None:
            raise RuntimeError("previous round not ended")
        self._current = np.zeros(self.num_hosts)
        self._current_inspection = np.zeros(self.num_hosts)
        self._current_recovery = np.zeros(self.num_hosts)

    def record_compute(self, host: int, seconds: float) -> None:
        if self._current is None:
            raise RuntimeError("no active round")
        if seconds < 0:
            raise ValueError(f"negative time {seconds}")
        self._current[host] += seconds

    def record_inspection(self, host: int, seconds: float) -> None:
        if self._current_inspection is None:
            raise RuntimeError("no active round")
        if seconds < 0:
            raise ValueError(f"negative time {seconds}")
        self._current_inspection[host] += seconds

    def record_recovery(self, host: int, seconds: float) -> None:
        """Time ``host`` spent recovering from a fault this round.

        Recovery stalls the round barrier, so like compute it contributes
        its per-round maximum to the modeled wall clock (concurrent
        recoveries of distinct hosts overlap).
        """
        if self._current_recovery is None:
            raise RuntimeError("no active round")
        if seconds < 0:
            raise ValueError(f"negative time {seconds}")
        self._current_recovery[host] += seconds

    def end_round(self) -> None:
        if self._current is None:
            raise RuntimeError("no active round")
        self._rounds.append(self._current)
        self._inspection_rounds.append(self._current_inspection)
        self._recovery_rounds.append(self._current_recovery)
        self._current = None
        self._current_inspection = None
        self._current_recovery = None

    # -- aggregation -----------------------------------------------------------
    @property
    def num_rounds(self) -> int:
        return len(self._rounds)

    @staticmethod
    def _readonly(rounds: list[np.ndarray]) -> tuple[np.ndarray, ...]:
        views = []
        for r in rounds:
            v = r.view()
            v.flags.writeable = False
            views.append(v)
        return tuple(views)

    @property
    def compute_rounds(self) -> tuple[np.ndarray, ...]:
        """Per-round measured compute seconds, one ``(num_hosts,)`` array each.

        Read-only views over completed rounds — the public contract consumed
        by :mod:`repro.cluster.trace` and anything else replaying the
        timeline.
        """
        return self._readonly(self._rounds)

    @property
    def inspection_rounds(self) -> tuple[np.ndarray, ...]:
        """Per-round measured inspection seconds (read-only views)."""
        return self._readonly(self._inspection_rounds)

    @property
    def recovery_rounds(self) -> tuple[np.ndarray, ...]:
        """Per-round modeled fault-recovery seconds (read-only views)."""
        return self._readonly(self._recovery_rounds)

    def modeled_compute_s(self) -> float:
        """Sum over rounds of the slowest host's compute time."""
        return float(sum(r.max() for r in self._rounds))

    def modeled_busy_s(self) -> float:
        """Sum over rounds of the *mean* per-host compute time.

        The busy fraction of the compute critical path: what hosts spend
        actually computing rather than idling at the round barrier.  The
        difference ``modeled_compute_s() - modeled_busy_s()`` is the BSP
        barrier wait (straggler slack) the report's ``wait_s`` bucket
        carries.
        """
        return float(sum(r.mean() for r in self._rounds))

    def modeled_inspection_s(self) -> float:
        return float(sum(r.max() for r in self._inspection_rounds))

    def modeled_recovery_s(self) -> float:
        """Sum over rounds of the slowest host's recovery stall."""
        return float(sum(r.max() for r in self._recovery_rounds))

    def sequential_compute_s(self) -> float:
        """Total measured compute across all hosts (1-host equivalent work)."""
        return float(sum(r.sum() for r in self._rounds))

    def per_host_compute_s(self) -> np.ndarray:
        if not self._rounds:
            return np.zeros(self.num_hosts)
        return np.sum(self._rounds, axis=0)
