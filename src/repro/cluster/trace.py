"""Chrome-trace export of a simulated run's timeline.

Serializes the modeled execution — per-round per-host compute intervals and
the priced communication phases — in the Chrome tracing JSON format, so a
distributed run can be inspected visually in ``chrome://tracing`` /
Perfetto.  Rows ("threads") are hosts; communication appears on a dedicated
row since BSP communication is a global phase.
"""

from __future__ import annotations

import json

from repro.cluster.metrics import ClusterMetrics
from repro.cluster.network import NetworkModel
from repro.gluon.comm import PhaseRecord

__all__ = ["build_chrome_trace", "build_async_chrome_trace", "trace_json"]

_US = 1e6  # trace timestamps are microseconds

#: Below this, a slack interval is measurement noise, not a wait slice.
_WAIT_EPS_S = 1e-12


def build_chrome_trace(
    metrics: ClusterMetrics,
    phase_records: list[PhaseRecord],
    network_model: NetworkModel,
) -> list[dict]:
    """Trace events for one run (complete 'X' events).

    Timeline reconstruction: rounds execute back to back; within a round
    every host's compute starts together (BSP), runs for its measured
    duration, and the round's communication phases follow the slowest
    host.  Phase records are attributed to rounds in order, as the
    synchronizer emits them.
    """
    events: list[dict] = []
    # Public read-only accessors: measured seconds, shape (hosts,) per round.
    per_round = metrics.compute_rounds
    inspections = metrics.inspection_rounds
    recoveries = metrics.recovery_rounds
    records = list(phase_records)
    # Phases per round: total records divided evenly (each round emits the
    # same phase sequence).
    per_round_phases = len(records) // max(len(per_round), 1) if per_round else 0

    clock = 0.0
    record_cursor = 0
    for round_index, compute in enumerate(per_round):
        start = clock
        for host in range(metrics.num_hosts):
            duration = float(compute[host])
            if duration > 0:
                events.append(
                    {
                        "name": f"compute r{round_index}",
                        "ph": "X",
                        "pid": 0,
                        "tid": host,
                        "ts": start * _US,
                        "dur": duration * _US,
                        "cat": "compute",
                    }
                )
            inspect = float(inspections[round_index][host]) if inspections else 0.0
            if inspect > 0:
                events.append(
                    {
                        "name": f"inspect r{round_index}",
                        "ph": "X",
                        "pid": 0,
                        "tid": host,
                        "ts": (start + duration) * _US,
                        "dur": inspect * _US,
                        "cat": "inspection",
                    }
                )
        barrier = start + float(compute.max()) + (
            float(inspections[round_index].max()) if inspections else 0.0
        )
        # Barrier wait: hosts that finished early idle until the slowest
        # host reaches the barrier (the breakdown's ``wait_s`` bucket,
        # made visible per host per round).
        for host in range(metrics.num_hosts):
            busy_end = start + float(compute[host]) + (
                float(inspections[round_index][host]) if inspections else 0.0
            )
            slack = barrier - busy_end
            if slack > _WAIT_EPS_S:
                events.append(
                    {
                        "name": f"wait r{round_index}",
                        "ph": "X",
                        "pid": 0,
                        "tid": host,
                        "ts": busy_end * _US,
                        "dur": slack * _US,
                        "cat": "wait",
                    }
                )
        # Fault recovery stalls the barrier: crashed hosts restore and
        # replay while survivors wait, so the round's communication starts
        # after the slowest recovery.
        recovery = recoveries[round_index] if recoveries else None
        if recovery is not None and recovery.max() > 0:
            for host in range(metrics.num_hosts):
                duration = float(recovery[host])
                if duration > 0:
                    events.append(
                        {
                            "name": f"recover r{round_index}",
                            "ph": "X",
                            "pid": 0,
                            "tid": host,
                            "ts": barrier * _US,
                            "dur": duration * _US,
                            "cat": "recovery",
                        }
                    )
            barrier += float(recovery.max())
        clock = barrier
        for _ in range(per_round_phases):
            if record_cursor >= len(records):
                break
            record = records[record_cursor]
            record_cursor += 1
            duration = network_model.phase_time(record)
            if duration > 0:
                events.append(
                    {
                        "name": record.name,
                        "ph": "X",
                        "pid": 0,
                        "tid": metrics.num_hosts,  # the "network" row
                        "ts": clock * _US,
                        "dur": duration * _US,
                        "cat": "communication",
                        "args": {
                            "bytes": int(record.total_bytes),
                            "messages": int(record.messages),
                        },
                    }
                )
            clock += duration

    # Row labels.
    for host in range(metrics.num_hosts):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": host,
                "args": {"name": f"host {host}"},
            }
        )
    events.append(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": metrics.num_hosts,
            "args": {"name": "network"},
        }
    )
    return events


def build_async_chrome_trace(
    timeline,
    phase_records: list[PhaseRecord],
    network_model: NetworkModel,
) -> list[dict]:
    """Trace events for an async (SSP) run.

    ``timeline`` is the :class:`~repro.dgraph.async_engine.AsyncTimeline`
    a trained ``GraphWord2Vec(engine="async")`` exposes: per-step
    ``(host, round, start_s, dur_s)`` intervals from the measured replay,
    fold times with their phase-record ranges, and recovery spans.
    Unlike BSP, compute slices of different rounds overlap across hosts;
    the slack a host spends blocked on the staleness bound appears as
    ``wait`` slices in the gaps between its consecutive steps.
    """
    events: list[dict] = []
    records = list(phase_records)

    # Per-host step slices, plus wait slices for inter-step slack.
    last_end: dict[int, float] = {}
    for host, round_index, start_s, dur_s in timeline.steps:
        prev = last_end.get(host, 0.0)
        slack = start_s - prev
        if slack > _WAIT_EPS_S:
            events.append(
                {
                    "name": f"wait (staleness bound) before r{round_index}",
                    "ph": "X",
                    "pid": 0,
                    "tid": host,
                    "ts": prev * _US,
                    "dur": slack * _US,
                    "cat": "wait",
                }
            )
        if dur_s > 0:
            events.append(
                {
                    "name": f"compute r{round_index}",
                    "ph": "X",
                    "pid": 0,
                    "tid": host,
                    "ts": start_s * _US,
                    "dur": dur_s * _US,
                    "cat": "compute",
                }
            )
        last_end[host] = max(prev, start_s + dur_s)

    for host, round_index, start_s, dur_s in timeline.recoveries:
        if dur_s > 0:
            events.append(
                {
                    "name": f"recover r{round_index}",
                    "ph": "X",
                    "pid": 0,
                    "tid": host,
                    "ts": start_s * _US,
                    "dur": dur_s * _US,
                    "cat": "recovery",
                }
            )

    # The network row: each fold's phase records play back-to-back
    # starting no earlier than the fold time (folds can outpace the
    # modeled network, which then queues).
    clock = 0.0
    for round_index, fold_s, rec_lo, rec_hi in timeline.folds:
        clock = max(clock, fold_s)
        for record in records[rec_lo:rec_hi]:
            duration = network_model.phase_time(record)
            if duration > 0:
                events.append(
                    {
                        "name": f"{record.name} (fold r{round_index})",
                        "ph": "X",
                        "pid": 0,
                        "tid": timeline.num_hosts,
                        "ts": clock * _US,
                        "dur": duration * _US,
                        "cat": "communication",
                        "args": {
                            "bytes": int(record.total_bytes),
                            "messages": int(record.messages),
                        },
                    }
                )
            clock += duration

    for host in range(timeline.num_hosts):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": host,
                "args": {"name": f"host {host}"},
            }
        )
    events.append(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": timeline.num_hosts,
            "args": {"name": "network"},
        }
    )
    return events


def trace_json(
    metrics: ClusterMetrics,
    phase_records: list[PhaseRecord],
    network_model: NetworkModel,
) -> str:
    """The trace as a JSON string ready for chrome://tracing."""
    return json.dumps(
        {"traceEvents": build_chrome_trace(metrics, phase_records, network_model)}
    )
