"""Run reports combining measured compute with modeled communication."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.faults import FaultReport
from repro.cluster.metrics import ClusterMetrics, TimeBreakdown
from repro.cluster.network import NetworkModel
from repro.gluon.comm import SimulatedNetwork

__all__ = ["DistributedRunReport"]


@dataclass
class DistributedRunReport:
    """Everything the benchmark harness prints about one distributed run."""

    num_hosts: int
    sync_rounds_per_epoch: int
    epochs: int
    plan: str
    combiner: str
    breakdown: TimeBreakdown
    comm_bytes: int
    comm_messages: int
    bytes_by_phase: dict[str, int] = field(default_factory=dict)
    sequential_compute_s: float = 0.0
    pairs_processed: int = 0
    peak_replica_rows: int = 0  # PullModel memory footprint (rows resident)
    #: Itemized fault costs; None when fault injection was not enabled.
    faults: FaultReport | None = None

    @property
    def total_time_s(self) -> float:
        return self.breakdown.total_s

    @classmethod
    def build(
        cls,
        *,
        num_hosts: int,
        sync_rounds_per_epoch: int,
        epochs: int,
        plan: str,
        combiner: str,
        metrics: ClusterMetrics,
        network: SimulatedNetwork,
        model: NetworkModel,
        pairs_processed: int = 0,
        peak_replica_rows: int = 0,
        fault_report: FaultReport | None = None,
        makespan_s: float | None = None,
    ) -> "DistributedRunReport":
        """``makespan_s`` overrides the compute-phase critical path.

        ``None`` (BSP) uses the barrier makespan — the sum over rounds of
        the slowest host — which is exact for a lock-step loop.  The async
        engine passes its replayed event-order makespan instead, so the
        slack bought by bounded staleness shows up as a smaller ``wait_s``
        rather than being invisible inside per-round maxima.
        """
        # Restore traffic (phases named "recovery:*") is a fault cost, not
        # steady-state communication — price it into the recovery bucket so
        # a fault-free run's communication_s is unchanged by this split.
        regular = [r for r in network.phase_records if not r.name.startswith("recovery")]
        restore = [r for r in network.phase_records if r.name.startswith("recovery")]
        comm_s = model.total_time(regular)
        # Recovery = barrier stalls recorded per round (crash detection,
        # restore, replay) plus restore traffic and retransmission backoff.
        recovery_s = metrics.modeled_recovery_s() + model.total_time(restore)
        if fault_report is not None:
            recovery_s += fault_report.backoff_s
        # Split the compute critical path into busy time (mean over hosts)
        # and barrier/staleness wait, so straggler slack is attributable.
        busy_s = metrics.modeled_busy_s()
        if makespan_s is None:
            makespan_s = metrics.modeled_compute_s()
        breakdown = TimeBreakdown(
            compute_s=busy_s,
            communication_s=comm_s,
            inspection_s=metrics.modeled_inspection_s(),
            recovery_s=recovery_s,
            wait_s=max(0.0, makespan_s - busy_s),
        )
        # Group phase bytes by kind (reduce/broadcast/request), dropping the
        # per-field suffix for readability.
        by_phase: dict[str, int] = {}
        for name, nbytes in sorted(network.stats.bytes_by_phase.items()):
            kind = name.split(":", 1)[0]
            by_phase[kind] = by_phase.get(kind, 0) + nbytes
        return cls(
            num_hosts=num_hosts,
            sync_rounds_per_epoch=sync_rounds_per_epoch,
            epochs=epochs,
            plan=plan,
            combiner=combiner,
            breakdown=breakdown,
            comm_bytes=network.total_bytes,
            comm_messages=network.total_messages,
            bytes_by_phase=by_phase,
            sequential_compute_s=metrics.sequential_compute_s(),
            pairs_processed=pairs_processed,
            peak_replica_rows=peak_replica_rows,
            faults=fault_report,
        )
