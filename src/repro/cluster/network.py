"""α–β network cost model.

A bulk-synchronous communication phase among H hosts costs

    T = α · ceil(log2 H) + max_h(bytes_sent_h, bytes_recv_h) / β

— a startup/latency term with the logarithmic depth of a well-implemented
collective, plus the busiest endpoint's serialization time.  ``β`` defaults
to a bandwidth *scaled to the workload scale-down* of this reproduction: the
paper's corpora are ~3 orders of magnitude larger than the synthetic ones,
so charging full 56 Gb/s InfiniBand to megabyte-scale models would make
communication invisibly cheap and flatten the very effects Figures 8/9
measure.  The default keeps the compute:communication ratio in the regime
the paper reports at 32 hosts; both parameters are explicit so users can
re-calibrate (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from repro.gluon.comm import PhaseRecord

__all__ = ["NetworkModel", "INFINIBAND_56G", "SCALED_DEFAULT"]


@dataclass(frozen=True)
class NetworkModel:
    """Latency (seconds) + bandwidth (bytes/second) phase-time model."""

    latency_s: float = 20e-6
    # Calibrated so the 32-host communication:computation ratio of the
    # scaled-down workloads matches the paper's Figure 9 regime (~0.2-0.5),
    # which puts the 32-host strong-scaling speedup in the paper's reported
    # 8.5-10.5x band.  See EXPERIMENTS.md "Network model calibration".
    bandwidth_Bps: float = 8.0e8

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"negative latency {self.latency_s}")
        if self.bandwidth_Bps <= 0:
            raise ValueError(f"non-positive bandwidth {self.bandwidth_Bps}")

    def phase_time(self, record: PhaseRecord) -> float:
        """Modeled wall-clock of one bulk-synchronous phase."""
        if record.messages == 0:
            return 0.0
        depth = max(1, math.ceil(math.log2(max(record.num_hosts, 2))))
        return self.latency_s * depth + record.max_host_bytes() / self.bandwidth_Bps

    def total_time(self, records: list[PhaseRecord]) -> float:
        return float(sum(self.phase_time(r) for r in records))


#: The paper's fabric at face value (56 Gb/s, ~70% achievable efficiency).
INFINIBAND_56G = NetworkModel(latency_s=2e-6, bandwidth_Bps=56e9 / 8 * 0.7)

#: Default, calibrated to this reproduction's ~10^3 x smaller workloads.
SCALED_DEFAULT = NetworkModel()
