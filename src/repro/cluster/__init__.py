"""Simulated-cluster timing: network cost model and per-run reports.

The simulated hosts execute one after another on a single core; their
*algorithmic* behaviour (what each host computes and communicates) is exactly
the paper's BSP semantics, and the wall-clock a real cluster would see is
reconstructed from (a) measured per-host compute seconds, taking the maximum
across hosts per round, and (b) an α–β model over the exact per-phase byte
counts recorded by :class:`repro.gluon.comm.SimulatedNetwork`.  See DESIGN.md
§3 for why this substitution preserves the paper's claims.
"""

from repro.cluster.faults import (
    CrashEvent,
    FaultConfig,
    FaultReport,
    FaultSchedule,
    TransientFaultInjector,
    UnrecoverableFaultError,
    parse_fault_spec,
)
from repro.cluster.metrics import ClusterMetrics, TimeBreakdown
from repro.cluster.network import NetworkModel
from repro.cluster.simulator import DistributedRunReport
from repro.cluster.trace import build_chrome_trace, trace_json

__all__ = [
    "NetworkModel",
    "ClusterMetrics",
    "TimeBreakdown",
    "DistributedRunReport",
    "build_chrome_trace",
    "trace_json",
    "FaultConfig",
    "FaultSchedule",
    "CrashEvent",
    "FaultReport",
    "TransientFaultInjector",
    "UnrecoverableFaultError",
    "parse_fault_spec",
]
