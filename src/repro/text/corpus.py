"""Corpus container and per-host sharding (paper §4.1–4.2).

A :class:`Corpus` is an encoded training corpus: a vocabulary plus sentences
of node ids.  The distributed trainer partitions it into roughly equal
*contiguous* chunks of sentences, one per host — mirroring the paper's
logical partitioning of the corpus file that each host reads in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
import io
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.text.vocab import Vocabulary

__all__ = ["Corpus"]


@dataclass
class Corpus:
    """Encoded sentences over a shared vocabulary."""

    vocabulary: Vocabulary
    sentences: list[np.ndarray]

    def __post_init__(self) -> None:
        V = len(self.vocabulary)
        for i, s in enumerate(self.sentences):
            s = np.asarray(s, dtype=np.int64)
            if s.ndim != 1:
                raise ValueError(f"sentence {i} is not 1-D")
            if s.size and (s.min() < 0 or s.max() >= V):
                raise ValueError(f"sentence {i} has out-of-vocabulary ids")
            self.sentences[i] = s

    # -- construction --------------------------------------------------------
    @classmethod
    def from_token_sentences(
        cls,
        sentences: Iterable[Sequence[str]],
        min_count: int = 1,
        max_sentence_length: int | None = None,
    ) -> "Corpus":
        """Build vocabulary and encode in the two passes of Algorithm 1."""
        token_sentences = [list(s) for s in sentences]
        vocab = Vocabulary.from_sentences(token_sentences, min_count=min_count)
        encoded = [vocab.encode(s) for s in token_sentences]
        encoded = [s for s in encoded if s.size]
        corpus = cls(vocab, encoded)
        if max_sentence_length is not None:
            corpus = corpus.split_long_sentences(max_sentence_length)
        return corpus

    @classmethod
    def from_text(cls, text: str, min_count: int = 1) -> "Corpus":
        """Whitespace-tokenized, newline-separated sentences."""
        sentences = [line.split() for line in text.splitlines() if line.strip()]
        return cls.from_token_sentences(sentences, min_count=min_count)

    @classmethod
    def from_file(
        cls,
        path,
        min_count: int = 1,
        tokenize: bool = False,
        max_sentence_length: int | None = None,
    ) -> "Corpus":
        """Two streaming passes over a sentence-per-line text file.

        Mirrors Algorithm 1's corpus handling: the file is never loaded
        whole — pass one streams tokens to build the vocabulary (dropping
        words below ``min_count``), pass two encodes sentences to id
        arrays.  ``tokenize=True`` applies
        :func:`repro.text.tokenize.simple_tokenize` instead of a plain
        whitespace split.
        """
        from repro.text.tokenize import simple_tokenize

        split = simple_tokenize if tokenize else str.split

        def stream():
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    tokens = split(line)
                    if tokens:
                        yield tokens

        vocab = Vocabulary.from_sentences(stream(), min_count=min_count)
        encoded = [vocab.encode(tokens) for tokens in stream()]
        corpus = cls(vocab, [s for s in encoded if s.size])
        if max_sentence_length is not None:
            corpus = corpus.split_long_sentences(max_sentence_length)
        return corpus

    def to_text(self) -> str:
        """Inverse of :meth:`from_text` (up to min_count-dropped words)."""
        buf = io.StringIO()
        for sentence in self.sentences:
            buf.write(" ".join(self.vocabulary.decode(sentence)))
            buf.write("\n")
        return buf.getvalue()

    # -- statistics --------------------------------------------------------
    @property
    def num_sentences(self) -> int:
        return len(self.sentences)

    @property
    def num_tokens(self) -> int:
        return int(sum(len(s) for s in self.sentences))

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.sentences)

    # -- transformations -------------------------------------------------------
    def split_long_sentences(self, max_length: int) -> "Corpus":
        """Split sentences longer than ``max_length`` (paper uses 10K)."""
        if max_length <= 0:
            raise ValueError(f"max_length must be positive, got {max_length}")
        out: list[np.ndarray] = []
        for s in self.sentences:
            if len(s) <= max_length:
                out.append(s)
            else:
                out.extend(s[i : i + max_length] for i in range(0, len(s), max_length))
        return Corpus(self.vocabulary, out)

    def shard(self, num_hosts: int) -> list[list[np.ndarray]]:
        """Contiguous sentence chunks, balanced by token count.

        Greedy prefix split: each host receives the next sentences until its
        share of the total token count is met, so hosts end up with nearly
        equal work while preserving corpus order (the paper's contiguous
        file chunks).
        """
        if num_hosts <= 0:
            raise ValueError(f"num_hosts must be positive, got {num_hosts}")
        total = self.num_tokens
        shards: list[list[np.ndarray]] = [[] for _ in range(num_hosts)]
        target = total / num_hosts
        host = 0
        consumed = 0.0
        for sentence in self.sentences:
            # Move to the next host once this one's quota is filled (never
            # past the last host).
            while host < num_hosts - 1 and consumed >= target * (host + 1):
                host += 1
            shards[host].append(sentence)
            consumed += len(sentence)
        return shards

    def __repr__(self) -> str:
        return (
            f"Corpus(sentences={self.num_sentences}, tokens={self.num_tokens}, "
            f"vocab={len(self.vocabulary)})"
        )
