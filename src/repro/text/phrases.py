"""Phrase detection (word2phrase.c; Mikolov et al. 2013 §4).

The word2vec toolchain pre-processes corpora by merging frequent
collocations into single tokens ("new york" -> "new_york") so they get
their own vectors.  A bigram (a, b) is merged when

    score(a, b) = (count(ab) − δ) / (count(a) · count(b)) > threshold

with discount δ suppressing rare accidental co-occurrences.  Multiple
passes build longer phrases ("new_york_times").  This implementation works
on tokenized sentences and is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["PhraseModel", "learn_phrases", "apply_phrases"]

JOINER = "_"


@dataclass(frozen=True)
class PhraseModel:
    """Learned bigram merges and their scores."""

    phrases: dict[str, float]  # "a b" -> score (only accepted merges)
    delta: float
    threshold: float

    def __len__(self) -> int:
        return len(self.phrases)

    def __contains__(self, bigram: tuple[str, str]) -> bool:
        return f"{bigram[0]} {bigram[1]}" in self.phrases


def learn_phrases(
    sentences: Iterable[Sequence[str]],
    delta: float = 5.0,
    threshold: float = 1e-4,
    min_count: int = 2,
) -> PhraseModel:
    """One pass of word2phrase scoring over tokenized sentences.

    ``threshold`` is on the *normalized* score — word2phrase.c uses raw
    counts with a corpus-size-dependent threshold; dividing by the total
    token count makes the knob corpus-size-independent here.
    """
    if delta < 0:
        raise ValueError(f"delta must be >= 0, got {delta}")
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    if min_count < 1:
        raise ValueError(f"min_count must be >= 1, got {min_count}")
    unigrams: dict[str, int] = {}
    bigrams: dict[tuple[str, str], int] = {}
    total = 0
    for sentence in sentences:
        previous: str | None = None
        for token in sentence:
            unigrams[token] = unigrams.get(token, 0) + 1
            total += 1
            if previous is not None:
                key = (previous, token)
                bigrams[key] = bigrams.get(key, 0) + 1
            previous = token
    if total == 0:
        raise ValueError("empty corpus")
    phrases: dict[str, float] = {}
    for (a, b), count in bigrams.items():
        if count < min_count:
            continue
        score = (count - delta) * total / (unigrams[a] * unigrams[b])
        # Normalize by total so the threshold is corpus-size independent;
        # the extra `total` factor mirrors word2phrase.c's scaling.
        if score / total > threshold:
            phrases[f"{a} {b}"] = score / total
    return PhraseModel(phrases=phrases, delta=delta, threshold=threshold)


def apply_phrases(
    sentences: Iterable[Sequence[str]],
    model: PhraseModel,
) -> list[list[str]]:
    """Greedy left-to-right merge of accepted bigrams.

    Each token participates in at most one merge per pass (as in
    word2phrase.c); run :func:`learn_phrases` + :func:`apply_phrases`
    again for longer phrases.
    """
    out: list[list[str]] = []
    for sentence in sentences:
        merged: list[str] = []
        i = 0
        n = len(sentence)
        while i < n:
            if i + 1 < n and f"{sentence[i]} {sentence[i + 1]}" in model.phrases:
                merged.append(f"{sentence[i]}{JOINER}{sentence[i + 1]}")
                i += 2
            else:
                merged.append(sentence[i])
                i += 1
        out.append(merged)
    return out
