"""Synthetic corpora with planted analogy structure.

The paper trains on 1-billion / news / wiki (3.7–21 GB downloads) and
evaluates with the word2vec question-words analogy task.  Without network
access we substitute corpora *generated* to contain exactly the statistical
structure that task measures: relation families whose word pairs share a
consistent linear offset in any good SGNS embedding.

Generative model.  A relation family (say country–capital) has word pairs
(a_i, b_i), two role-marker word sets M_a, M_b (function-word-like contexts
that signal the role), and per-pair topic words T_i that bind a_i and b_i to
each other.  Sentences embed *phrases*

    [m_a, a_i, t_i, b_i, m_b]      m_a ∈ M_a, t_i ∈ T_i, m_b ∈ M_b

between runs of Zipf-distributed filler words.  With a symmetric window the
embedding of every a_i mixes {M_a, T_i} contexts and b_i mixes {M_b, T_i},
so b_i − a_i ≈ (direction of M_b − direction of M_a), constant within a
family — precisely what 3CosAdd analogies probe.  Syntactic families use the
same mechanics but pair a base word with a suffixed form (walk/walking) so
the evaluation's semantic/syntactic split is meaningful.

The default family roster mirrors question-words.txt's broad structure:
5 semantic + 9 syntactic categories.
"""

from __future__ import annotations

from dataclasses import dataclass
import itertools
from typing import Iterator

import numpy as np

from repro.text.corpus import Corpus
from repro.util.rng import default_rng

__all__ = [
    "RelationFamily",
    "SyntheticCorpusSpec",
    "AnalogyQuestion",
    "AnalogyQuestionSet",
    "default_families",
    "generate_corpus",
]

SEMANTIC = "semantic"
SYNTACTIC = "syntactic"


@dataclass(frozen=True)
class RelationFamily:
    """One analogy category: pairs (a_i, b_i) sharing a relation."""

    name: str
    kind: str  # SEMANTIC or SYNTACTIC
    pairs: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        if self.kind not in (SEMANTIC, SYNTACTIC):
            raise ValueError(f"kind must be semantic/syntactic, got {self.kind!r}")
        if len(self.pairs) < 2:
            raise ValueError(f"family {self.name!r} needs >= 2 pairs for analogies")
        flat = [w for pair in self.pairs for w in pair]
        if len(set(flat)) != len(flat):
            raise ValueError(f"family {self.name!r} has duplicate words")


# The 14 question-words.txt-like categories: (name, kind, a-prefix, b-suffix
# style).  Word forms are systematic ("walk03" / "walk03ing") so syntactic
# families genuinely share surface morphology.
_FAMILY_TEMPLATES: tuple[tuple[str, str, str, str], ...] = (
    ("capital-common", SEMANTIC, "country", "capital"),
    ("capital-world", SEMANTIC, "nation", "city"),
    ("currency", SEMANTIC, "land", "money"),
    ("city-in-state", SEMANTIC, "town", "state"),
    ("family", SEMANTIC, "man", "woman"),
    ("adjective-adverb", SYNTACTIC, "calm", "ly"),
    ("opposite", SYNTACTIC, "aware", "un"),
    ("comparative", SYNTACTIC, "great", "er"),
    ("superlative", SYNTACTIC, "big", "est"),
    ("present-participle", SYNTACTIC, "walk", "ing"),
    ("nationality-adjective", SYNTACTIC, "spain", "ish"),
    ("past-tense", SYNTACTIC, "dance", "ed"),
    ("plural", SYNTACTIC, "banana", "s"),
    ("plural-verbs", SYNTACTIC, "eat", "es"),
)


def default_families(pairs_per_family: int = 12) -> tuple[RelationFamily, ...]:
    """The 14-category roster with systematically generated word pairs."""
    if pairs_per_family < 2:
        raise ValueError("need at least 2 pairs per family")
    families = []
    for name, kind, stem_a, suffix in _FAMILY_TEMPLATES:
        if kind == SEMANTIC:
            pairs = tuple(
                (f"{stem_a}{i:02d}", f"{suffix}{i:02d}")
                for i in range(pairs_per_family)
            )
        else:
            pairs = tuple(
                (f"{stem_a}{i:02d}", f"{stem_a}{i:02d}{suffix}")
                for i in range(pairs_per_family)
            )
        families.append(RelationFamily(name=name, kind=kind, pairs=pairs))
    return tuple(families)


@dataclass(frozen=True)
class AnalogyQuestion:
    """a : b :: c : expected, tagged with its category."""

    family: str
    kind: str
    a: str
    b: str
    c: str
    expected: str


@dataclass
class AnalogyQuestionSet:
    """All questions, grouped on demand by family or kind."""

    questions: list[AnalogyQuestion]

    def __len__(self) -> int:
        return len(self.questions)

    def __iter__(self) -> Iterator[AnalogyQuestion]:
        return iter(self.questions)

    def by_kind(self, kind: str) -> list[AnalogyQuestion]:
        return [q for q in self.questions if q.kind == kind]

    def by_family(self, family: str) -> list[AnalogyQuestion]:
        return [q for q in self.questions if q.family == family]

    @property
    def families(self) -> list[str]:
        seen: dict[str, None] = {}
        for q in self.questions:
            seen.setdefault(q.family, None)
        return list(seen)


@dataclass(frozen=True)
class SyntheticCorpusSpec:
    """Knobs of the generator; presets live in repro.experiments.datasets."""

    name: str = "synthetic"
    num_tokens: int = 200_000
    pairs_per_family: int = 12
    families: tuple[RelationFamily, ...] | None = None  # default roster if None
    markers_per_role: int = 6
    topics_per_pair: int = 3
    filler_vocab: int = 1_000
    zipf_exponent: float = 1.05
    filler_run_mean: float = 2.0  # mean filler words between phrases
    phrases_per_sentence: tuple[int, int] = (1, 3)  # inclusive range
    questions_per_family: int = 40

    def resolve_families(self) -> tuple[RelationFamily, ...]:
        return self.families if self.families is not None else default_families(
            self.pairs_per_family
        )


def _marker_words(family: RelationFamily, role: str, count: int) -> list[str]:
    return [f"{family.name}.{role}{j}" for j in range(count)]


def _topic_words(family: RelationFamily, pair_index: int, count: int) -> list[str]:
    return [f"{family.name}.t{pair_index}.{j}" for j in range(count)]


def generate_corpus(
    spec: SyntheticCorpusSpec,
    seed: int | None = None,
) -> tuple[Corpus, AnalogyQuestionSet]:
    """Generate (corpus, analogy questions) for ``spec``; deterministic in seed."""
    rng = default_rng(seed)
    families = spec.resolve_families()
    if spec.num_tokens <= 0:
        raise ValueError("num_tokens must be positive")

    markers_a = {f.name: _marker_words(f, "ma", spec.markers_per_role) for f in families}
    markers_b = {f.name: _marker_words(f, "mb", spec.markers_per_role) for f in families}
    topics = {
        (f.name, i): _topic_words(f, i, spec.topics_per_pair)
        for f in families
        for i in range(len(f.pairs))
    }
    fillers = [f"w{k}" for k in range(spec.filler_vocab)]
    ranks = np.arange(1, spec.filler_vocab + 1, dtype=np.float64)
    filler_p = ranks ** (-spec.zipf_exponent)
    filler_p /= filler_p.sum()

    def draw_fillers(n: int) -> list[str]:
        idx = rng.choice(spec.filler_vocab, size=n, p=filler_p)
        return [fillers[i] for i in idx]

    lo, hi = spec.phrases_per_sentence
    if lo < 1 or hi < lo:
        raise ValueError(f"bad phrases_per_sentence range {spec.phrases_per_sentence}")

    sentences: list[list[str]] = []
    tokens = 0
    while tokens < spec.num_tokens:
        fam = families[int(rng.integers(len(families)))]
        n_phrases = int(rng.integers(lo, hi + 1))
        sentence: list[str] = []
        sentence.extend(draw_fillers(int(rng.poisson(spec.filler_run_mean))))
        for _ in range(n_phrases):
            i = int(rng.integers(len(fam.pairs)))
            a, b = fam.pairs[i]
            phrase = [
                markers_a[fam.name][int(rng.integers(spec.markers_per_role))],
                a,
                topics[(fam.name, i)][int(rng.integers(spec.topics_per_pair))],
                b,
                markers_b[fam.name][int(rng.integers(spec.markers_per_role))],
            ]
            sentence.extend(phrase)
            sentence.extend(draw_fillers(int(rng.poisson(spec.filler_run_mean))))
        sentences.append(sentence)
        tokens += len(sentence)

    corpus = Corpus.from_token_sentences(sentences)

    questions: list[AnalogyQuestion] = []
    for fam in families:
        all_ordered = list(itertools.permutations(range(len(fam.pairs)), 2))
        if len(all_ordered) > spec.questions_per_family:
            chosen = rng.choice(len(all_ordered), size=spec.questions_per_family, replace=False)
            selected = [all_ordered[int(c)] for c in chosen]
        else:
            selected = all_ordered
        for i, j in selected:
            a_i, b_i = fam.pairs[i]
            a_j, b_j = fam.pairs[j]
            questions.append(
                AnalogyQuestion(
                    family=fam.name, kind=fam.kind, a=a_i, b=b_i, c=a_j, expected=b_j
                )
            )
    return corpus, AnalogyQuestionSet(questions)
