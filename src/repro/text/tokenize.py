"""Minimal text normalization for user-supplied corpora.

The reproduction's synthetic corpora are pre-tokenized; for real text we
provide the normalization word2vec.c's demo scripts apply: lowercase,
punctuation stripped to spaces, whitespace-split.  Deliberately simple and
dependency-free — serious pipelines should tokenize upstream.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

__all__ = ["simple_tokenize", "sentences_from_lines"]

_NON_WORD = re.compile(r"[^\w']+", flags=re.UNICODE)


def simple_tokenize(text: str) -> list[str]:
    """Lowercase, split on non-word characters, drop empties."""
    return [token for token in _NON_WORD.split(text.lower()) if token]


def sentences_from_lines(lines: Iterable[str]) -> Iterator[list[str]]:
    """Tokenize an iterable of lines, skipping empty results."""
    for line in lines:
        tokens = simple_tokenize(line)
        if tokens:
            yield tokens
