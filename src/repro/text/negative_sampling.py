"""Negative sampling from the unigram^0.75 distribution.

Skip-Gram with negative sampling draws "noise" words with probability
proportional to count(w)^0.75 (Mikolov et al. 2013).  word2vec.c uses a
100M-entry lookup table; we implement Walker's alias method instead — exact
sampling in O(1) per draw with O(V) setup, no quantization error.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UnigramTable", "build_alias_table"]

DEFAULT_POWER = 0.75


def build_alias_table(probabilities: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Walker alias table for a discrete distribution.

    Returns ``(prob, alias)``: draw ``i`` uniform, ``u`` uniform in [0,1);
    the sample is ``i`` if ``u < prob[i]`` else ``alias[i]``.
    """
    p = np.asarray(probabilities, dtype=np.float64)
    if p.ndim != 1 or p.size == 0:
        raise ValueError("probabilities must be a non-empty 1-D array")
    if (p < 0).any():
        raise ValueError("negative probability")
    total = p.sum()
    if total <= 0:
        raise ValueError("probabilities sum to zero")
    n = len(p)
    scaled = p * (n / total)
    prob = np.ones(n, dtype=np.float64)
    alias = np.arange(n, dtype=np.int64)
    small = [i for i in range(n) if scaled[i] < 1.0]
    large = [i for i in range(n) if scaled[i] >= 1.0]
    while small and large:
        s = small.pop()
        l = large.pop()
        prob[s] = scaled[s]
        alias[s] = l
        scaled[l] = scaled[l] - (1.0 - scaled[s])
        (small if scaled[l] < 1.0 else large).append(l)
    # Leftovers are exactly-1 columns (up to roundoff).
    for i in small + large:
        prob[i] = 1.0
        alias[i] = i
    return prob, alias


class UnigramTable:
    """Sampler over node ids with probability ∝ count^power."""

    def __init__(self, counts: np.ndarray, power: float = DEFAULT_POWER):
        counts = np.asarray(counts, dtype=np.float64)
        if counts.ndim != 1 or counts.size == 0:
            raise ValueError("counts must be a non-empty 1-D array")
        if (counts < 0).any():
            raise ValueError("negative count")
        weights = np.power(counts, power, where=counts > 0, out=np.zeros_like(counts))
        if weights.sum() <= 0:
            raise ValueError("all counts are zero")
        self.power = float(power)
        self.probabilities = weights / weights.sum()
        self._prob, self._alias = build_alias_table(self.probabilities)

    def __len__(self) -> int:
        return len(self.probabilities)

    def draw(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> np.ndarray:
        """Sample node ids with the table's distribution; vectorized."""
        shape = (size,) if isinstance(size, int) else tuple(size)
        n = len(self.probabilities)
        idx = rng.integers(0, n, size=shape)
        u = rng.random(size=shape)
        take_alias = u >= self._prob[idx]
        out = np.where(take_alias, self._alias[idx], idx)
        return out.astype(np.int64)
