"""Text substrate: vocabulary, corpora, sampling.

Everything Word2Vec needs below the model: streaming vocabulary
construction with hash-based node ids (paper §4.2), frequent-word
subsampling (Mikolov et al. 2013), unigram^0.75 negative sampling with an
alias table, corpus containers with per-host contiguous sharding, and the
synthetic corpus generator that substitutes for the paper's 1-billion /
news / wiki datasets (see DESIGN.md §3).
"""

from repro.text.corpus import Corpus
from repro.text.negative_sampling import UnigramTable
from repro.text.phrases import PhraseModel, apply_phrases, learn_phrases
from repro.text.synthetic import (
    AnalogyQuestion,
    AnalogyQuestionSet,
    RelationFamily,
    SyntheticCorpusSpec,
    generate_corpus,
)
from repro.text.tokenize import simple_tokenize
from repro.text.topics import TopicCorpusSpec, generate_topic_corpus, topic_coherence
from repro.text.vocab import Vocabulary

__all__ = [
    "Vocabulary",
    "Corpus",
    "UnigramTable",
    "PhraseModel",
    "learn_phrases",
    "apply_phrases",
    "simple_tokenize",
    "RelationFamily",
    "SyntheticCorpusSpec",
    "AnalogyQuestion",
    "AnalogyQuestionSet",
    "generate_corpus",
    "TopicCorpusSpec",
    "generate_topic_corpus",
    "topic_coherence",
]
