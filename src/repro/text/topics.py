"""Topic-mixture corpora (an LDA-style generative model).

A second synthetic data substrate, complementary to the phrase-based
analogy generator: documents are drawn from a Dirichlet mixture of topics,
each topic owning a characteristic vocabulary.  Embeddings trained on such
corpora should place same-topic words together — evaluated with
:func:`topic_coherence` (same metric family as the SBM community
separation).  Useful for similarity-flavored experiments where analogy
structure is not the point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.text.corpus import Corpus
from repro.util.rng import default_rng

__all__ = ["TopicCorpusSpec", "generate_topic_corpus", "topic_coherence"]


@dataclass(frozen=True)
class TopicCorpusSpec:
    num_topics: int = 5
    words_per_topic: int = 40
    shared_vocab: int = 200  # topic-neutral filler words
    num_documents: int = 800
    document_length: int = 30
    #: Dirichlet concentration of per-document topic mixtures; small values
    #: make documents nearly single-topic (strong signal).
    concentration: float = 0.1
    #: Probability a token comes from the shared filler vocabulary.
    filler_rate: float = 0.3

    def __post_init__(self) -> None:
        if self.num_topics < 2:
            raise ValueError("need >= 2 topics")
        if self.words_per_topic < 2:
            raise ValueError("need >= 2 words per topic")
        if self.shared_vocab < 0 or self.num_documents < 1 or self.document_length < 2:
            raise ValueError("invalid corpus sizes")
        if self.concentration <= 0:
            raise ValueError("concentration must be positive")
        if not 0 <= self.filler_rate < 1:
            raise ValueError(f"filler_rate must be in [0, 1), got {self.filler_rate}")


def _topic_word(topic: int, index: int) -> str:
    return f"t{topic}w{index}"


def generate_topic_corpus(
    spec: TopicCorpusSpec = TopicCorpusSpec(),
    seed: int | None = None,
) -> tuple[Corpus, dict[str, int]]:
    """Generate (corpus, word -> topic map).  Filler words map to -1."""
    rng = default_rng(seed)
    topic_words = [
        [_topic_word(t, i) for i in range(spec.words_per_topic)]
        for t in range(spec.num_topics)
    ]
    fillers = [f"f{i}" for i in range(spec.shared_vocab)]
    alpha = np.full(spec.num_topics, spec.concentration)

    sentences: list[list[str]] = []
    for _ in range(spec.num_documents):
        mixture = rng.dirichlet(alpha)
        tokens: list[str] = []
        for _ in range(spec.document_length):
            if spec.shared_vocab and rng.random() < spec.filler_rate:
                tokens.append(fillers[int(rng.integers(spec.shared_vocab))])
            else:
                topic = int(rng.choice(spec.num_topics, p=mixture))
                words = topic_words[topic]
                tokens.append(words[int(rng.integers(len(words)))])
        sentences.append(tokens)

    labels = {
        word: t for t, words in enumerate(topic_words) for word in words
    }
    labels.update({f: -1 for f in fillers})
    corpus = Corpus.from_token_sentences(sentences)
    return corpus, labels


def topic_coherence(
    embedding: np.ndarray,
    vocabulary,
    labels: dict[str, int],
) -> float:
    """Mean same-topic cosine minus mean cross-topic cosine.

    Only topic words (label >= 0) present in the vocabulary participate.
    Positive and large when the embedding recovers the topics.
    """
    words = [w for w, t in labels.items() if t >= 0 and w in vocabulary]
    if len(words) < 4:
        raise ValueError("need at least 4 in-vocabulary topic words")
    ids = np.array([vocabulary.id_of(w) for w in words])
    topics = np.array([labels[w] for w in words])
    vectors = np.asarray(embedding, dtype=np.float64)[ids]
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    vectors = vectors / np.where(norms > 0, norms, 1.0)
    sims = vectors @ vectors.T
    same = topics[:, None] == topics[None, :]
    off_diag = ~np.eye(len(words), dtype=bool)
    intra = sims[same & off_diag]
    inter = sims[~same]
    if intra.size == 0 or inter.size == 0:
        raise ValueError("need at least two topics with two words each")
    return float(intra.mean() - inter.mean())
