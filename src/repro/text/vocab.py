"""Vocabulary construction (paper §4.2).

All hosts stream the corpus once to find unique words and their frequencies.
Words map to node ids through a hash function that is identical on every
host (we use FNV-1a, with ties broken by the word itself), so hosts agree on
the graph's node numbering without communicating.  The vocabulary also
precomputes the Mikolov frequent-word subsampling keep-probabilities:

    p_keep(w) = (sqrt(f/t) + 1) * t / f      for f = freq(w)/total > t

with threshold ``t`` (1e-4 in the paper's configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.util.rng import hash64

__all__ = ["Vocabulary"]


@dataclass(frozen=True)
class _VocabEntry:
    word: str
    count: int
    node_id: int


class Vocabulary:
    """Immutable word <-> node-id mapping with counts and subsampling.

    Node ids are assigned by ascending ``(fnv1a(word), word)`` — a pure
    function of the word set, independent of insertion or corpus order, so
    every host derives the same ids (the paper's shared hash function).
    """

    def __init__(self, counts: Mapping[str, int]):
        if not counts:
            raise ValueError("empty vocabulary")
        for word, count in counts.items():
            if count <= 0:
                raise ValueError(f"non-positive count for {word!r}: {count}")
        ordered = sorted(counts, key=lambda w: (hash64(w), w))
        self._words: list[str] = ordered
        self._ids: dict[str, int] = {w: i for i, w in enumerate(ordered)}
        self._counts = np.array([counts[w] for w in ordered], dtype=np.int64)
        self._total = int(self._counts.sum())
        self._keep_prob: np.ndarray | None = None
        self._keep_threshold: float | None = None

    # -- construction -----------------------------------------------------
    @classmethod
    def from_sentences(
        cls,
        sentences: Iterable[Sequence[str]],
        min_count: int = 1,
    ) -> "Vocabulary":
        """One streaming pass over tokenized sentences; drops rare words."""
        counts: dict[str, int] = {}
        for sentence in sentences:
            for token in sentence:
                counts[token] = counts.get(token, 0) + 1
        if min_count > 1:
            counts = {w: c for w, c in counts.items() if c >= min_count}
        if not counts:
            raise ValueError(f"no words survive min_count={min_count}")
        return cls(counts)

    # -- lookups ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._words)

    def __contains__(self, word: str) -> bool:
        return word in self._ids

    def __iter__(self) -> Iterator[str]:
        return iter(self._words)

    def id_of(self, word: str) -> int:
        try:
            return self._ids[word]
        except KeyError:
            raise KeyError(f"word {word!r} not in vocabulary") from None

    def word_of(self, node_id: int) -> str:
        if not 0 <= node_id < len(self._words):
            raise IndexError(f"node id {node_id} out of range")
        return self._words[node_id]

    def encode(self, tokens: Sequence[str], skip_unknown: bool = True) -> np.ndarray:
        """Token strings -> node-id array; unknown words skipped or raised."""
        if skip_unknown:
            ids = [self._ids[t] for t in tokens if t in self._ids]
        else:
            ids = [self.id_of(t) for t in tokens]
        return np.array(ids, dtype=np.int64)

    def decode(self, ids: Sequence[int] | np.ndarray) -> list[str]:
        return [self.word_of(int(i)) for i in ids]

    # -- statistics -----------------------------------------------------------
    @property
    def counts(self) -> np.ndarray:
        """Occurrence count per node id (read-only view)."""
        view = self._counts.view()
        view.flags.writeable = False
        return view

    @property
    def total_words(self) -> int:
        """Total training-word occurrences (Table 1's 'Training Words')."""
        return self._total

    def frequency(self, word: str) -> float:
        return float(self._counts[self.id_of(word)]) / self._total

    def size_on_disk_bytes(self) -> int:
        """Approximate corpus size: per occurrence, word chars + separator."""
        lengths = np.array([len(w) + 1 for w in self._words], dtype=np.int64)
        return int((lengths * self._counts).sum())

    # -- subsampling --------------------------------------------------------
    def keep_probabilities(self, threshold: float = 1e-4) -> np.ndarray:
        """Mikolov subsampling keep-probability per node id, clipped to 1."""
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if self._keep_prob is None or self._keep_threshold != threshold:
            freq = self._counts / self._total
            ratio = threshold / freq
            prob = np.sqrt(ratio) + ratio
            self._keep_prob = np.minimum(prob, 1.0)
            self._keep_threshold = threshold
        return self._keep_prob

    def __repr__(self) -> str:
        return f"Vocabulary(words={len(self)}, total={self._total})"
