"""Biological-sequence embeddings (BioVec/ProtVec-style; paper §1 ref [14]).

Kimothi et al. apply Word2Vec to biological sequences by treating
overlapping k-mers as words and sequences as sentences.  This module
provides the k-mer tokenizer, a synthetic sequence generator with planted
*motif families* (the sequence analogue of the planted analogy structure),
and a trainer wrapper — all on the repository's ordinary Word2Vec stack,
including the distributed trainer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.text.corpus import Corpus
from repro.util.rng import default_rng
from repro.w2v.distributed import GraphWord2Vec
from repro.w2v.model import Word2VecModel
from repro.w2v.params import Word2VecParams
from repro.w2v.shared_memory import SharedMemoryWord2Vec

__all__ = [
    "kmer_tokenize",
    "SequenceFamilySpec",
    "generate_sequences",
    "sequence_corpus",
    "train_kmer_embedding",
]

DNA_ALPHABET = "ACGT"


def kmer_tokenize(sequence: str, k: int = 3, stride: int = 1) -> list[str]:
    """Overlapping k-mers of ``sequence`` (ProtVec uses k=3, stride 1)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    sequence = sequence.upper()
    return [sequence[i : i + k] for i in range(0, len(sequence) - k + 1, stride)]


@dataclass(frozen=True)
class SequenceFamilySpec:
    """Synthetic sequence dataset with planted motif families.

    Each family has a characteristic motif; a family's sequences embed its
    motif (with point mutations) several times in random background, so
    k-mers from the same motif co-occur — the structure a k-mer embedding
    should recover.
    """

    num_families: int = 4
    sequences_per_family: int = 60
    sequence_length: int = 120
    motif_length: int = 12
    motifs_per_sequence: int = 3
    mutation_rate: float = 0.02
    alphabet: str = DNA_ALPHABET

    def __post_init__(self) -> None:
        if self.num_families < 1:
            raise ValueError("need at least one family")
        if self.motif_length >= self.sequence_length:
            raise ValueError("motif longer than sequence")
        if not 0 <= self.mutation_rate < 1:
            raise ValueError(f"mutation_rate must be in [0, 1), got {self.mutation_rate}")
        if len(set(self.alphabet)) < 2:
            raise ValueError("alphabet needs >= 2 distinct symbols")


def generate_sequences(
    spec: SequenceFamilySpec = SequenceFamilySpec(),
    seed: int | None = None,
) -> tuple[list[str], np.ndarray, list[str]]:
    """Return (sequences, family labels, the planted motif per family)."""
    rng = default_rng(seed)
    letters = np.array(list(spec.alphabet))

    def random_string(n: int) -> str:
        return "".join(rng.choice(letters, size=n))

    motifs = [random_string(spec.motif_length) for _ in range(spec.num_families)]
    sequences: list[str] = []
    labels: list[int] = []
    for family, motif in enumerate(motifs):
        for _ in range(spec.sequences_per_family):
            seq = list(random_string(spec.sequence_length))
            max_start = spec.sequence_length - spec.motif_length
            for _ in range(spec.motifs_per_sequence):
                start = int(rng.integers(0, max_start + 1))
                for offset, base in enumerate(motif):
                    if rng.random() < spec.mutation_rate:
                        base = str(rng.choice(letters))
                    seq[start + offset] = base
            sequences.append("".join(seq))
            labels.append(family)
    return sequences, np.array(labels, dtype=np.int64), motifs


def sequence_corpus(sequences: list[str], k: int = 3, stride: int = 1) -> Corpus:
    """k-mer corpus over raw sequences; one sentence per sequence."""
    tokenized = [kmer_tokenize(s, k=k, stride=stride) for s in sequences]
    tokenized = [t for t in tokenized if t]
    if not tokenized:
        raise ValueError("no sequence produced any k-mers")
    return Corpus.from_token_sentences(tokenized)


def train_kmer_embedding(
    sequences: list[str],
    k: int = 3,
    params: Word2VecParams | None = None,
    num_hosts: int = 1,
    seed: int | None = None,
    **trainer_kwargs,
) -> tuple[Word2VecModel, Corpus]:
    """Train k-mer vectors, shared-memory or distributed."""
    params = params or Word2VecParams(
        dim=32, window=5, negatives=5, epochs=5, subsample_threshold=1e-2
    )
    corpus = sequence_corpus(sequences, k=k)
    if num_hosts == 1 and not trainer_kwargs:
        model = SharedMemoryWord2Vec(corpus, params, seed=seed).train()
    else:
        model = (
            GraphWord2Vec(
                corpus, params, num_hosts=num_hosts, seed=seed, **trainer_kwargs
            )
            .train()
            .model
        )
    return model, corpus
