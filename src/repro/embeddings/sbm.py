"""Stochastic block model graphs and community-structure metrics.

The synthetic substrate for node-embedding experiments: an SBM plants
community structure (dense within blocks, sparse across) that a good
DeepWalk embedding must recover — the graph analogue of the planted analogy
families in :mod:`repro.text.synthetic`.
"""

from __future__ import annotations

import numpy as np

from repro.dgraph.graph import Graph
from repro.util.rng import default_rng

__all__ = ["stochastic_block_model", "community_separation", "knn_label_accuracy"]


def stochastic_block_model(
    community_sizes: list[int] | tuple[int, ...],
    p_in: float = 0.15,
    p_out: float = 0.005,
    seed: int | None = None,
) -> tuple[Graph, np.ndarray]:
    """Undirected SBM; returns (graph with both edge directions, labels)."""
    if not community_sizes:
        raise ValueError("need at least one community")
    if not (0 <= p_out <= p_in <= 1):
        raise ValueError(f"need 0 <= p_out <= p_in <= 1, got {p_in}, {p_out}")
    rng = default_rng(seed)
    labels = np.concatenate(
        [np.full(size, k, dtype=np.int64) for k, size in enumerate(community_sizes)]
    )
    n = len(labels)
    src_list, dst_list = [], []
    for u in range(n):
        # Sample upper-triangle edges vectorized per row.
        vs = np.arange(u + 1, n)
        if vs.size == 0:
            continue
        probs = np.where(labels[vs] == labels[u], p_in, p_out)
        chosen = vs[rng.random(len(vs)) < probs]
        src_list.append(np.full(len(chosen), u, dtype=np.int64))
        dst_list.append(chosen)
    if src_list:
        src = np.concatenate(src_list)
        dst = np.concatenate(dst_list)
    else:
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
    graph = Graph.from_edges(src, dst, n, symmetric=True)
    return graph, labels


def _normalized(vectors: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    return vectors / np.where(norms > 0, norms, 1.0)


def community_separation(vectors: np.ndarray, labels: np.ndarray) -> float:
    """Mean intra-community cosine minus mean inter-community cosine.

    Positive and large when the embedding separates the planted blocks;
    ~0 for random vectors.
    """
    vectors = _normalized(np.asarray(vectors, dtype=np.float64))
    labels = np.asarray(labels)
    sims = vectors @ vectors.T
    same = labels[:, None] == labels[None, :]
    off_diag = ~np.eye(len(labels), dtype=bool)
    intra = sims[same & off_diag]
    inter = sims[~same]
    if intra.size == 0 or inter.size == 0:
        raise ValueError("need at least two communities with >= 2 members")
    return float(intra.mean() - inter.mean())


def knn_label_accuracy(vectors: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Leave-one-out k-NN classification accuracy by cosine similarity."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    vectors = _normalized(np.asarray(vectors, dtype=np.float64))
    labels = np.asarray(labels)
    sims = vectors @ vectors.T
    np.fill_diagonal(sims, -np.inf)
    neighbors = np.argsort(-sims, axis=1)[:, :k]
    neighbor_labels = labels[neighbors]
    predictions = np.array(
        [np.bincount(row).argmax() for row in neighbor_labels]
    )
    return float((predictions == labels).mean())
