"""Graph-node embeddings on the Word2Vec stack.

The paper's introduction motivates embedding targets beyond words — social
networks (DeepWalk), biological sequences, code.  This package implements
the graph case end to end on this repository's own substrates: random-walk
corpora generated from :class:`repro.dgraph.graph.Graph` (uniform DeepWalk
walks or node2vec's (p, q)-biased second-order walks) are fed to any of the
Word2Vec trainers, including distributed GraphWord2Vec.
"""

from repro.embeddings.deepwalk import (
    DeepWalkConfig,
    NodeEmbedding,
    deepwalk_corpus,
    random_walks,
    train_node_embedding,
)
from repro.embeddings.sbm import community_separation, stochastic_block_model
from repro.embeddings.sequences import (
    SequenceFamilySpec,
    generate_sequences,
    kmer_tokenize,
    sequence_corpus,
    train_kmer_embedding,
)

__all__ = [
    "DeepWalkConfig",
    "NodeEmbedding",
    "deepwalk_corpus",
    "random_walks",
    "train_node_embedding",
    "stochastic_block_model",
    "community_separation",
    "SequenceFamilySpec",
    "generate_sequences",
    "kmer_tokenize",
    "sequence_corpus",
    "train_kmer_embedding",
]
