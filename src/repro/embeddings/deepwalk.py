"""DeepWalk / node2vec-style node embeddings (Perozzi et al., KDD'14).

Random walks over a graph are sentences; nodes are words; Skip-Gram learns
node embeddings whose geometry reflects graph proximity.  Walks are either
first-order uniform (DeepWalk) or node2vec's second-order walks biased by a
return parameter ``p`` (likelihood of revisiting the previous node) and an
in-out parameter ``q`` (BFS- vs DFS-like exploration).

Everything downstream is this repository's ordinary Word2Vec stack — in
particular the distributed GraphWord2Vec trainer works unchanged, giving
distributed node-embedding training on the same Gluon substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dgraph.graph import Graph
from repro.text.corpus import Corpus
from repro.util.rng import default_rng
from repro.w2v.distributed import GraphWord2Vec
from repro.w2v.model import Word2VecModel
from repro.w2v.params import Word2VecParams
from repro.w2v.shared_memory import SharedMemoryWord2Vec

__all__ = [
    "DeepWalkConfig",
    "NodeEmbedding",
    "random_walks",
    "deepwalk_corpus",
    "train_node_embedding",
]


@dataclass(frozen=True)
class DeepWalkConfig:
    """Walk-generation hyperparameters.

    ``p == q == 1`` gives uniform DeepWalk walks; other values select
    node2vec's biased walks.
    """

    num_walks: int = 10  # walks started per node
    walk_length: int = 40
    p: float = 1.0  # return parameter (1/p weight to revisit previous node)
    q: float = 1.0  # in-out parameter (1/q weight to move farther away)

    def __post_init__(self) -> None:
        if self.num_walks < 1:
            raise ValueError(f"num_walks must be >= 1, got {self.num_walks}")
        if self.walk_length < 2:
            raise ValueError(f"walk_length must be >= 2, got {self.walk_length}")
        if self.p <= 0 or self.q <= 0:
            raise ValueError(f"p and q must be positive, got p={self.p} q={self.q}")

    @property
    def is_uniform(self) -> bool:
        return self.p == 1.0 and self.q == 1.0


def _biased_step(
    graph: Graph,
    prev: int,
    current: int,
    config: DeepWalkConfig,
    rng: np.random.Generator,
) -> int | None:
    """One node2vec transition from ``current`` having come from ``prev``."""
    neighbors = graph.out_neighbors(current)
    if neighbors.size == 0:
        return None
    weights = np.ones(len(neighbors))
    back = neighbors == prev
    weights[back] = 1.0 / config.p
    # Distance-1 nodes (shared neighbors of prev) keep weight 1; others 1/q.
    prev_neighbors = graph.out_neighbors(prev)
    far = ~np.isin(neighbors, prev_neighbors) & ~back
    weights[far] = 1.0 / config.q
    weights /= weights.sum()
    return int(rng.choice(neighbors, p=weights))


def random_walks(
    graph: Graph,
    config: DeepWalkConfig = DeepWalkConfig(),
    seed: int | None = None,
) -> list[np.ndarray]:
    """Generate ``num_walks`` truncated walks from every node.

    Walk starts are shuffled per pass (as in the DeepWalk paper); walks stop
    early at sink nodes.  Isolated nodes yield single-node walks so every
    node appears in the corpus.
    """
    rng = default_rng(seed)
    walks: list[np.ndarray] = []
    nodes = np.arange(graph.num_nodes)
    for _pass in range(config.num_walks):
        order = rng.permutation(nodes)
        for start in order:
            walk = [int(start)]
            while len(walk) < config.walk_length:
                current = walk[-1]
                neighbors = graph.out_neighbors(current)
                if neighbors.size == 0:
                    break
                if len(walk) == 1 or config.is_uniform:
                    nxt = int(neighbors[rng.integers(len(neighbors))])
                else:
                    step = _biased_step(graph, walk[-2], current, config, rng)
                    if step is None:
                        break
                    nxt = step
                walk.append(nxt)
            walks.append(np.array(walk, dtype=np.int64))
    return walks


def node_word(node: int) -> str:
    """The corpus token representing a graph node."""
    return f"n{node}"


def deepwalk_corpus(
    graph: Graph,
    config: DeepWalkConfig = DeepWalkConfig(),
    seed: int | None = None,
) -> Corpus:
    """Random-walk corpus over ``graph``; tokens are ``n<node-id>``."""
    walks = random_walks(graph, config, seed=seed)
    sentences = [[node_word(int(n)) for n in walk] for walk in walks]
    return Corpus.from_token_sentences(sentences)


@dataclass
class NodeEmbedding:
    """Per-node embedding matrix aligned to graph node ids."""

    vectors: np.ndarray  # (num_nodes, dim) float32
    model: Word2VecModel
    corpus: Corpus

    @property
    def dim(self) -> int:
        return self.vectors.shape[1]


def train_node_embedding(
    graph: Graph,
    walk_config: DeepWalkConfig = DeepWalkConfig(),
    params: Word2VecParams | None = None,
    num_hosts: int = 1,
    seed: int | None = None,
    **trainer_kwargs,
) -> NodeEmbedding:
    """Walks -> Word2Vec -> per-node vectors.

    ``num_hosts == 1`` uses the shared-memory trainer; larger values train
    distributed GraphWord2Vec with any of its combiners/plans
    (``trainer_kwargs`` are forwarded).  Node-id rows of the result align
    with ``graph``'s node ids; nodes never visited by a walk (impossible —
    every node starts walks) would raise.
    """
    params = params or Word2VecParams(
        dim=64, window=5, negatives=5, epochs=5, subsample_threshold=1e-2
    )
    corpus = deepwalk_corpus(graph, walk_config, seed=seed)
    if num_hosts == 1 and not trainer_kwargs:
        model = SharedMemoryWord2Vec(corpus, params, seed=seed).train()
    else:
        result = GraphWord2Vec(
            corpus, params, num_hosts=num_hosts, seed=seed, **trainer_kwargs
        ).train()
        model = result.model
    vocab = corpus.vocabulary
    vectors = np.empty((graph.num_nodes, params.dim), dtype=np.float32)
    for node in range(graph.num_nodes):
        vectors[node] = model.embedding[vocab.id_of(node_word(node))]
    return NodeEmbedding(vectors=vectors, model=model, corpus=corpus)
