"""Vertically-partitioned distributed Word2Vec (Ordentlich et al., CIKM'16).

The related-work system the paper contrasts with (§6): instead of
replicating the model and partitioning the *data*, each of H hosts stores a
column slice (dim/H dimensions) of the embedding and training vectors for
*every* word.  A mini-batch's (input, target) index lists are broadcast to
all hosts; each host computes partial dot products over its columns; the
partials are all-reduced so every host holds the full scores; each host
then updates its own columns locally.

Properties reproduced here:

- **exactness**: unlike data-parallel schemes there is no staleness — the
  computation is an exact re-factoring of the sequential batch update, so
  the trained model matches the single-host trainer up to float summation
  order (tested);
- **network profile**: per batch the wire carries scores (B x (1+k) floats
  per host, twice for the allreduce) and the batch's index lists —
  *independent of the embedding dimension*, which is why this design suits
  models too large for one host;
- **memory profile**: every host stores 2·V·(dim/H) floats.

The trade-off the paper points out — communication after every mini-batch —
is visible in the accounted message counts versus GraphWord2Vec's per-round
synchronization (extension benchmark).
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.special import expit

from repro.gluon.comm import ID_BYTES, VALUE_BYTES, SimulatedNetwork
from repro.gluon.proxies import block_boundaries
from repro.text.corpus import Corpus
from repro.text.negative_sampling import UnigramTable
from repro.util.rng import SeedSequenceTree
from repro.w2v.model import Word2VecModel
from repro.w2v.params import Word2VecParams
from repro.w2v.sgd import TrainingBatch, build_training_batch

__all__ = ["VerticalPartitionWord2Vec"]


class VerticalPartitionWord2Vec:
    """Column-partitioned Skip-Gram with negative sampling."""

    def __init__(
        self,
        corpus: Corpus,
        params: Word2VecParams = Word2VecParams(),
        num_hosts: int = 4,
        batch_pairs: int | None = None,
        seed: int | None = None,
    ):
        if params.architecture != "skipgram" or params.objective != "negative":
            raise ValueError(
                "vertical partitioning is implemented for skipgram + negative sampling"
            )
        if num_hosts <= 0:
            raise ValueError(f"num_hosts must be positive, got {num_hosts}")
        if params.dim < num_hosts:
            raise ValueError(
                f"dim ({params.dim}) must be >= num_hosts ({num_hosts}) to slice columns"
            )
        self.corpus = corpus.split_long_sentences(params.max_sentence_length)
        self.params = params
        self.num_hosts = int(num_hosts)
        self.batch_pairs = int(batch_pairs or params.batch_pairs)
        self._seeds = SeedSequenceTree(seed if seed is not None else 0)
        vocab = corpus.vocabulary
        # Column slices: host h owns dims [bounds[h], bounds[h+1]).
        self.column_bounds = block_boundaries(params.dim, self.num_hosts)
        init = Word2VecModel.initialize(
            len(vocab), params.dim, self._seeds.child("init")
        )
        self._emb_slices = [
            init.embedding[:, self.column_bounds[h] : self.column_bounds[h + 1]].copy()
            for h in range(self.num_hosts)
        ]
        self._trn_slices = [
            init.training[:, self.column_bounds[h] : self.column_bounds[h + 1]].copy()
            for h in range(self.num_hosts)
        ]
        self._keep_prob = vocab.keep_probabilities(params.subsample_threshold)
        self._table = UnigramTable(vocab.counts)
        self.network = SimulatedNetwork(self.num_hosts)
        self.batches_processed = 0

    # ------------------------------------------------------------------
    def _train_batch(self, batch: TrainingBatch, lr: float) -> None:
        """One exact, column-parallel SGD step over ``batch``."""
        B = len(batch)
        if B == 0:
            return
        targets = np.concatenate([batch.outputs[:, None], batch.negatives], axis=1)
        K1 = targets.shape[1]

        # Index broadcast: the driver (host 0 by convention) ships the batch
        # indices to every other host.
        index_bytes = (B + B * K1) * ID_BYTES
        with self.network.phase("indices"):
            for h in range(1, self.num_hosts):
                self.network.send(0, h, index_bytes, payload=None)
        for h in range(1, self.num_hosts):
            self.network.drain(h)

        # Partial dot products per column slice.
        partials = []
        for h in range(self.num_hosts):
            e = self._emb_slices[h][batch.inputs]  # (B, d_h)
            t = self._trn_slices[h][targets]  # (B, K1, d_h)
            partials.append(np.einsum("bd,bkd->bk", e, t, dtype=np.float64))

        # Allreduce of the scores: each host contributes its partial matrix
        # and receives the sum (ring allreduce: ~2 messages per host).
        score_bytes = B * K1 * VALUE_BYTES
        with self.network.phase("allreduce-scores"):
            for h in range(self.num_hosts):
                peer = (h + 1) % self.num_hosts
                if peer != h:
                    self.network.send(h, peer, score_bytes, payload=None)
                    self.network.send(peer, h, score_bytes, payload=None)
        for h in range(self.num_hosts):
            self.network.drain(h)

        scores = np.sum(partials, axis=0)
        sig = expit(scores)
        grad_scale = sig.copy()
        grad_scale[:, 0] -= 1.0
        if batch.num_negatives:
            grad_scale[:, 1:] *= batch.negative_mask
        g = (grad_scale * lr).astype(np.float32)

        # Each host updates its own columns; no further communication.
        for h in range(self.num_hosts):
            e = self._emb_slices[h][batch.inputs]
            t = self._trn_slices[h][targets]
            grad_e = np.einsum("bk,bkd->bd", g, t)
            grad_t = g[:, :, None] * e[:, None, :]
            np.subtract.at(
                self._emb_slices[h], batch.inputs, grad_e.astype(np.float32)
            )
            np.subtract.at(
                self._trn_slices[h],
                targets.ravel(),
                grad_t.reshape(-1, t.shape[2]).astype(np.float32),
            )
        self.batches_processed += 1

    # ------------------------------------------------------------------
    def train(
        self,
        epoch_callback: Callable[[int, Word2VecModel], None] | None = None,
    ) -> Word2VecModel:
        params = self.params
        for epoch in range(params.epochs):
            lr = params.learning_rate_for_epoch(epoch)
            rng = self._seeds.subtree("epoch", epoch).child("train")
            sentences = list(self.corpus.sentences)
            if params.shuffle_each_epoch and len(sentences) > 1:
                order = rng.permutation(len(sentences))
                sentences = [sentences[i] for i in order]
            # Generate the epoch's pairs in sentence chunks, then train in
            # fixed-size mini-batches (the CIKM system's dataflow).
            for start in range(0, len(sentences), 32):
                chunk = sentences[start : start + 32]
                batch = build_training_batch(
                    chunk,
                    window=params.window,
                    keep_prob=self._keep_prob,
                    table=self._table,
                    num_negatives=params.negatives,
                    rng=rng,
                )
                for piece_start in range(0, len(batch), self.batch_pairs):
                    piece = batch.slice(
                        piece_start, min(piece_start + self.batch_pairs, len(batch))
                    )
                    self._train_batch(piece, lr)
            if epoch_callback is not None:
                epoch_callback(epoch, self.assembled_model())
        return self.assembled_model()

    # ------------------------------------------------------------------
    def assembled_model(self) -> Word2VecModel:
        """Concatenate the column slices into a full model."""
        emb = np.concatenate(self._emb_slices, axis=1)
        trn = np.concatenate(self._trn_slices, axis=1)
        return Word2VecModel(emb, trn)

    def per_host_memory_bytes(self) -> int:
        """Model bytes resident on one host (the design's selling point)."""
        return int(self._emb_slices[0].nbytes + self._trn_slices[0].nbytes)
