"""Comparator systems the paper evaluates against or argues about.

- :mod:`repro.baselines.sgns_reference` — the shared-memory state of the
  art: a word2vec.c-style trainer ("W2V", strict per-center-word SGD) and a
  gensim-style trainer ("GEM", epoch-materialized pairs in large batches,
  which is also why gensim runs out of memory on the paper's wiki corpus).
- :mod:`repro.baselines.minibatch` — synchronous data-parallel mini-batch
  SGD with an ALLREDUCE (sum or average) after every mini-batch (§2.3).
- :mod:`repro.baselines.param_server` — DistBelief-style asynchronous
  parameter server with stale gradient pushes (§1), optionally with
  Zheng-et-al. delay compensation (ref [29]).
- :mod:`repro.baselines.vertical` — Ordentlich et al.'s column-partitioned
  ("vertical") distributed Word2Vec (§6 related work).
"""

from repro.baselines.minibatch import MinibatchAllreduceSGD
from repro.baselines.param_server import AsyncParameterServerSGD
from repro.baselines.sgns_reference import (
    GensimStyleWord2Vec,
    MemoryBudgetExceeded,
    Word2VecCReference,
)
from repro.baselines.vertical import VerticalPartitionWord2Vec

__all__ = [
    "Word2VecCReference",
    "GensimStyleWord2Vec",
    "MemoryBudgetExceeded",
    "MinibatchAllreduceSGD",
    "AsyncParameterServerSGD",
    "VerticalPartitionWord2Vec",
]
