"""Shared-memory reference trainers ("W2V" and "GEM" in Tables 2/3).

:class:`Word2VecCReference` ports word2vec.c's Skip-Gram training schedule:
sentences stream in order, each surviving center word's window pairs are
trained *immediately* against the current model before the next center is
touched — the strict sequential-SGD dependency structure (at center-word
granularity) that makes the original hard to parallelize and slow.

:class:`GensimStyleWord2Vec` mimics gensim's job-based pipeline: it
materializes the epoch's training pairs up front and streams them through
the vectorized kernel in large batches.  Faster per epoch — and the reason
gensim exhausts memory on very large corpora, which we expose through an
explicit ``memory_budget_bytes`` (the Table 2 harness scales the budget with
the dataset to reproduce the paper's wiki OOM).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.text.corpus import Corpus
from repro.text.negative_sampling import UnigramTable
from repro.util.rng import SeedSequenceTree
from repro.w2v.model import Word2VecModel
from repro.w2v.params import Word2VecParams
from repro.w2v.sgd import (
    TrainingBatch,
    apply_training_batch,
    build_training_batch,
    sample_negatives,
    sgns_update,
    subsample_sentence,
)

__all__ = ["Word2VecCReference", "GensimStyleWord2Vec", "MemoryBudgetExceeded"]


class MemoryBudgetExceeded(MemoryError):
    """The GEM-style trainer's materialized pairs exceed its budget."""


class Word2VecCReference:
    """Strict sequential SGNS at center-word granularity ("W2V")."""

    def __init__(
        self,
        corpus: Corpus,
        params: Word2VecParams = Word2VecParams(),
        seed: int | None = None,
    ):
        self.corpus = corpus.split_long_sentences(params.max_sentence_length)
        self.params = params
        self._seeds = SeedSequenceTree(seed if seed is not None else 0)
        vocab = corpus.vocabulary
        self.model = Word2VecModel.initialize(
            len(vocab), params.dim, self._seeds.child("init")
        )
        self._keep_prob = vocab.keep_probabilities(params.subsample_threshold)
        self._table = UnigramTable(vocab.counts)

    def train(
        self,
        epoch_callback: Callable[[int, Word2VecModel], None] | None = None,
    ) -> Word2VecModel:
        params = self.params
        emb, trn = self.model.embedding, self.model.training
        for epoch in range(params.epochs):
            lr = params.learning_rate_for_epoch(epoch)
            rng = self._seeds.subtree("epoch", epoch).child("train")
            sentences = self.corpus.sentences
            if params.shuffle_each_epoch and len(sentences) > 1:
                order = rng.permutation(len(sentences))
                sentences = [sentences[i] for i in order]
            for sentence in sentences:
                kept = subsample_sentence(sentence, self._keep_prob, rng)
                if len(kept) < 2:
                    continue
                # Center-granular strict SGD: the order of center positions
                # matches word2vec.c; every center's update sees all the
                # previous centers' updates.
                spans = rng.integers(1, params.window + 1, size=len(kept))
                for i in range(len(kept)):
                    lo = max(0, i - int(spans[i]))
                    hi = min(len(kept), i + int(spans[i]) + 1)
                    contexts = np.concatenate([kept[lo:i], kept[i + 1 : hi]])
                    if contexts.size == 0:
                        continue
                    outputs = np.full(len(contexts), kept[i], dtype=np.int64)
                    negatives, mask = sample_negatives(
                        self._table, outputs, params.negatives, rng
                    )
                    batch = TrainingBatch(
                        inputs=contexts,
                        outputs=outputs,
                        negatives=negatives,
                        negative_mask=mask,
                    )
                    sgns_update(emb, trn, batch, lr)
            if epoch_callback is not None:
                epoch_callback(epoch, self.model)
        return self.model


class GensimStyleWord2Vec:
    """Epoch-materialized, large-batch SGNS ("GEM")."""

    #: Conservative estimate of the resident bytes per materialized pair:
    #: input + output + negatives ids at int64.
    @staticmethod
    def pair_bytes(negatives: int) -> int:
        return 8 * (2 + negatives) + 1  # ids + collision-mask byte

    def __init__(
        self,
        corpus: Corpus,
        params: Word2VecParams = Word2VecParams(),
        seed: int | None = None,
        memory_budget_bytes: int | None = None,
        job_pairs: int = 2048,
    ):
        if job_pairs < 1:
            raise ValueError(f"job_pairs must be >= 1, got {job_pairs}")
        self.corpus = corpus.split_long_sentences(params.max_sentence_length)
        self.params = params
        self.memory_budget_bytes = memory_budget_bytes
        self.job_pairs = job_pairs
        self._seeds = SeedSequenceTree(seed if seed is not None else 0)
        vocab = corpus.vocabulary
        self.model = Word2VecModel.initialize(
            len(vocab), params.dim, self._seeds.child("init")
        )
        self._keep_prob = vocab.keep_probabilities(params.subsample_threshold)
        self._table = UnigramTable(vocab.counts)

    def _materialize_epoch(self, epoch: int) -> TrainingBatch:
        params = self.params
        rng = self._seeds.subtree("epoch", epoch).child("train")
        sentences = self.corpus.sentences
        if params.shuffle_each_epoch and len(sentences) > 1:
            order = rng.permutation(len(sentences))
            sentences = [sentences[i] for i in order]
        batch = build_training_batch(
            sentences,
            window=params.window,
            keep_prob=self._keep_prob,
            table=self._table,
            num_negatives=params.negatives,
            rng=rng,
        )
        if self.memory_budget_bytes is not None:
            need = len(batch) * self.pair_bytes(params.negatives)
            if need > self.memory_budget_bytes:
                raise MemoryBudgetExceeded(
                    f"epoch {epoch} materializes {need:,} bytes of pairs "
                    f"(budget {self.memory_budget_bytes:,})"
                )
        return batch

    def train(
        self,
        epoch_callback: Callable[[int, Word2VecModel], None] | None = None,
    ) -> Word2VecModel:
        params = self.params
        for epoch in range(params.epochs):
            lr = params.learning_rate_for_epoch(epoch)
            batch = self._materialize_epoch(epoch)
            apply_training_batch(
                self.model.embedding,
                self.model.training,
                batch,
                lr,
                self.job_pairs,
            )
            if epoch_callback is not None:
                epoch_callback(epoch, self.model)
        return self.model
