"""Asynchronous parameter-server SGD (DistBelief-style; paper §1, Fig. 3).

One host is the parameter server holding the canonical model; workers pull
the model, compute gradients on their next corpus chunk, and push deltas
that the server applies immediately ("racy updates to a global parameter
server").  Asynchrony is simulated with a configurable *staleness*: a
worker's push is computed against the model it pulled ``staleness`` pushes
ago, which is exactly the delayed-gradient pathology delay-compensation
papers (Zheng et al., the paper's ref [29]) analyze and the model combiner
sidesteps.

Optionally, Zheng et al.'s *delay compensation* is applied when a stale
push lands: with the same diagonal Hessian approximation the paper's §3
uses (∂²L/∂w² ≈ c·g·gᵀ), the delayed gradient is corrected by

    g_comp = g + λ · g ⊙ g ⊙ (w_now − w_stale)

which in delta form (δ = −α·g aggregated over the chunk) becomes
``δ_comp = δ − (λ/α)·δ⊙δ⊙(w_now − w_stale)``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from repro.dgraph.engine import compensate_delta
from repro.gluon.comm import ID_BYTES, VALUE_BYTES, SimulatedNetwork
from repro.text.corpus import Corpus
from repro.text.negative_sampling import UnigramTable
from repro.util.rng import SeedSequenceTree
from repro.w2v.model import Word2VecModel
from repro.w2v.params import Word2VecParams
from repro.w2v.sgd import build_training_batch, sgns_update

__all__ = ["AsyncParameterServerSGD"]


class AsyncParameterServerSGD:
    """Parameter-server trainer with simulated gradient staleness."""

    def __init__(
        self,
        corpus: Corpus,
        params: Word2VecParams = Word2VecParams(),
        num_workers: int = 4,
        sentences_per_pull: int = 16,
        staleness: int = 0,
        delay_compensation: float = 0.0,
        seed: int | None = None,
    ):
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if sentences_per_pull <= 0:
            raise ValueError("sentences_per_pull must be positive")
        if staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness}")
        if delay_compensation < 0:
            raise ValueError(
                f"delay_compensation must be >= 0, got {delay_compensation}"
            )
        self.corpus = corpus.split_long_sentences(params.max_sentence_length)
        self.params = params
        self.num_workers = int(num_workers)
        self.sentences_per_pull = int(sentences_per_pull)
        self.staleness = int(staleness)
        self.delay_compensation = float(delay_compensation)
        self._seeds = SeedSequenceTree(seed if seed is not None else 0)
        vocab = corpus.vocabulary
        # Host 0 is the server; workers are hosts 1..W.
        self.network = SimulatedNetwork(self.num_workers + 1)
        self.model = Word2VecModel.initialize(
            len(vocab), params.dim, self._seeds.child("init")
        )
        self._keep_prob = vocab.keep_probabilities(params.subsample_threshold)
        self._table = UnigramTable(vocab.counts)

    def _apply_push(
        self,
        ids: np.ndarray,
        d_emb: np.ndarray,
        d_trn: np.ndarray,
        base_emb: np.ndarray,
        base_trn: np.ndarray,
        lr: float,
    ) -> None:
        """Land one (possibly stale) push, with optional delay compensation."""
        lam = self.delay_compensation
        d_emb = compensate_delta(d_emb, self.model.embedding[ids] - base_emb, lam, lr)
        d_trn = compensate_delta(d_trn, self.model.training[ids] - base_trn, lam, lr)
        self.model.embedding[ids] += d_emb
        self.model.training[ids] += d_trn

    def train(
        self,
        epoch_callback: Callable[[int, Word2VecModel], None] | None = None,
    ) -> Word2VecModel:
        params = self.params
        dim = params.dim
        # Pending pushes: deltas computed against old snapshots, applied
        # after `staleness` further pushes have happened.  Each entry keeps
        # the snapshot values so delay compensation can measure the drift.
        pending: deque[
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]
        ] = deque()
        for epoch in range(params.epochs):
            lr = params.learning_rate_for_epoch(epoch)
            rng = self._seeds.subtree("epoch", epoch).child("train")
            sentences = list(self.corpus.sentences)
            if params.shuffle_each_epoch and len(sentences) > 1:
                order = rng.permutation(len(sentences))
                sentences = [sentences[i] for i in order]
            chunks = [
                sentences[i : i + self.sentences_per_pull]
                for i in range(0, len(sentences), self.sentences_per_pull)
            ]
            for chunk_index, chunk in enumerate(chunks):
                worker = 1 + (chunk_index % self.num_workers)
                # Pull: worker receives the current model (sparse pulls are
                # possible in principle; we charge the touched rows below on
                # both directions, which is the common "pull what you need"
                # optimization).
                snapshot_emb = self.model.embedding.copy()
                snapshot_trn = self.model.training.copy()
                batch = build_training_batch(
                    chunk,
                    window=params.window,
                    keep_prob=self._keep_prob,
                    table=self._table,
                    num_negatives=params.negatives,
                    rng=rng,
                )
                if len(batch) == 0:
                    continue
                sgns_update(snapshot_emb, snapshot_trn, batch, lr)
                touched = batch.accessed_ids()
                base_emb = self.model.embedding[touched].copy()
                base_trn = self.model.training[touched].copy()
                delta_emb = snapshot_emb[touched] - base_emb
                delta_trn = snapshot_trn[touched] - base_trn
                nbytes = len(touched) * (ID_BYTES + 2 * dim * VALUE_BYTES)
                with self.network.phase("pull"):
                    self.network.send(0, worker, nbytes, payload=None)
                with self.network.phase("push"):
                    self.network.send(worker, 0, nbytes, payload=None)
                self.network.drain(worker)
                self.network.drain(0)
                pending.append((touched, delta_emb, delta_trn, base_emb, base_trn, lr))
                # Apply the push that has aged past the staleness bound.
                while len(pending) > self.staleness:
                    self._apply_push(*pending.popleft())
            # Epoch boundary: flush all outstanding pushes.
            while pending:
                self._apply_push(*pending.popleft())
            if epoch_callback is not None:
                epoch_callback(epoch, self.model)
        return self.model
