"""Synchronous data-parallel mini-batch SGD with per-batch ALLREDUCE (§2.3).

The classic distribution strategy the paper argues against: ``H`` workers
each compute gradients for their slice of a global mini-batch against the
*same* model snapshot; the gradients are combined (averaged or summed) and
applied; then the next mini-batch begins.  Convergence-wise, averaging turns
SGD into large-batch gradient descent as ``H`` grows; sum effectively
multiplies the learning rate by ``H``.  Communication-wise, an allreduce
after *every* mini-batch is what GraphWord2Vec's infrequent synchronization
avoids — the byte accounting here feeds the ablation benchmark comparing
the two schedules.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.gluon.comm import ID_BYTES, VALUE_BYTES, SimulatedNetwork
from repro.text.corpus import Corpus
from repro.text.negative_sampling import UnigramTable
from repro.util.rng import SeedSequenceTree
from repro.w2v.model import Word2VecModel
from repro.w2v.params import Word2VecParams
from repro.w2v.sgd import build_training_batch, sgns_update

__all__ = ["MinibatchAllreduceSGD"]


class MinibatchAllreduceSGD:
    """H-worker synchronous mini-batch trainer with sum/mean reduction."""

    def __init__(
        self,
        corpus: Corpus,
        params: Word2VecParams = Word2VecParams(),
        num_workers: int = 4,
        sentences_per_worker_batch: int = 8,
        reduction: str = "mean",
        seed: int | None = None,
    ):
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if sentences_per_worker_batch <= 0:
            raise ValueError("sentences_per_worker_batch must be positive")
        if reduction not in ("mean", "sum"):
            raise ValueError(f"reduction must be mean or sum, got {reduction!r}")
        self.corpus = corpus.split_long_sentences(params.max_sentence_length)
        self.params = params
        self.num_workers = int(num_workers)
        self.sentences_per_worker_batch = int(sentences_per_worker_batch)
        self.reduction = reduction
        self._seeds = SeedSequenceTree(seed if seed is not None else 0)
        vocab = corpus.vocabulary
        self.model = Word2VecModel.initialize(
            len(vocab), params.dim, self._seeds.child("init")
        )
        self._keep_prob = vocab.keep_probabilities(params.subsample_threshold)
        self._table = UnigramTable(vocab.counts)
        self.network = SimulatedNetwork(max(2, self.num_workers))
        self.allreduce_count = 0

    def _charge_allreduce(self, touched_rows_per_worker: list[int], dim: int) -> None:
        """Account a ring-style sparse allreduce: each worker ships its
        touched rows to a peer and receives the combined result."""
        with self.network.phase("allreduce"):
            for w, rows in enumerate(touched_rows_per_worker):
                if rows == 0:
                    continue
                peer = (w + 1) % self.network.num_hosts
                nbytes = rows * (ID_BYTES + dim * VALUE_BYTES)
                self.network.send(w, peer, nbytes, payload=None)
                self.network.send(peer, w, nbytes, payload=None)
            for h in range(self.network.num_hosts):
                self.network.drain(h)
        self.allreduce_count += 1

    def train(
        self,
        epoch_callback: Callable[[int, Word2VecModel], None] | None = None,
    ) -> Word2VecModel:
        params = self.params
        dim = params.dim
        scale = 1.0 / self.num_workers if self.reduction == "mean" else 1.0
        for epoch in range(params.epochs):
            lr = params.learning_rate_for_epoch(epoch)
            rng = self._seeds.subtree("epoch", epoch).child("train")
            sentences = list(self.corpus.sentences)
            if params.shuffle_each_epoch and len(sentences) > 1:
                order = rng.permutation(len(sentences))
                sentences = [sentences[i] for i in order]
            step = self.num_workers * self.sentences_per_worker_batch
            for start in range(0, len(sentences), step):
                group = sentences[start : start + step]
                # Workers compute deltas against the same snapshot.
                emb0 = self.model.embedding.copy()
                trn0 = self.model.training.copy()
                sum_emb = np.zeros_like(emb0, dtype=np.float64)
                sum_trn = np.zeros_like(trn0, dtype=np.float64)
                touched_rows: list[int] = []
                for w in range(self.num_workers):
                    shard = group[
                        w * self.sentences_per_worker_batch : (w + 1)
                        * self.sentences_per_worker_batch
                    ]
                    if not shard:
                        touched_rows.append(0)
                        continue
                    local_emb = emb0.copy()
                    local_trn = trn0.copy()
                    batch = build_training_batch(
                        shard,
                        window=params.window,
                        keep_prob=self._keep_prob,
                        table=self._table,
                        num_negatives=params.negatives,
                        rng=rng,
                    )
                    sgns_update(local_emb, local_trn, batch, lr)
                    sum_emb += local_emb.astype(np.float64) - emb0
                    sum_trn += local_trn.astype(np.float64) - trn0
                    touched_rows.append(len(batch.accessed_ids()))
                self.model.embedding += (scale * sum_emb).astype(np.float32)
                self.model.training += (scale * sum_trn).astype(np.float32)
                self._charge_allreduce(touched_rows, dim)
            if epoch_callback is not None:
                epoch_callback(epoch, self.model)
        return self.model
