"""Deterministic random-number management.

Every stochastic component in the library (corpus generation, negative
sampling, window sampling, model initialization, partitioning) draws from a
:class:`numpy.random.Generator` handed to it explicitly.  Distributed
components need *independent but reproducible* streams per host; we derive
them from a single root seed with ``numpy``'s ``SeedSequence`` spawning, so a
run is a pure function of its root seed regardless of host count or
scheduling order.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "default_rng",
    "derive_seed",
    "keyed_rng",
    "spawn_rngs",
    "SeedSequenceTree",
    "hash64",
]

# Default root seed used across examples/benchmarks so results are stable.
DEFAULT_SEED = 0x5EED_C0DE


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a PCG64 generator seeded with ``seed`` (library default if None)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_seed(*key: int) -> int:
    """Mix an integer key tuple into one stable 64-bit seed.

    The derivation is ``SeedSequence`` entropy mixing, so distinct key tuples
    yield statistically independent seeds and the same tuple always yields
    the same seed.  This is the sanctioned way for components outside this
    module to derive sub-seeds (the ``repro.analysis`` linter flags direct
    ``np.random.SeedSequence`` use elsewhere).
    """
    material = np.random.SeedSequence(tuple(int(k) for k in key))
    return int(material.generate_state(1, dtype=np.uint64)[0])


def keyed_rng(*key: int) -> np.random.Generator:
    """A PCG64 generator for an integer key tuple (see :func:`derive_seed`)."""
    return np.random.default_rng(
        np.random.SeedSequence(tuple(int(k) for k in key))
    )


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Return ``n`` independent generators derived from ``seed``.

    Streams are statistically independent (SeedSequence spawning) and stable:
    ``spawn_rngs(s, n)[i]`` is the same stream for every call with the same
    ``s``, independent of ``n`` for ``i < n``.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]


class SeedSequenceTree:
    """Hierarchical, named seed derivation.

    ``tree.child("hosts", 3)`` always yields the same seed material for the
    same (name, index) pair, letting e.g. host 3's negative-sampling stream be
    reproducible independently of how many other streams were created.
    """

    def __init__(self, seed: int):
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def child(self, name: str, index: int = 0) -> np.random.Generator:
        """Generator for the ``(name, index)`` slot under this tree."""
        key = (self._seed, hash64(name), int(index))
        return np.random.default_rng(np.random.SeedSequence(key))

    def subtree(self, name: str, index: int = 0) -> "SeedSequenceTree":
        """A derived tree; children of distinct subtrees never collide."""
        mixed = np.random.SeedSequence(
            (self._seed, hash64(name), int(index))
        ).generate_state(1, dtype=np.uint64)[0]
        return SeedSequenceTree(int(mixed))

    def children(self, name: str, n: int) -> list[np.random.Generator]:
        return [self.child(name, i) for i in range(n)]


def hash64(text: str) -> int:
    """Stable 64-bit FNV-1a hash of ``text``.

    Used both for seed derivation and for the word -> node-id hash mapping in
    the vocabulary (the paper hashes vocabulary strings to node ids with the
    same function on all hosts).  Python's built-in ``hash`` is salted per
    process, so it cannot be used for cross-host agreement.
    """
    h = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h
