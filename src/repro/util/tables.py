"""Plain-text table rendering for benchmark harness output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module renders them without third-party dependencies.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_row", "format_number", "format_bytes"]


def format_number(value: Any, precision: int = 2) -> str:
    """Human formatting: floats to ``precision`` places, ints verbatim."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e5 or (0 < abs(value) < 1e-3):
            return f"{value:.{precision}e}"
        return f"{value:,.{precision}f}"
    return str(value)


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary-ish unit ladder (paper uses TB)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB", "PB"):
        if abs(value) < 1000.0 or unit == "PB":
            return f"{value:,.2f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1000.0
    raise AssertionError("unreachable")


def format_row(cells: Sequence[Any], widths: Sequence[int]) -> str:
    parts = []
    for cell, width in zip(cells, widths):
        text = cell if isinstance(cell, str) else format_number(cell)
        parts.append(text.rjust(width))
    return "  ".join(parts)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    rendered_rows = [
        [cell if isinstance(cell, str) else format_number(cell) for cell in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers), widths))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(format_row(row, widths))
    return "\n".join(lines)
