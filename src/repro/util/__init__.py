"""Small shared utilities: seeded RNG management, table rendering, logging."""

from repro.util.logging import get_logger
from repro.util.rng import SeedSequenceTree, default_rng, spawn_rngs
from repro.util.tables import format_table, format_row

__all__ = [
    "SeedSequenceTree",
    "default_rng",
    "spawn_rngs",
    "format_table",
    "format_row",
    "get_logger",
]
