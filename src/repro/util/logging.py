"""Library logging.

We use stdlib :mod:`logging` with a ``repro.*`` namespace and never configure
the root logger (that belongs to applications).  ``get_logger(__name__)`` is
the only entry point modules should use.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger"]

_BASE = "repro"


def get_logger(name: str) -> logging.Logger:
    """Namespaced logger; accepts either ``repro.x.y`` or bare suffixes."""
    if not name.startswith(_BASE):
        name = f"{_BASE}.{name}"
    logger = logging.getLogger(name)
    logger.addHandler(logging.NullHandler())
    return logger
