"""Distributed graph: partitions + per-host local CSR graphs + label storage.

A :class:`DistGraph` couples the :mod:`repro.gluon` partitioner output with a
local :class:`~repro.dgraph.graph.Graph` per host (edges in local ids) and
helpers to allocate per-host label arrays, which Gluon synchronizes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dgraph.graph import Graph
from repro.gluon.bitvector import BitVector
from repro.gluon.partitioner import Partition, partition_edges

__all__ = ["DistGraph"]


class DistGraph:
    """A graph partitioned among simulated hosts."""

    def __init__(self, partitions: Sequence[Partition]):
        if not partitions:
            raise ValueError("need at least one partition")
        self.partitions = sorted(partitions, key=lambda p: p.host)
        self.num_hosts = len(self.partitions)
        self.num_global_nodes = self.partitions[0].num_global_nodes
        self.local_graphs = [
            Graph.from_edges(
                part.edges_local[0],
                part.edges_local[1],
                part.num_local,
                edge_data=part.edge_data,
            )
            for part in self.partitions
        ]

    @classmethod
    def build(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        num_nodes: int,
        num_hosts: int,
        policy: str = "oec",
        edge_data: np.ndarray | None = None,
    ) -> "DistGraph":
        """Partition an edge list and materialize the per-host graphs."""
        parts = partition_edges(
            src, dst, num_nodes, num_hosts, policy=policy, edge_data=edge_data
        )
        return cls(parts)

    # -- label management ------------------------------------------------------
    def new_label(self, fill, dtype=np.float64, width: int = 1) -> list[np.ndarray]:
        """Allocate one label array per host, indexed by local node id."""
        out = []
        for part in self.partitions:
            shape = (part.num_local,) if width == 1 else (part.num_local, width)
            out.append(np.full(shape, fill, dtype=dtype))
        return out

    def new_updated_bitvectors(self) -> list[BitVector]:
        return [BitVector(part.num_local) for part in self.partitions]

    # -- global <-> local views ------------------------------------------------
    def gather_masters(self, label: Sequence[np.ndarray]) -> np.ndarray:
        """Assemble the canonical (master) value of every global node."""
        first = np.asarray(label[0])
        shape = (self.num_global_nodes,) + first.shape[1:]
        out = np.empty(shape, dtype=first.dtype)
        filled = np.zeros(self.num_global_nodes, dtype=bool)
        for part, arr in zip(self.partitions, label):
            masters = part.masters_local()
            gids = part.local_to_global[masters]
            out[gids] = arr[masters]
            filled[gids] = True
        if not filled.all():
            missing = np.nonzero(~filled)[0][:5]
            raise RuntimeError(f"nodes without masters, e.g. {missing.tolist()}")
        return out

    def total_replication_factor(self) -> float:
        """Average proxies per node across hosts (paper's replication factor)."""
        total = sum(p.num_local for p in self.partitions)
        return total / float(self.num_global_nodes)

    def __repr__(self) -> str:
        edges = sum(g.num_edges for g in self.local_graphs)
        return (
            f"DistGraph(hosts={self.num_hosts}, nodes={self.num_global_nodes}, "
            f"edges={edges}, rf={self.total_replication_factor():.2f})"
        )
