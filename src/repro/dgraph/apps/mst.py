"""Minimum spanning forest by distributed Borůvka rounds.

Borůvka's algorithm is the classic BSP-friendly MST method: every round,
each component selects its minimum-weight outgoing edge; all selected edges
join the forest and their endpoint components merge; O(log V) rounds.

Distribution here follows the replicated-label pattern GraphWord2Vec uses
for its model: every host keeps the full component-label array (identical
on all hosts), scans *its own* edge partition for per-component candidate
edges, and ships the candidates to a coordinator that reduces them to the
global per-component minima and broadcasts the chosen edges; every host
then applies the same merges deterministically.  Ties break on
(weight, src, dst) so the result is unique regardless of host count.

Input should be an undirected graph given with both edge directions (as for
connected components); each undirected edge is counted once in the forest
weight.
"""

from __future__ import annotations

import numpy as np

from repro.dgraph.dist_graph import DistGraph
from repro.gluon.comm import ID_BYTES, VALUE_BYTES, SimulatedNetwork

__all__ = ["minimum_spanning_forest", "SpanningForest"]

# Candidate wire record: component id + weight + two endpoint ids.
_CANDIDATE_BYTES = ID_BYTES + VALUE_BYTES + 2 * ID_BYTES


class SpanningForest:
    """Result of :func:`minimum_spanning_forest`."""

    def __init__(self, edges: list[tuple[int, int, float]], components: np.ndarray):
        #: Chosen undirected edges as (u, v, weight), u < v, sorted.
        self.edges = sorted((min(u, v), max(u, v), w) for u, v, w in edges)
        #: Final component label per node (root = smallest node id).
        self.components = components

    @property
    def total_weight(self) -> float:
        return float(sum(w for _u, _v, w in self.edges))

    @property
    def num_trees(self) -> int:
        return int(len(np.unique(self.components)))


def minimum_spanning_forest(
    dist_graph: DistGraph,
    network: SimulatedNetwork | None = None,
    max_rounds: int = 100,
) -> SpanningForest:
    """Borůvka MSF over the (undirected, symmetric) distributed graph.

    Edge weights come from ``edge_data`` (1.0 if absent).  Returns the
    forest (spanning tree per connected component).
    """
    H = dist_graph.num_hosts
    net = network or SimulatedNetwork(H)
    N = dist_graph.num_global_nodes
    comp = np.arange(N, dtype=np.int64)  # replicated on all hosts

    # Per-host global-id edge views (computed once).
    host_edges = []
    for part in dist_graph.partitions:
        src_l, dst_l = part.edges_local
        src_g = part.local_to_global[src_l]
        dst_g = part.local_to_global[dst_l]
        if part.edge_data is not None:
            weights = np.asarray(part.edge_data, dtype=np.float64)
        else:
            weights = np.ones(len(src_g))
        host_edges.append((src_g, dst_g, weights))

    chosen_edges: list[tuple[int, int, float]] = []
    for _round in range(max_rounds):
        # 1. Local candidate selection: per component, the minimum outgoing
        #    edge among this host's edges (ties: weight, then endpoints).
        all_candidates: dict[int, tuple[float, int, int]] = {}

        def better(a: tuple[float, int, int], b: tuple[float, int, int]) -> bool:
            return a < b  # lexicographic (weight, u, v)

        messages = []
        for host, (src_g, dst_g, weights) in enumerate(host_edges):
            cu = comp[src_g]
            cv = comp[dst_g]
            outgoing = cu != cv
            local: dict[int, tuple[float, int, int]] = {}
            for u, v, w, c in zip(
                src_g[outgoing], dst_g[outgoing], weights[outgoing], cu[outgoing]
            ):
                key = (float(w), int(min(u, v)), int(max(u, v)))
                if int(c) not in local or better(key, local[int(c)]):
                    local[int(c)] = key
            messages.append(local)

        # 2. Reduce at the coordinator (host 0): global minimum per
        #    component.  Hosts other than 0 ship their candidate tables.
        with net.phase("mst-candidates"):
            for host in range(1, H):
                if messages[host]:
                    net.send(
                        host, 0, len(messages[host]) * _CANDIDATE_BYTES,
                        payload=messages[host],
                    )
        merged: dict[int, tuple[float, int, int]] = dict(messages[0])
        for _src, payload in net.drain(0):
            for c in sorted(payload):
                key = payload[c]
                if c not in merged or better(key, merged[c]):
                    merged[c] = key
        if not merged:
            break

        # Deduplicate: one undirected edge may be the minimum of both its
        # endpoint components.
        chosen = sorted({merged[c] for c in sorted(merged)})
        # 3. Broadcast the chosen edge set to every host.
        with net.phase("mst-broadcast"):
            for host in range(1, H):
                net.send(0, host, len(chosen) * _CANDIDATE_BYTES, payload=chosen)
        for host in range(1, H):
            net.drain(host)

        # 4. Every host applies the identical merges: union the endpoint
        #    components (hook to the smaller root), then flatten labels.
        parent = np.arange(N, dtype=np.int64)

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = int(parent[x])
            return x

        for w, u, v in chosen:
            ru, rv = find(int(comp[u])), find(int(comp[v]))
            if ru != rv:
                lo, hi = min(ru, rv), max(ru, rv)
                parent[hi] = lo
                chosen_edges.append((u, v, w))
        roots = np.array([find(int(c)) for c in comp], dtype=np.int64)
        comp = roots
    else:
        raise RuntimeError(f"Borůvka did not converge in {max_rounds} rounds")

    return SpanningForest(chosen_edges, comp)
