"""Single-source shortest paths.

Two implementations mirroring the paper's background discussion:

- :func:`sssp_bellman_ford` — topology/data-driven BSP algorithm on a
  :class:`~repro.dgraph.dist_graph.DistGraph`, synchronizing distance labels
  through Gluon with a min reduction — the distributed formulation.
- :func:`sssp_delta_stepping` — shared-memory delta-stepping on a single
  :class:`~repro.dgraph.graph.Graph` using the OBIM priority worklist — the
  data-driven formulation.
"""

from __future__ import annotations

import numpy as np

from repro.dgraph.bsp import BSPEngine
from repro.dgraph.dist_graph import DistGraph
from repro.dgraph.graph import Graph
from repro.galois.worklist import OrderedByIntegerMetric
from repro.gluon.comm import SimulatedNetwork
from repro.gluon.sync import GluonSynchronizer

__all__ = ["sssp_bellman_ford", "sssp_delta_stepping"]

INF = np.inf


def sssp_bellman_ford(
    dist_graph: DistGraph,
    source: int,
    network: SimulatedNetwork | None = None,
    max_rounds: int = 10_000,
) -> np.ndarray:
    """Distributed BSP Bellman-Ford; returns global distances (float64).

    Edge weights come from the graph's ``edge_data`` (1.0 if absent).  Each
    round every host relaxes the out-edges of its active nodes, marks
    improved labels in the updated bit-vector, and Gluon reduces mirrors into
    masters with ``min`` then broadcasts improvements.
    """
    if not 0 <= source < dist_graph.num_global_nodes:
        raise ValueError(f"source {source} out of range")
    net = network or SimulatedNetwork(dist_graph.num_hosts)
    synchronizer = GluonSynchronizer(dist_graph.partitions, net)
    dist = dist_graph.new_label(INF, dtype=np.float64)
    updated = dist_graph.new_updated_bitvectors()

    active: list[set[int]] = [set() for _ in range(dist_graph.num_hosts)]
    for part, d in zip(dist_graph.partitions, dist):
        if part.has_proxy(source):
            local = part.to_local(source)
            d[local] = 0.0
            active[part.host].add(local)

    def compute(host: int, round_index: int) -> int:
        work = active[host]
        if not work:
            return 0
        nodes = np.fromiter(work, dtype=np.int64, count=len(work))
        active[host] = set()
        graph = dist_graph.local_graphs[host]
        srcs, dsts, weights = graph.edge_slices(nodes)
        if srcs.size == 0:
            return len(nodes)
        w = weights if weights is not None else np.ones(len(srcs))
        cand = dist[host][srcs] + w
        before = dist[host][dsts].copy()
        np.minimum.at(dist[host], dsts, cand)
        improved = np.unique(dsts[dist[host][dsts] < before])
        if improved.size:
            updated[host].set_many(improved)
            active[host].update(int(i) for i in improved)
        return len(nodes)

    def sync():
        result = synchronizer.sync_value("dist", dist, updated, np.minimum)
        for host, changed in enumerate(result.changed_local):
            active[host].update(int(c) for c in changed)
        return result

    engine = BSPEngine(dist_graph.num_hosts, max_rounds=max_rounds)
    engine.run(compute, sync, work_pending=lambda h: bool(active[h]))
    return dist_graph.gather_masters(dist)


def sssp_delta_stepping(graph: Graph, source: int, delta: float = 1.0) -> np.ndarray:
    """Shared-memory delta-stepping on the OBIM worklist.

    A soft-priority variant: work proceeds bucket by bucket (bucket =
    ``floor(dist / delta)``); stale entries (node re-queued after a better
    distance arrived) are skipped on pop.
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    if not 0 <= source < graph.num_nodes:
        raise ValueError(f"source {source} out of range")
    dist = np.full(graph.num_nodes, INF)
    dist[source] = 0.0
    worklist: OrderedByIntegerMetric[tuple[int, float]] = OrderedByIntegerMetric(
        lambda item: int(item[1] // delta)
    )
    worklist.push((source, 0.0))
    while not worklist.empty():
        _prio, items = worklist.pop_bin()
        for node, seen_dist in items:
            if seen_dist > dist[node]:
                continue  # stale entry
            neighbors = graph.out_neighbors(node)
            if neighbors.size == 0:
                continue
            weights = (
                graph.out_edge_data(node)
                if graph.edge_data is not None
                else np.ones(len(neighbors))
            )
            cand = dist[node] + weights
            better = cand < dist[neighbors]
            for v, dv in zip(neighbors[better], cand[better]):
                if dv < dist[v]:  # re-check: duplicates in the slice
                    dist[v] = dv
                    worklist.push((int(v), float(dv)))
    return dist
