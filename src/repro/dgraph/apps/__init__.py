"""Classic distributed graph-analytics applications (paper §2.4).

These validate the Galois/Gluon substrate independently of Word2Vec: they
exercise partitioning, label synchronization with value reductions, BSP
quiescence, and (for delta-stepping) the priority worklist.
"""

from repro.dgraph.apps.bfs import bfs_levels
from repro.dgraph.apps.cc import connected_components
from repro.dgraph.apps.kcore import kcore
from repro.dgraph.apps.mst import SpanningForest, minimum_spanning_forest
from repro.dgraph.apps.pagerank import pagerank
from repro.dgraph.apps.sssp import sssp_bellman_ford, sssp_delta_stepping
from repro.dgraph.apps.triangles import count_triangles

__all__ = [
    "bfs_levels",
    "connected_components",
    "count_triangles",
    "kcore",
    "minimum_spanning_forest",
    "SpanningForest",
    "pagerank",
    "sssp_bellman_ford",
    "sssp_delta_stepping",
]
