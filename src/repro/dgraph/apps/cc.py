"""Distributed connected components by label propagation.

Every node starts labeled with its own global id; each BSP round active
nodes push their label to neighbors, keeping the minimum; Gluon reduces
mirror labels into masters with ``min`` and broadcasts improvements.  At
quiescence every node carries the smallest global id in its (weakly
interpreted as undirected — build the graph with symmetric edges) component.
"""

from __future__ import annotations

import numpy as np

from repro.dgraph.bsp import BSPEngine
from repro.dgraph.dist_graph import DistGraph
from repro.gluon.comm import SimulatedNetwork
from repro.gluon.sync import GluonSynchronizer

__all__ = ["connected_components"]


def connected_components(
    dist_graph: DistGraph,
    network: SimulatedNetwork | None = None,
    max_rounds: int = 10_000,
) -> np.ndarray:
    """Component label (minimum global id) per global node.

    The input should contain both directions of every undirected edge;
    otherwise labels only flow along edge direction and the result is not a
    connected-components labeling.
    """
    net = network or SimulatedNetwork(dist_graph.num_hosts)
    synchronizer = GluonSynchronizer(dist_graph.partitions, net)
    labels = [
        part.local_to_global.astype(np.float64).copy()
        for part in dist_graph.partitions
    ]
    updated = dist_graph.new_updated_bitvectors()
    active: list[set[int]] = [
        set(range(part.num_local)) for part in dist_graph.partitions
    ]

    def compute(host: int, round_index: int) -> int:
        work = active[host]
        if not work:
            return 0
        nodes = np.fromiter(work, dtype=np.int64, count=len(work))
        active[host] = set()
        graph = dist_graph.local_graphs[host]
        srcs, dsts, _ = graph.edge_slices(nodes)
        if srcs.size == 0:
            return len(nodes)
        cand = labels[host][srcs]
        before = labels[host][dsts].copy()
        np.minimum.at(labels[host], dsts, cand)
        improved = np.unique(dsts[labels[host][dsts] < before])
        if improved.size:
            updated[host].set_many(improved)
            active[host].update(int(i) for i in improved)
        return len(nodes)

    def sync():
        result = synchronizer.sync_value("component", labels, updated, np.minimum)
        for host, changed in enumerate(result.changed_local):
            active[host].update(int(c) for c in changed)
        return result

    engine = BSPEngine(dist_graph.num_hosts, max_rounds=max_rounds)
    engine.run(compute, sync, work_pending=lambda h: bool(active[h]))
    return dist_graph.gather_masters(labels).astype(np.int64)
