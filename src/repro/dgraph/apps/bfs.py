"""Breadth-first search levels, distributed.

The simplest BSP graph application: level-synchronous BFS where the
frontier advances one hop per round and Gluon's min-reduction reconciles
level labels across proxies.  Functionally sssp with unit weights, but
implemented frontier-style (the classic formulation) and useful as the
minimal example of the BSP driver.
"""

from __future__ import annotations

import numpy as np

from repro.dgraph.bsp import BSPEngine
from repro.dgraph.dist_graph import DistGraph
from repro.gluon.comm import SimulatedNetwork
from repro.gluon.sync import GluonSynchronizer

__all__ = ["bfs_levels"]


def bfs_levels(
    dist_graph: DistGraph,
    source: int,
    network: SimulatedNetwork | None = None,
    max_rounds: int = 10_000,
) -> np.ndarray:
    """Hop distance from ``source`` per global node (inf if unreachable)."""
    if not 0 <= source < dist_graph.num_global_nodes:
        raise ValueError(f"source {source} out of range")
    net = network or SimulatedNetwork(dist_graph.num_hosts)
    synchronizer = GluonSynchronizer(dist_graph.partitions, net)
    level = dist_graph.new_label(np.inf, dtype=np.float64)
    updated = dist_graph.new_updated_bitvectors()
    frontier: list[set[int]] = [set() for _ in range(dist_graph.num_hosts)]
    for part, lv in zip(dist_graph.partitions, level):
        if part.has_proxy(source):
            local = part.to_local(source)
            lv[local] = 0.0
            frontier[part.host].add(local)

    def compute(host: int, _round: int) -> int:
        work = frontier[host]
        if not work:
            return 0
        nodes = np.fromiter(work, dtype=np.int64, count=len(work))
        frontier[host] = set()
        graph = dist_graph.local_graphs[host]
        srcs, dsts, _ = graph.edge_slices(nodes)
        if srcs.size == 0:
            return len(nodes)
        cand = level[host][srcs] + 1.0
        before = level[host][dsts].copy()
        np.minimum.at(level[host], dsts, cand)
        improved = np.unique(dsts[level[host][dsts] < before])
        if improved.size:
            updated[host].set_many(improved)
            frontier[host].update(int(i) for i in improved)
        return len(nodes)

    def sync():
        result = synchronizer.sync_value("level", level, updated, np.minimum)
        for host, changed in enumerate(result.changed_local):
            frontier[host].update(int(c) for c in changed)
        return result

    engine = BSPEngine(dist_graph.num_hosts, max_rounds=max_rounds)
    engine.run(compute, sync, work_pending=lambda h: bool(frontier[h]))
    return dist_graph.gather_masters(level)
