"""k-core decomposition, distributed.

A node belongs to the k-core if it survives iterated removal of all nodes
with degree < k.  BSP formulation: each round every live node recomputes
its degree over live neighbors; nodes dropping below ``k`` die and
broadcast their death (a flag label with a min-reduction: alive=1, dead=0).
Quiesces when no node dies in a round.

Operates on the *undirected* interpretation: build the graph with both
edge directions.
"""

from __future__ import annotations

import numpy as np

from repro.dgraph.dist_graph import DistGraph
from repro.gluon.comm import SimulatedNetwork
from repro.gluon.sync import GluonSynchronizer

__all__ = ["kcore"]


def kcore(
    dist_graph: DistGraph,
    k: int,
    network: SimulatedNetwork | None = None,
    max_rounds: int = 10_000,
) -> np.ndarray:
    """Boolean mask over global nodes: member of the k-core."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    net = network or SimulatedNetwork(dist_graph.num_hosts)
    synchronizer = GluonSynchronizer(dist_graph.partitions, net)
    alive = dist_graph.new_label(1.0, dtype=np.float64)
    updated = dist_graph.new_updated_bitvectors()

    # Global degree: edges are partitioned disjointly; count by global src.
    N = dist_graph.num_global_nodes
    degree = np.zeros(N, dtype=np.int64)
    for part in dist_graph.partitions:
        srcs_global = part.local_to_global[part.edges_local[0]]
        np.add.at(degree, srcs_global, 1)

    for _round in range(max_rounds):
        alive_global = dist_graph.gather_masters(alive) > 0.5
        # Live degree: count live neighbors of each live node.
        live_degree = np.zeros(N, dtype=np.int64)
        for part in dist_graph.partitions:
            src_l, dst_l = part.edges_local
            src_g = part.local_to_global[src_l]
            dst_g = part.local_to_global[dst_l]
            mask = alive_global[src_g] & alive_global[dst_g]
            np.add.at(live_degree, src_g[mask], 1)
        deaths = alive_global & (live_degree < k)
        if not deaths.any():
            break
        death_ids = np.nonzero(deaths)[0]
        for part, a in zip(dist_graph.partitions, alive):
            present = [g for g in death_ids if part.has_proxy(int(g))]
            if not present:
                continue
            rows = part.to_local_array(np.array(present))
            a[rows] = 0.0
            owners = part.master_host_of(np.array(present))
            own_rows = rows[owners == part.host]
            if own_rows.size:
                updated[part.host].set_many(own_rows)
        synchronizer.sync_value("alive", alive, updated, np.minimum)
    else:
        raise RuntimeError(f"k-core did not quiesce in {max_rounds} rounds")

    return dist_graph.gather_masters(alive) > 0.5
