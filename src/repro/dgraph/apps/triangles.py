"""Triangle counting, distributed.

Node-iterator algorithm over the undirected graph oriented by node id:
a triangle u < v < w is counted once at its lowest-id vertex by
intersecting forward adjacency lists.  Hosts count triangles whose lowest
vertex falls in their master block using a shared forward-adjacency view
built from the disjoint edge partitions (each host contributes its local
edges once), so the count is exact.
"""

from __future__ import annotations

import numpy as np

from repro.dgraph.dist_graph import DistGraph
from repro.dgraph.graph import Graph

__all__ = ["count_triangles"]


def count_triangles(dist_graph: DistGraph) -> int:
    """Exact global triangle count of the undirected input graph.

    The input :class:`DistGraph` should contain both directions of every
    undirected edge (as for connected components); duplicates and self
    loops are ignored.
    """
    N = dist_graph.num_global_nodes
    # Assemble the oriented edge set (u < v) from the disjoint partitions.
    forward_src: list[np.ndarray] = []
    forward_dst: list[np.ndarray] = []
    for part in dist_graph.partitions:
        src_l, dst_l = part.edges_local
        src_g = part.local_to_global[src_l]
        dst_g = part.local_to_global[dst_l]
        mask = src_g < dst_g
        forward_src.append(src_g[mask])
        forward_dst.append(dst_g[mask])
    src = np.concatenate(forward_src) if forward_src else np.empty(0, np.int64)
    dst = np.concatenate(forward_dst) if forward_dst else np.empty(0, np.int64)
    if src.size == 0:
        return 0
    # Deduplicate (undirected inputs carry both directions -> one survives).
    edge_keys = np.unique(src * N + dst)
    src = edge_keys // N
    dst = edge_keys % N
    forward = Graph.from_edges(src, dst, N)

    # Each host counts triangles rooted in its master block; sorted
    # adjacency + np.intersect1d does the neighborhood intersections.
    adjacency = [np.sort(forward.out_neighbors(u)) for u in range(N)]
    total = 0
    for part in dist_graph.partitions:
        lo, hi = part.master_bounds[part.host], part.master_bounds[part.host + 1]
        for u in range(int(lo), int(hi)):
            neighbors = adjacency[u]
            for v in neighbors:
                total += np.intersect1d(
                    neighbors, adjacency[int(v)], assume_unique=True
                ).size
    return int(total)
