"""Distributed pull-style PageRank.

Each iteration every host accumulates rank contributions over its local
edges into their destinations.  With the incoming-edge-cut (``iec``)
partition every edge's destination is a locally-owned master, so the local
accumulation is complete and masters can apply the PageRank update directly;
Gluon then broadcasts the new master ranks to the mirror proxies other hosts
read as sources next iteration.
"""

from __future__ import annotations

import numpy as np

from repro.dgraph.dist_graph import DistGraph
from repro.gluon.comm import SimulatedNetwork
from repro.gluon.sync import GluonSynchronizer

__all__ = ["pagerank"]


def pagerank(
    dist_graph: DistGraph,
    alpha: float = 0.85,
    tol: float = 1e-8,
    max_iters: int = 200,
    network: SimulatedNetwork | None = None,
) -> np.ndarray:
    """Global PageRank vector (sums to 1; dangling mass redistributed).

    Requires an ``iec``-partitioned :class:`DistGraph` (asserted): pull-style
    accumulation needs every destination to be locally owned.
    """
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    N = dist_graph.num_global_nodes
    H = dist_graph.num_hosts
    for part, graph in zip(dist_graph.partitions, dist_graph.local_graphs):
        if graph.num_edges:
            dst_owners = part.master_host_of(part.local_to_global[part.edges_local[1]])
            if not np.all(dst_owners == part.host):
                raise ValueError(
                    "pagerank requires an incoming-edge-cut partition "
                    "(DistGraph.build(..., policy='iec'))"
                )

    net = network or SimulatedNetwork(H)
    synchronizer = GluonSynchronizer(dist_graph.partitions, net)

    # Global out-degree: edges are partitioned disjointly, so per-host counts
    # by global source id sum exactly.
    outdeg = np.zeros(N, dtype=np.int64)
    for part in dist_graph.partitions:
        srcs_global = part.local_to_global[part.edges_local[0]]
        np.add.at(outdeg, srcs_global, 1)

    rank = dist_graph.new_label(1.0 / N, dtype=np.float64)
    updated = dist_graph.new_updated_bitvectors()

    for _iteration in range(max_iters):
        rank_global = dist_graph.gather_masters(rank)
        dangling = float(rank_global[outdeg == 0].sum())
        max_delta = 0.0
        for part, graph, r in zip(
            dist_graph.partitions, dist_graph.local_graphs, rank
        ):
            acc = np.zeros(part.num_local, dtype=np.float64)
            if graph.num_edges:
                src_l, dst_l = part.edges_local
                src_g = part.local_to_global[src_l]
                contrib = r[src_l] / outdeg[src_g]
                np.add.at(acc, dst_l, contrib)
            masters = part.masters_local()
            new_rank = (1.0 - alpha) / N + alpha * (acc[masters] + dangling / N)
            delta = np.abs(new_rank - r[masters])
            if delta.size:
                max_delta = max(max_delta, float(delta.max()))
            r[masters] = new_rank
            updated[part.host].set_many(masters)
        synchronizer.sync_value("rank", rank, updated, lambda a, b: b)
        if max_delta < tol:
            break

    return dist_graph.gather_masters(rank)
