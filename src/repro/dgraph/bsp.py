"""Bulk-synchronous-parallel execution driver.

Distributed graph analytics in D-Galois runs in rounds: every host applies
the operator to its partition (computation), then all hosts synchronize
labels through Gluon (communication), until global quiescence.  The
:class:`BSPEngine` encodes that loop once so applications only provide the
per-host compute function and the sync call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.gluon.sync import ValueSyncResult

__all__ = ["BSPEngine", "RoundStats"]


@dataclass
class RoundStats:
    """One BSP round's outcome."""

    round_index: int
    local_work: int  # items processed across hosts this round
    sync_changed: bool


class BSPEngine:
    """Round loop with global quiescence detection.

    ``compute(host, round_index) -> int`` performs host-local work and
    returns the number of items it processed; ``sync() -> ValueSyncResult``
    performs the Gluon synchronization.  The loop terminates when a round
    does no local work anywhere *and* synchronization changes nothing
    (the distributed termination condition of topology/data-driven
    algorithms), or when ``max_rounds`` is hit.
    """

    def __init__(self, num_hosts: int, max_rounds: int = 10_000):
        if num_hosts <= 0:
            raise ValueError(f"num_hosts must be positive, got {num_hosts}")
        if max_rounds <= 0:
            raise ValueError(f"max_rounds must be positive, got {max_rounds}")
        self.num_hosts = num_hosts
        self.max_rounds = max_rounds
        self.history: list[RoundStats] = []

    def run(
        self,
        compute: Callable[[int, int], int],
        sync: Callable[[], ValueSyncResult],
        work_pending: Callable[[int], bool] | None = None,
    ) -> int:
        """Execute rounds to quiescence; returns the number of rounds run."""
        self.history.clear()
        for round_index in range(self.max_rounds):
            local_work = 0
            for host in range(self.num_hosts):
                local_work += int(compute(host, round_index))
            result = sync()
            stats = RoundStats(
                round_index=round_index,
                local_work=local_work,
                sync_changed=result.any_changed,
            )
            self.history.append(stats)
            pending = (
                any(work_pending(h) for h in range(self.num_hosts))
                if work_pending is not None
                else False
            )
            if local_work == 0 and not result.any_changed and not pending:
                return round_index + 1
        raise RuntimeError(
            f"BSP loop did not quiesce within {self.max_rounds} rounds"
        )
