"""Bulk-synchronous-parallel execution driver.

Distributed graph analytics in D-Galois runs in rounds: every host applies
the operator to its partition (computation), then all hosts synchronize
labels through Gluon (communication), until global quiescence.  The
:class:`BSPEngine` encodes that loop once so applications only provide the
per-host compute function and the sync call.

Fault tolerance.  A :class:`RecoveryPolicy` attaches a
:class:`~repro.cluster.faults.FaultSchedule` to the loop: a host scheduled
to crash loses its round, the engine restores it from the round-boundary
checkpoint the application provides, and the lost compute is replayed
before the barrier — the replay lands on the restored state, so a
deterministic operator converges to the same fixpoint as a fault-free run.
Transient message faults (drops/corruption) are retried with backoff
*inside* the synchronization phase; attach
``schedule.message_injector()`` to the application's
:class:`~repro.gluon.comm.SimulatedNetwork` to enable them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster.faults import FaultReport, FaultSchedule
from repro.gluon.sync import ValueSyncResult

__all__ = ["BSPEngine", "RoundStats", "RecoveryPolicy"]


@dataclass
class RoundStats:
    """One BSP round's outcome."""

    round_index: int
    local_work: int  # items processed across hosts this round
    sync_changed: bool
    #: Hosts that crashed this round and were recovered (empty when none).
    crashed_hosts: tuple[int, ...] = ()


@dataclass
class RecoveryPolicy:
    """Checkpoint-based fail-stop recovery for the BSP loop.

    ``checkpoint()`` captures the application state at a round boundary
    (called only on rounds with a scheduled crash); ``restore(state,
    host)`` rebuilds the crashed host's partition from it.  The engine
    then *redistributes* the lost round: the dead host's work item is
    replayed via the ordinary compute callable on the restored state.
    Costs are tallied into :attr:`report`.
    """

    schedule: FaultSchedule
    checkpoint: Callable[[], Any]
    restore: Callable[[Any, int], None]
    report: FaultReport = field(default_factory=FaultReport)


class BSPEngine:
    """Round loop with global quiescence detection.

    ``compute(host, round_index) -> int`` performs host-local work and
    returns the number of items it processed; ``sync() -> ValueSyncResult``
    performs the Gluon synchronization.  The loop terminates when a round
    does no local work anywhere *and* synchronization changes nothing
    (the distributed termination condition of topology/data-driven
    algorithms), or when ``max_rounds`` is hit.
    """

    def __init__(
        self,
        num_hosts: int,
        max_rounds: int = 10_000,
        recovery: RecoveryPolicy | None = None,
        sync_checker: Any | None = None,
    ):
        """``sync_checker`` (a
        :class:`~repro.analysis.runtime.GluonSyncChecker`) observes each
        round's outcome for protocol violations — e.g. a synchronization
        that changes labels in a round where no host did local work."""
        if num_hosts <= 0:
            raise ValueError(f"num_hosts must be positive, got {num_hosts}")
        if max_rounds <= 0:
            raise ValueError(f"max_rounds must be positive, got {max_rounds}")
        if recovery is not None and recovery.schedule.num_hosts != num_hosts:
            raise ValueError(
                f"fault schedule built for {recovery.schedule.num_hosts} hosts, "
                f"engine has {num_hosts}"
            )
        self.num_hosts = num_hosts
        self.max_rounds = max_rounds
        self.recovery = recovery
        self.sync_checker = sync_checker
        self.history: list[RoundStats] = []

    def run(
        self,
        compute: Callable[[int, int], int],
        sync: Callable[[], ValueSyncResult],
        work_pending: Callable[[int], bool] | None = None,
    ) -> int:
        """Execute rounds to quiescence; returns the number of rounds run."""
        self.history.clear()
        policy = self.recovery
        for round_index in range(self.max_rounds):
            crashes = (
                policy.schedule.crashes_at(0, round_index)
                if policy is not None
                else ()
            )
            crashed = tuple(sorted(ev.host for ev in crashes))
            snapshot = policy.checkpoint() if crashes else None

            local_work = 0
            for host in range(self.num_hosts):
                if host in crashed:
                    continue  # lost mid-round; replayed below
                local_work += int(compute(host, round_index))

            if crashes:
                config = policy.schedule.config
                for ev in crashes:
                    policy.report.crashes += 1
                    policy.report.detect_s += config.detect_timeout_s
                    policy.restore(snapshot, ev.host)
                    # Redistribute the lost round: replay on restored state.
                    local_work += int(compute(ev.host, round_index))

            result = sync()
            if self.sync_checker is not None:
                self.sync_checker.observe_bsp_round(round_index, local_work, result)
            stats = RoundStats(
                round_index=round_index,
                local_work=local_work,
                sync_changed=result.any_changed,
                crashed_hosts=crashed,
            )
            self.history.append(stats)
            pending = (
                any(work_pending(h) for h in range(self.num_hosts))
                if work_pending is not None
                else False
            )
            if local_work == 0 and not result.any_changed and not pending:
                return round_index + 1
        raise RuntimeError(
            f"BSP loop did not quiesce within {self.max_rounds} rounds"
        )
