"""The execution-engine seam: BSP and bounded-staleness engines behind one protocol.

Two engine families share this module:

- :class:`Engine` — the structural protocol of the *value-mode* round loop
  (:class:`~repro.dgraph.bsp.BSPEngine` satisfies it), so graph-analytics
  applications can be written against the seam instead of the concrete BSP
  driver.
- :class:`TrainingEngine` — the seam :class:`~repro.w2v.distributed.
  GraphWord2Vec` trains through.  :class:`BSPTrainingEngine` houses the
  classic barrier-synchronous epoch/round loop (previously inlined in the
  trainer); :class:`~repro.dgraph.async_engine.SSPTrainingEngine` runs the
  same rounds under a bounded-staleness clock.  Trainer code never imports
  either concretely — it calls :func:`resolve_training_engine`.

The delay-compensation arithmetic of the parameter-server baseline
(:mod:`repro.baselines.param_server`) lives here as :func:`compensate_delta`
so the async engine can offer the same correction as a comparator
configuration (``delay_compensation=λ``) without duplicating the formula.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.w2v.distributed import GraphWord2Vec
    from repro.w2v.model import Word2VecModel

__all__ = [
    "Engine",
    "TrainingEngine",
    "BSPTrainingEngine",
    "resolve_training_engine",
    "compensate_delta",
]


@runtime_checkable
class Engine(Protocol):
    """Structural protocol of a value-mode execution driver.

    ``compute(host, round_index) -> int`` does host-local work;
    ``sync()`` performs the Gluon synchronization; the driver owns the
    round loop and the recovery policy.  :class:`~repro.dgraph.bsp.
    BSPEngine` is the canonical implementation.
    """

    num_hosts: int
    history: list

    def run(
        self,
        compute: Callable[[int, int], int],
        sync: Callable[[], Any],
        work_pending: Callable[[int], bool] | None = None,
    ) -> int: ...


def compensate_delta(
    delta: np.ndarray, drift: np.ndarray, lam: float, lr: float
) -> np.ndarray:
    """Zheng et al.'s delay compensation in delta form (paper ref [29]).

    With the diagonal Hessian approximation ∂²L/∂w² ≈ c·g·gᵀ, a gradient
    delayed past model drift ``w_now − w_stale`` is corrected by
    ``g_comp = g + λ·g⊙g⊙drift``; for an aggregated delta ``δ = −α·g``
    that is ``δ_comp = δ − (λ/α)·δ⊙δ⊙drift``.  ``lam == 0`` returns
    ``delta`` unchanged (bit-identical no-compensation path).
    """
    if lam <= 0:
        return delta
    scale = lam / max(lr, 1e-12)
    return delta - scale * delta * delta * drift


class TrainingEngine(ABC):
    """Round-loop driver for :class:`~repro.w2v.distributed.GraphWord2Vec`.

    An engine owns *when* rounds execute and fold (the clock model); the
    trainer owns *what* a round is (work generation, kernels, comm plans,
    recovery bookkeeping).  ``run`` executes all rounds from the trainer's
    current barrier position up to ``stop_epoch``/``until_round`` and
    returns the modeled makespan of the executed span in seconds — or
    ``None`` to use the default barrier makespan (sum over rounds of the
    slowest host), which is exact for BSP.
    """

    name: str = "abstract"
    #: Rounds a host may lead the slowest host by (0 = barrier-synchronous).
    staleness: int = 0
    #: Delay-compensation λ applied to stale contributions at fold time.
    delay_compensation: float = 0.0

    @abstractmethod
    def run(
        self,
        trainer: "GraphWord2Vec",
        stop_epoch: int,
        until_round: int | None,
        epoch_callback: Callable[[int, "Word2VecModel"], None] | None,
    ) -> float | None:
        """Execute rounds; returns the span's modeled makespan (or None)."""


class BSPTrainingEngine(TrainingEngine):
    """The classic barrier-synchronous loop: every round is a global barrier.

    Hosts compute, recover, inspect and synchronize in lock-step; the
    modeled wall-clock of a round is the slowest host's time, so the
    default barrier makespan is exact and ``run`` returns ``None``.
    """

    name = "bsp"

    def run(
        self,
        trainer: "GraphWord2Vec",
        stop_epoch: int,
        until_round: int | None,
        epoch_callback: Callable[[int, "Word2VecModel"], None] | None,
    ) -> float | None:
        params = trainer.params
        for epoch in range(trainer._completed_epochs, stop_epoch):
            lr = params.learning_rate_for_epoch(epoch)
            paused = False
            for s in range(trainer._completed_rounds, trainer.sync_rounds):
                if (
                    until_round is not None
                    and epoch * trainer.sync_rounds + s >= until_round
                ):
                    paused = True
                    break
                trainer._partial_pairs += trainer._run_round(epoch, s, lr)
                trainer._completed_rounds = s + 1
            if paused:
                break
            trainer._roll_epoch(epoch, epoch_callback)
        return None


def resolve_training_engine(
    engine: str | TrainingEngine,
    staleness: int = 0,
    delay_compensation: float = 0.0,
) -> TrainingEngine:
    """Instantiate a training engine by name (``"bsp"`` / ``"async"``).

    ``staleness``/``delay_compensation`` parameterize the async engine;
    they must be left at their defaults for ``"bsp"`` (a barrier engine
    has no staleness window to bound or compensate).  A pre-built
    :class:`TrainingEngine` instance passes through unchanged.
    """
    if isinstance(engine, TrainingEngine):
        return engine
    if engine == "bsp":
        if staleness != 0:
            raise ValueError(
                f"staleness={staleness} requires engine='async' (BSP is staleness-0)"
            )
        if delay_compensation != 0.0:
            raise ValueError(
                "delay_compensation requires engine='async' "
                "(BSP folds are never stale)"
            )
        return BSPTrainingEngine()
    if engine in ("async", "ssp"):
        from repro.dgraph.async_engine import SSPTrainingEngine

        return SSPTrainingEngine(
            staleness=staleness, delay_compensation=delay_compensation
        )
    raise ValueError(
        f"unknown engine {engine!r}; available: bsp, async"
    )
