"""Immutable CSR graph.

The in-memory representation used by every graph application and by each
host's local portion of a :class:`~repro.dgraph.dist_graph.DistGraph`.
Stored in compressed sparse row form: ``indptr`` (length N+1) and
``indices`` (length E), with optional per-edge data.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["Graph"]


class Graph:
    """Directed graph in CSR form with optional edge data."""

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        edge_data: np.ndarray | None = None,
    ):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indptr[0] != 0:
            raise ValueError("indptr must be 1-D and start at 0")
        if int(self.indptr[-1]) != len(self.indices):
            raise ValueError(
                f"indptr[-1]={self.indptr[-1]} != num edges {len(self.indices)}"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        self.edge_data = None
        if edge_data is not None:
            self.edge_data = np.asarray(edge_data)
            if len(self.edge_data) != len(self.indices):
                raise ValueError("edge_data length must equal edge count")

    # -- construction --------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        src: Iterable[int] | np.ndarray,
        dst: Iterable[int] | np.ndarray,
        num_nodes: int,
        edge_data: np.ndarray | None = None,
        symmetric: bool = False,
    ) -> "Graph":
        """Build from an edge list; ``symmetric=True`` adds reverse edges."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src/dst length mismatch")
        if src.size and (min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= num_nodes):
            raise ValueError(f"edge endpoint out of range [0, {num_nodes})")
        data = None if edge_data is None else np.asarray(edge_data)
        if symmetric:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
            if data is not None:
                data = np.concatenate([data, data])
        order = np.argsort(src, kind="stable")
        src_sorted, dst_sorted = src[order], dst[order]
        counts = np.bincount(src_sorted, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst_sorted, None if data is None else data[order])

    # -- queries --------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def out_degree(self, node: int | np.ndarray | None = None) -> np.ndarray | int:
        degrees = np.diff(self.indptr)
        if node is None:
            return degrees
        return degrees[node]

    def out_neighbors(self, node: int) -> np.ndarray:
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def out_edge_data(self, node: int) -> np.ndarray:
        if self.edge_data is None:
            raise ValueError("graph has no edge data")
        return self.edge_data[self.indptr[node] : self.indptr[node + 1]]

    def edge_slices(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Flattened (srcs, dsts, data) over the out-edges of ``nodes``.

        Vectorized gather used by the BSP operators: repeats each source for
        its degree and concatenates the adjacency slices.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        starts = self.indptr[nodes]
        stops = self.indptr[nodes + 1]
        lengths = stops - starts
        total = int(lengths.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, (None if self.edge_data is None else self.edge_data[:0])
        # Offsets into the concatenated edge range for each source node.
        edge_idx = np.repeat(starts - np.concatenate(([0], np.cumsum(lengths)[:-1])), lengths) + np.arange(total)
        srcs = np.repeat(nodes, lengths)
        dsts = self.indices[edge_idx]
        data = None if self.edge_data is None else self.edge_data[edge_idx]
        return srcs, dsts, data

    def __repr__(self) -> str:
        return f"Graph(nodes={self.num_nodes}, edges={self.num_edges})"
