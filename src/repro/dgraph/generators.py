"""Synthetic graph generators for tests, benchmarks, and examples.

All return ``(src, dst, num_nodes)`` edge arrays (directed unless stated)
and are deterministic in their seed.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import default_rng

__all__ = ["erdos_renyi", "power_law", "ring", "grid_2d"]


def erdos_renyi(
    num_nodes: int, edge_probability: float, seed: int | None = None
) -> tuple[np.ndarray, np.ndarray, int]:
    """G(n, p) directed graph without self loops."""
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    if not 0 <= edge_probability <= 1:
        raise ValueError(f"edge_probability must be in [0, 1], got {edge_probability}")
    rng = default_rng(seed)
    mask = rng.random((num_nodes, num_nodes)) < edge_probability
    np.fill_diagonal(mask, False)
    src, dst = np.nonzero(mask)
    return src.astype(np.int64), dst.astype(np.int64), num_nodes


def power_law(
    num_nodes: int,
    num_edges: int,
    exponent: float = 1.1,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Skewed graph: uniform sources, Zipf-distributed destinations.

    Produces the hub structure that distinguishes partitioning policies
    (vertex cuts bound hub replication; edge cuts do not).
    """
    if num_nodes <= 0 or num_edges < 0:
        raise ValueError("invalid sizes")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    rng = default_rng(seed)
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    p = ranks**-exponent
    p /= p.sum()
    src = rng.integers(0, num_nodes, num_edges)
    dst = rng.choice(num_nodes, size=num_edges, p=p)
    keep = src != dst
    return src[keep].astype(np.int64), dst[keep].astype(np.int64), num_nodes


def ring(num_nodes: int, symmetric: bool = True) -> tuple[np.ndarray, np.ndarray, int]:
    """Cycle graph 0-1-2-...-0; symmetric adds both directions."""
    if num_nodes < 2:
        raise ValueError(f"ring needs >= 2 nodes, got {num_nodes}")
    src = np.arange(num_nodes, dtype=np.int64)
    dst = (src + 1) % num_nodes
    if symmetric:
        return np.concatenate([src, dst]), np.concatenate([dst, src]), num_nodes
    return src, dst, num_nodes


def grid_2d(
    rows: int, cols: int, symmetric: bool = True
) -> tuple[np.ndarray, np.ndarray, int]:
    """rows x cols lattice with 4-neighborhood edges."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    src_list, dst_list = [], []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                src_list.append(node)
                dst_list.append(node + 1)
            if r + 1 < rows:
                src_list.append(node)
                dst_list.append(node + cols)
    src = np.array(src_list, dtype=np.int64)
    dst = np.array(dst_list, dtype=np.int64)
    if symmetric:
        return np.concatenate([src, dst]), np.concatenate([dst, src]), rows * cols
    return src, dst, rows * cols
