"""D-Galois-style distributed graphs and BSP execution.

GraphWord2Vec is implemented on a distributed graph-analytics framework; to
make the substrate credible independently of Word2Vec, this package provides
CSR graphs, distributed graphs over the :mod:`repro.gluon` partitioner, a
bulk-synchronous execution driver, and the classic applications the paper's
background section describes (sssp via Bellman-Ford and delta-stepping,
PageRank, connected components), all synchronized through Gluon.
"""

from repro.dgraph.bsp import BSPEngine, RecoveryPolicy, RoundStats
from repro.dgraph.dist_graph import DistGraph
from repro.dgraph.graph import Graph

__all__ = ["Graph", "DistGraph", "BSPEngine", "RoundStats", "RecoveryPolicy"]
