"""D-Galois-style distributed graphs, BSP and bounded-staleness execution.

GraphWord2Vec is implemented on a distributed graph-analytics framework; to
make the substrate credible independently of Word2Vec, this package provides
CSR graphs, distributed graphs over the :mod:`repro.gluon` partitioner, a
bulk-synchronous execution driver, and the classic applications the paper's
background section describes (sssp via Bellman-Ford and delta-stepping,
PageRank, connected components), all synchronized through Gluon.

Execution engines live behind two seams (:mod:`repro.dgraph.engine`): the
:class:`Engine` protocol for value-mode drivers (:class:`BSPEngine`), and
:class:`TrainingEngine` for the trainer's round loop —
:class:`BSPTrainingEngine` (lock-step barriers) and
:class:`~repro.dgraph.async_engine.SSPTrainingEngine` (stale-synchronous
parallel with a bounded staleness window).
"""

from repro.dgraph.bsp import BSPEngine, RecoveryPolicy, RoundStats
from repro.dgraph.dist_graph import DistGraph
from repro.dgraph.engine import (
    BSPTrainingEngine,
    Engine,
    TrainingEngine,
    compensate_delta,
    resolve_training_engine,
)
from repro.dgraph.graph import Graph

__all__ = [
    "Graph",
    "DistGraph",
    "BSPEngine",
    "RoundStats",
    "RecoveryPolicy",
    "Engine",
    "TrainingEngine",
    "BSPTrainingEngine",
    "resolve_training_engine",
    "compensate_delta",
]
