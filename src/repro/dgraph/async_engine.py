"""Bounded-staleness (SSP) training engine beside the BSP loop.

The stale-synchronous-parallel engine lets hosts advance their round
clocks independently, up to a staleness bound ``s``: a host may start
global round ``g`` only while ``g - folds_done <= s``, where
``folds_done`` equals the slowest host's completed-round clock (round
``r`` *folds* — reduce + broadcast — the moment every host has finished
it).  ``s = 0`` therefore degrades to the lock-step BSP schedule, and the
engine is built so that degradation is **bit-identical**: same kernels,
same deltas, same combiner arithmetic in the same rotation order, same
wire bytes and message sequence under every communication plan and fault
schedule (pinned by ``tests/test_async_engine.py``).

Determinism story.  The interleaving is not discovered from wall-clock —
it is *recorded*: :func:`build_interleaving` runs a virtual event loop
whose per-step durations come from the trainer's modeled time factors
plus a seed-keyed jitter, producing a causal event list (start / end /
fold) that is a pure function of the seed.  Execution then replays that
list, and the *measured* per-step times are laid back onto the recorded
order to produce the reported makespan.  Replay, checkpointing and crash
recovery all inherit BSP's guarantees because every started round still
folds at a deterministic point of the recorded schedule.

Mirror semantics.  Because hosts run ahead of the fold frontier, the
canonical model can no longer be read off replica master blocks; the
engine owns a dedicated canonical store (``trainer._canonical``) that
only fold arithmetic mutates.  Replicas become bounded-staleness mirrors:
fold broadcasts and PullModel refreshes overwrite rows with canonical
values *plus* the host's still-unfolded buffered deltas on those rows
(read-my-writes), and per-(field, host) pending-stale sets — layered on
the dirty :class:`~repro.gluon.bitvector.BitVector` machinery — drive an
extra ``refresh``/``refresh-request`` phase pair so a host never computes
on a row whose master changed without a broadcast reaching it.  Fold
order across fields is priority-scheduled dirtiest-first through the
galois :class:`~repro.galois.worklist.OrderedByIntegerMetric` worklist
(only when ``s > 0``; at ``s = 0`` the BSP field order is kept so the
transient-fault injector sees the identical send sequence).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
import heapq
import time
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.analysis.runtime import SanitizeError, note_write
from repro.dgraph.engine import TrainingEngine, compensate_delta
from repro.galois.do_all import do_all
from repro.galois.worklist import OrderedByIntegerMetric
from repro.gluon.bitvector import BitVector
from repro.gluon.comm import VALUE_BYTES
from repro.util.rng import keyed_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.w2v.distributed import GraphWord2Vec
    from repro.w2v.model import Word2VecModel
    from repro.w2v.steps import RoundWork

__all__ = [
    "SSPTrainingEngine",
    "ScheduledEvent",
    "AsyncSchedule",
    "AsyncTimeline",
    "build_interleaving",
]

#: BSP synchronizes embedding before training; the s=0 fold keeps this
#: order so the per-round message sequence (and hence the transient-fault
#: injector's draw order) is bit-compatible.
_FIELD_ORDER = ("embedding", "training")


def _empty_ids() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


# ----------------------------------------------------------------------
# Recorded interleaving schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScheduledEvent:
    """One event of the recorded interleaving (virtual time units).

    ``kind`` is ``"start"`` / ``"end"`` (``host`` >= 0) or ``"fold"``
    (``host`` == -1).  ``lead`` is, for starts, how many rounds the host
    led the fold frontier when it began — the quantity the staleness
    bound caps.
    """

    kind: str
    time: float
    round_index: int
    host: int = -1
    lead: int = 0


@dataclass
class AsyncSchedule:
    """A causal, time-ordered event list; a pure function of the seed."""

    num_hosts: int
    start_round: int
    end_round: int
    staleness: int
    events: list[ScheduledEvent] = dc_field(default_factory=list)

    @property
    def max_lead(self) -> int:
        """Largest observed clock lead (<= staleness by construction)."""
        return max((e.lead for e in self.events if e.kind == "start"), default=0)


def build_interleaving(
    num_hosts: int,
    start_round: int,
    end_round: int,
    staleness: int,
    duration: Callable[[int, int], float],
) -> AsyncSchedule:
    """Record the SSP interleaving for rounds ``[start_round, end_round)``.

    A virtual event loop: each idle host starts its next round ``g`` as
    soon as ``g - min(clock) <= staleness`` (``min(clock)`` equals the
    fold frontier — round ``r`` folds at the event that completes it on
    the last host).  ``duration(host, g)`` supplies virtual step lengths;
    ties break by host index, so the event list is deterministic.  The
    returned list is ordered causally: every step appears after exactly
    the folds it observed.
    """
    if num_hosts <= 0:
        raise ValueError(f"num_hosts must be positive, got {num_hosts}")
    if staleness < 0:
        raise ValueError(f"staleness must be >= 0, got {staleness}")
    sched = AsyncSchedule(num_hosts, start_round, end_round, staleness)
    if end_round <= start_round:
        return sched
    events = sched.events
    clock = [start_round] * num_hosts  # completed rounds per host
    running = [False] * num_hosts
    folds_done = start_round
    heap: list[tuple[float, int, int]] = []  # (end_time, host, round)
    ends_count: dict[int, int] = {}

    def try_start(now: float) -> None:
        for h in range(num_hosts):
            if running[h]:
                continue
            g = clock[h]
            if g >= end_round or g - folds_done > staleness:
                continue
            lead = g - folds_done
            events.append(ScheduledEvent("start", now, g, h, lead))
            heapq.heappush(heap, (now + float(duration(h, g)), h, g))
            running[h] = True

    try_start(0.0)
    while heap:
        t, h, g = heapq.heappop(heap)
        events.append(ScheduledEvent("end", t, g, h))
        running[h] = False
        clock[h] = g + 1
        done = ends_count.get(g, 0) + 1
        if done == num_hosts:
            ends_count.pop(g, None)
            folds_done = g + 1
            events.append(ScheduledEvent("fold", t, g))
        else:
            ends_count[g] = done
        try_start(t)
    return sched


# ----------------------------------------------------------------------
# Measured timeline (Chrome trace input)
# ----------------------------------------------------------------------
@dataclass
class AsyncTimeline:
    """Measured-replay timeline of an async run, for the Chrome trace.

    ``steps``: ``(host, round, start_s, dur_s)`` compute slices;
    ``folds``: ``(round, time_s, rec_lo, rec_hi)`` where the record range
    indexes ``network.phase_records`` emitted since the previous fold
    (wave refresh/recovery phases included); ``recoveries``: ``(host,
    round, start_s, dur_s)`` modeled recovery stalls.  Times are absolute
    across multiple ``train()`` calls of the same trainer.
    """

    num_hosts: int
    steps: list = dc_field(default_factory=list)
    folds: list = dc_field(default_factory=list)
    recoveries: list = dc_field(default_factory=list)
    makespan_s: float = 0.0


class _RunState:
    """Per-``run()`` buffers: everything folds drain, keyed by round."""

    def __init__(self, trainer: "GraphWord2Vec", start_fold: int) -> None:
        self.folds_done = start_fold
        # (field, round) -> {host: (ids, delta_f64, drift_base_f64|None)}
        self.contrib: dict[tuple[str, int], dict[int, tuple]] = {}
        self.lr_of: dict[int, float] = {}
        self.compute_buf: dict[int, np.ndarray] = {}
        self.inspect_buf: dict[int, np.ndarray] = {}
        self.recovery_buf: dict[int, np.ndarray] = {}
        self.base_times: dict[int, list[float]] = {}
        self.slow_times: dict[int, list[float]] = {}
        self.pairs_buf: dict[int, int] = {}
        # (host, round) -> modeled compute seconds, for the measured replay.
        self.measured: dict[tuple[int, int], float] = {}
        self.recovery_spans: list[tuple[int, int, float]] = []
        self.dirty: dict[str, BitVector] = {
            name: BitVector(trainer._fields[name].num_nodes)
            for name in _FIELD_ORDER
        }
        self.fold_records: dict[int, tuple[int, int]] = {}
        self.rec_cursor = len(trainer.network.phase_records)

    def round_array(self, table: dict[int, np.ndarray], g: int, H: int) -> np.ndarray:
        arr = table.get(g)
        if arr is None:
            arr = table[g] = np.zeros(H)
        return arr


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class SSPTrainingEngine(TrainingEngine):
    """Stale-synchronous-parallel round driver for :class:`GraphWord2Vec`.

    ``staleness=0`` is bit-identical BSP; ``staleness=s`` lets each host
    run up to ``s`` rounds past the slowest host before blocking.
    ``delay_compensation=λ`` applies :func:`~repro.dgraph.engine.
    compensate_delta` to contributions at fold time (the parameter-server
    baseline's correction, as a comparator configuration).
    """

    name = "async"

    def __init__(self, staleness: int = 0, delay_compensation: float = 0.0):
        if staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness}")
        if delay_compensation < 0:
            raise ValueError(
                f"delay_compensation must be >= 0, got {delay_compensation}"
            )
        self.staleness = int(staleness)
        self.delay_compensation = float(delay_compensation)
        #: The interleaving of the most recent ``run()`` (replay evidence).
        self.last_schedule: AsyncSchedule | None = None

    # -- driver ---------------------------------------------------------
    def run(
        self,
        trainer: "GraphWord2Vec",
        stop_epoch: int,
        until_round: int | None,
        epoch_callback: Callable[[int, "Word2VecModel"], None] | None,
    ) -> float | None:
        S = trainer.sync_rounds
        H = trainer.num_hosts
        g0 = trainer._completed_epochs * S + trainer._completed_rounds
        g1 = stop_epoch * S
        if until_round is not None:
            g1 = min(g1, until_round)
        if g1 <= g0:
            return 0.0
        if trainer._canonical is None:
            model = trainer.canonical_model()
            trainer._canonical = {
                "embedding": model.embedding,
                "training": model.training,
            }
        if trainer._async_state is None:
            trainer._async_state = {"pending_stale": {}, "next_access": {}}
        sched_seed = trainer._seeds.subtree("async-schedule").seed

        def vdur(host: int, g: int) -> float:
            # Modeled speed factors drive the interleaving; the 1% keyed
            # jitter breaks ties on homogeneous clusters so s>0 schedules
            # are generic — and still a pure function of the seed.
            jitter = float(keyed_rng(sched_seed, host, g).random())
            return trainer._time_factor(g // S, g % S, host) * (1.0 + 0.01 * jitter)

        schedule = build_interleaving(H, g0, g1, self.staleness, vdur)
        self.last_schedule = schedule

        run = _RunState(trainer, g0)
        wave: list[ScheduledEvent] = []
        for ev in schedule.events:
            if ev.kind == "start":
                wave.append(ev)
            elif ev.kind == "fold":
                self._flush_wave(trainer, run, wave)
                wave.clear()
                self._fold_round(trainer, run, ev.round_index, epoch_callback)
        assert not wave, "every started round must fold before the schedule ends"
        return self._replay_measured(trainer, run, schedule)

    # -- wave execution -------------------------------------------------
    def _flush_wave(
        self,
        trainer: "GraphWord2Vec",
        run: _RunState,
        wave: list[ScheduledEvent],
    ) -> None:
        """Execute all steps started since the previous fold.

        No fold happens inside a wave, so mirror state is constant except
        for the hosts' own kernels: steps of distinct hosts commute and
        run as per-host chains under the trainer's executor, exactly like
        the BSP compute ``do_all``.  Everything that touches shared state
        (work generation, refresh phases, accounting) runs serially in
        wave order, so results are executor-independent.
        """
        if not wave:
            return
        S = trainer.sync_rounds
        schedule = trainer.fault_schedule
        checker = trainer.sync_checker
        state = trainer._async_state

        # Serial pre-pass: staleness audit, learning rates, crash lookup.
        steps: list[tuple[ScheduledEvent, object]] = []
        for ev in wave:
            e, s = divmod(ev.round_index, S)
            crash = None
            if schedule is not None:
                for cev in schedule.crashes_at(e, s):
                    if cev.host == ev.host:
                        crash = cev
            if checker is not None:
                for fname in _FIELD_ORDER:
                    checker.note_async_step(
                        fname, ev.host, ev.round_index, run.folds_done, self.staleness
                    )
            if ev.round_index not in run.lr_of:
                run.lr_of[ev.round_index] = trainer.params.learning_rate_for_epoch(e)
            steps.append((ev, crash))

        # PullModel refresh: rows a live step will access whose master
        # changed in a fold this host's mirror never received.  Empty at
        # s=0 (every access set is covered by the preceding fold's
        # broadcast), so no phase records are emitted there.
        if trainer.plan.requires_access_sets:
            for fname in _FIELD_ORDER:
                need: dict[int, np.ndarray] = {}
                for ev, crash in steps:
                    if crash is not None:
                        continue
                    e, s = divmod(ev.round_index, S)
                    work = trainer._get_work(e, s, ev.host)
                    ids = (
                        work.embedding_access
                        if fname == "embedding"
                        else work.output_access
                    )
                    pending = state["pending_stale"].get((fname, ev.host))
                    if pending is None or not pending.size or not ids.size:
                        continue
                    rows = np.intersect1d(ids, pending, assume_unique=True)
                    if rows.size:
                        prev = need.get(ev.host)
                        need[ev.host] = (
                            rows if prev is None else np.union1d(prev, rows)
                        )
                if need:
                    self._refresh(trainer, run, fname, need)

        # Pop round work serially (shared caches), skipping crashed steps
        # — their work is popped at the recovery point, like BSP.
        works: dict[tuple[int, int], "RoundWork"] = {}
        for ev, crash in steps:
            if crash is None:
                e, s = divmod(ev.round_index, S)
                works[(ev.host, ev.round_index)] = trainer._pop_work(e, s, ev.host)

        # Materialize epoch chunks the in-chain inspection will read, in
        # *descending* epoch order: the chunk cache prunes epochs below
        # the most recent request, so ascending materialization would
        # evict an epoch a straggler's inspection still needs.
        if trainer.plan.requires_access_sets:
            next_epochs = set()
            for ev, _crash in steps:
                nxt = trainer._next_slot(*divmod(ev.round_index, S))
                if nxt is not None:
                    next_epochs.add(nxt[0])
            for epoch in sorted(next_epochs, reverse=True):
                trainer._epoch_chunks(epoch)

        # Execute: batches of crash-free steps as parallel per-host
        # chains, crashed steps serially at their wave position (the
        # phase-record order recovery -> sync matches BSP at s=0).
        batch: list[ScheduledEvent] = []
        for ev, crash in steps:
            if crash is None:
                batch.append(ev)
            else:
                self._run_batch(trainer, run, batch, works)
                batch = []
                self._recover_step(trainer, run, ev.host, ev.round_index, crash)
        self._run_batch(trainer, run, batch, works)

    def _run_batch(
        self,
        trainer: "GraphWord2Vec",
        run: _RunState,
        batch: list[ScheduledEvent],
        works: dict[tuple[int, int], "RoundWork"],
    ) -> None:
        if not batch:
            return
        S = trainer.sync_rounds
        emb_field = trainer._fields["embedding"]
        out_field = trainer._fields["training"]
        chains: dict[int, list[int]] = {}
        order: list[int] = []
        for ev in batch:
            if ev.host not in chains:
                chains[ev.host] = []
                order.append(ev.host)
            chains[ev.host].append(ev.round_index)
        slots: dict[int, list[tuple]] = {h: [] for h in order}
        inspect = trainer.plan.requires_access_sets

        def run_chain(host: int) -> None:
            # A host's steps are sequential; capture must follow each
            # kernel before the next one so a round's delta never absorbs
            # a later round's writes.  Everything touched here is
            # host-local (replica arrays, bases, the private slot list).
            for g in chains[host]:
                work = works[(host, g)]
                start = time.thread_time()
                _loss, pairs = work.apply(
                    emb_field.arrays[host],
                    out_field.arrays[host],
                    run.lr_of[g],
                    trainer.params.batch_pairs,
                    compute_loss=trainer.compute_loss,
                )
                measured = time.thread_time() - start
                note_write(
                    emb_field.arrays[host], work.embedding_access,
                    label=f"embedding[host={host}]",
                )
                note_write(
                    out_field.arrays[host], work.output_access,
                    label=f"training[host={host}]",
                )
                captures = self._capture(trainer, host, work)
                next_work = None
                inspect_s = 0.0
                if inspect:
                    nxt = trainer._next_slot(*divmod(g, S))
                    if nxt is not None:
                        t0 = time.thread_time()
                        key = (nxt[0], nxt[1], host)
                        next_work = trainer._work_cache.get(key)
                        if next_work is None:
                            # The flush pre-pass materialized every epoch
                            # this wave inspects (descending, so pruning
                            # spares them all): this call only *reads* the
                            # chunk cache, and host-keyed state elsewhere.
                            next_work = trainer._build_work(*nxt, host)  # repro: noqa[REPRO111]
                        inspect_s = time.thread_time() - t0
                slots[host].append(
                    (g, work, measured, pairs, captures, next_work, inspect_s)
                )

        do_all(order, run_chain, executor=trainer.executor)

        # Serial post-pass in wave order: fold buffers, metrics, dirty
        # bits, inspection bookkeeping.
        for ev in batch:
            entry = slots[ev.host].pop(0)
            self._post_step(trainer, run, ev.host, *entry)

    def _post_step(
        self,
        trainer: "GraphWord2Vec",
        run: _RunState,
        host: int,
        g: int,
        work: "RoundWork",
        measured: float,
        pairs: int,
        captures: list[tuple],
        next_work: "RoundWork | None",
        inspect_s: float,
        crashed: bool = False,
        compute_s: float | None = None,
    ) -> None:
        H = trainer.num_hosts
        e, s = divmod(g, trainer.sync_rounds)
        factor = trainer._time_factor(e, s, host)
        if compute_s is None:
            compute_s = measured * factor
        run.round_array(run.compute_buf, g, H)[host] += compute_s
        run.measured[(host, g)] = run.measured.get((host, g), 0.0) + compute_s
        if not crashed:
            run.base_times.setdefault(g, []).append(
                measured * trainer.host_speed_factors[host]
            )
            run.slow_times.setdefault(g, []).append(measured * factor)
        run.pairs_buf[g] = run.pairs_buf.get(g, 0) + pairs
        for fname, (ids, delta, drift_base) in zip(_FIELD_ORDER, captures):
            run.contrib.setdefault((fname, g), {})[host] = (ids, delta, drift_base)
            if ids.size:
                run.dirty[fname].set_many(ids)
        if trainer.plan.requires_access_sets:
            state = trainer._async_state
            if next_work is None:
                state["next_access"][("embedding", host)] = _empty_ids()
                state["next_access"][("training", host)] = _empty_ids()
            else:
                nxt = trainer._next_slot(e, s)
                trainer._work_cache[(nxt[0], nxt[1], host)] = next_work
                run.round_array(run.inspect_buf, g, H)[host] += inspect_s
                state["next_access"][("embedding", host)] = next_work.embedding_access
                state["next_access"][("training", host)] = next_work.output_access
                trainer._peak_access_rows = max(
                    trainer._peak_access_rows,
                    int(next_work.embedding_access.size + next_work.output_access.size),
                )

    def _capture(
        self, trainer: "GraphWord2Vec", host: int, work: "RoundWork"
    ) -> list[tuple]:
        """Snapshot the step's deltas and rebase, immediately post-kernel.

        Deferred folding: the float64 delta (current − base) per touched
        row is buffered until the round folds; rebasing right away means
        a later step of the same host never leaks into this round's
        contribution.  With delay compensation enabled the float64 base
        is kept too (drift = canonical-at-fold − base-at-capture).
        Host-local arrays only — safe inside the parallel chain.
        """
        lam = self.delay_compensation
        out = []
        for fname, ids in (
            ("embedding", work.embedding_access),
            ("training", work.output_access),
        ):
            field = trainer._fields[fname]
            if not ids.size:
                out.append((ids, np.empty((0, field.dim)), None))
                continue
            arr = field.arrays[host]
            base = field.bases[host]
            delta = arr[ids].astype(np.float64) - base[ids].astype(np.float64)
            drift_base = base[ids].astype(np.float64) if lam > 0 else None
            base[ids] = arr[ids]
            out.append((ids, delta, drift_base))
        return out

    def _recover_step(
        self,
        trainer: "GraphWord2Vec",
        run: _RunState,
        host: int,
        g: int,
        crash,
    ) -> None:
        """Fail-stop recovery for one crashed step (BSP cost formulas).

        The replica is restored from the canonical store — under SSP the
        round checkpoint *is* the canonical state at the fold frontier —
        plus the surviving masters' streamed blocks, then the lost chunk
        replays on it.  Bytes and modeled times are exactly the BSP
        recovery path's, so s=0 fault schedules stay bit-identical.
        """
        S = trainer.sync_rounds
        e, s = divmod(g, S)
        config = trainer.fault_schedule.config
        report = trainer.fault_report
        state = trainer._async_state
        report.crashes += 1
        report.detect_s += config.detect_timeout_s

        storage_bytes = 0
        for fname, bounds in (
            ("embedding", trainer.bounds),
            ("training", trainer.bounds_out),
        ):
            field = trainer._fields[fname]
            canon = trainer._canonical[fname]
            lo, hi = int(bounds[host]), int(bounds[host + 1])
            field.arrays[host][lo:hi] = canon[lo:hi]
            field.bases[host][lo:hi] = canon[lo:hi]
            storage_bytes += (hi - lo) * field.dim * VALUE_BYTES
        report.checkpoint_restore_bytes += storage_bytes
        storage_s = storage_bytes / config.restore_bandwidth_Bps

        net_bytes = self._restore_from_canonical(trainer, "embedding", host)
        net_bytes += self._restore_from_canonical(trainer, "training", host)
        report.recovery_bytes += net_bytes
        # The rebuilt replica is wholly canonical: nothing is stale, and
        # the host's uncaptured in-round work is what the replay redoes.
        for fname in _FIELD_ORDER:
            state["pending_stale"].pop((fname, host), None)

        work = trainer._pop_work(e, s, host)
        emb_field = trainer._fields["embedding"]
        out_field = trainer._fields["training"]
        t0 = time.thread_time()
        _loss, pairs = work.apply(
            emb_field.arrays[host],
            out_field.arrays[host],
            run.lr_of[g],
            trainer.params.batch_pairs,
            compute_loss=trainer.compute_loss,
        )
        replay_measured = time.thread_time() - t0
        captures = self._capture(trainer, host, work)

        next_work = None
        inspect_s = 0.0
        if trainer.plan.requires_access_sets:
            nxt = trainer._next_slot(e, s)
            if nxt is not None:
                t0 = time.thread_time()
                key = (nxt[0], nxt[1], host)
                next_work = trainer._work_cache.get(key)
                if next_work is None:
                    next_work = trainer._build_work(*nxt, host)
                inspect_s = time.thread_time() - t0

        own_factor = trainer._time_factor(e, s, host)
        crashed_hosts = {
            cev.host for cev in trainer.fault_schedule.crashes_at(e, s)
        }
        survivors = [
            h for h in range(trainer.num_hosts) if h not in crashed_hosts
        ]
        if survivors:
            replay_s = (
                replay_measured
                * max(trainer._time_factor(e, s, sv) for sv in survivors)
                / len(survivors)
            )
        else:
            replay_s = replay_measured * own_factor
        report.replay_s += replay_s
        report.restore_s += storage_s
        recovery_s = config.detect_timeout_s + storage_s + replay_s
        run.round_array(run.recovery_buf, g, trainer.num_hosts)[host] += recovery_s
        run.recovery_spans.append((host, g, recovery_s))
        self._post_step(
            trainer, run, host, g, work, replay_measured, pairs, captures,
            next_work, inspect_s, crashed=True,
            compute_s=crash.loss_fraction * replay_measured * own_factor,
        )

    def _restore_from_canonical(
        self, trainer: "GraphWord2Vec", fname: str, host: int
    ) -> int:
        """Stream surviving masters' canonical blocks to ``host``.

        Mirrors :meth:`~repro.gluon.sync.GluonSynchronizer.restore_host`
        byte-for-byte, but reads the canonical store instead of replica
        bases: under SSP a survivor's base rows carry its own unfolded
        local view, which is not what recovery must rebuild.
        """
        field = trainer._fields[fname]
        sync = trainer._sync_emb if fname == "embedding" else trainer._sync_out
        bounds = sync.bounds
        network = trainer.network
        canon = trainer._canonical[fname]
        dim = field.dim
        with network.phase(f"recovery:{fname}") as record:
            for m in range(trainer.num_hosts):
                if m == host:
                    continue
                lo, hi = int(bounds[m]), int(bounds[m + 1])
                rows = hi - lo
                if rows == 0:
                    continue
                network.send(
                    m, host, rows * dim * VALUE_BYTES,
                    payload=(np.arange(lo, hi, dtype=np.int64), canon[lo:hi].copy()),
                )
            for _src, (ids, vals) in network.drain(host):
                field.arrays[host][ids] = vals
                field.bases[host][ids] = vals
        if sync.checker is not None:
            sync.checker.after_restore(field, host)
        return record.total_bytes

    def _refresh(
        self,
        trainer: "GraphWord2Vec",
        run: _RunState,
        fname: str,
        need: dict[int, np.ndarray],
    ) -> None:
        """Pull stale rows a wave is about to access (PullModel, s>0).

        The same request/reply wire math as the plan's pull phases, under
        dedicated ``refresh-request:``/``refresh:`` phase names so the
        report's byte breakdown shows staleness traffic separately.
        """
        field = trainer._fields[fname]
        sync = trainer._sync_emb if fname == "embedding" else trainer._sync_out
        bounds = sync.bounds
        plan = trainer.plan
        network = trainer.network
        canon = trainer._canonical[fname]
        state = trainer._async_state
        dim = field.dim
        H = trainer.num_hosts
        hosts = sorted(need)
        with network.phase(f"refresh-request:{fname}"):
            for h in hosts:
                acc = need[h]
                owner = np.searchsorted(bounds, acc, side="right") - 1
                for m in range(H):
                    if m == h:
                        continue
                    ids = acc[owner == m]
                    wire = plan.request_wire_bytes(len(ids))
                    if wire > 0:
                        network.send(h, m, wire, payload=ids)
            for m in range(H):
                network.drain(m)
        with network.phase(f"refresh:{fname}"):
            for m in range(H):
                lo, hi = int(bounds[m]), int(bounds[m + 1])
                for h in hosts:
                    if h == m:
                        continue
                    acc = need[h]
                    ids = acc[(acc >= lo) & (acc < hi)]
                    _ids, wire = plan.broadcast_selection(
                        _empty_ids(), hi - lo, ids, dim
                    )
                    if wire > 0:
                        network.send(m, h, wire, payload=(ids, canon[ids].copy()))
            for h in hosts:
                got: list[np.ndarray] = []
                for _src, (ids, vals) in network.drain(h):
                    if len(ids):
                        self._apply_values(trainer, run, fname, h, ids, vals)
                        got.append(ids)
                if got:
                    received = np.unique(np.concatenate(got))
                    pending = state["pending_stale"].get((fname, h))
                    if pending is not None:
                        state["pending_stale"][(fname, h)] = np.setdiff1d(
                            pending, received, assume_unique=True
                        )

    def _apply_values(
        self,
        trainer: "GraphWord2Vec",
        run: _RunState,
        fname: str,
        host: int,
        ids: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        """Land canonical values on a mirror, preserving read-my-writes.

        The row becomes canonical-as-received *plus* the host's buffered
        not-yet-folded deltas on it, written to array and base alike: the
        host keeps seeing its own recent updates, the next capture still
        measures only new work, and the buffered deltas fold later
        untouched.  With no pending deltas (always at s=0) this is the
        plain BSP broadcast overwrite, bit for bit.
        """
        field = trainer._fields[fname]
        arr = field.arrays[host]
        base = field.bases[host]
        adjust = self._pending_adjustment(run, fname, host, ids, field.dim)
        if adjust is None:
            arr[ids] = vals
            base[ids] = vals
        else:
            merged = (np.asarray(vals, dtype=np.float64) + adjust).astype(arr.dtype)
            arr[ids] = merged
            base[ids] = merged

    def _pending_adjustment(
        self, run: _RunState, fname: str, host: int, ids: np.ndarray, dim: int
    ) -> np.ndarray | None:
        """Sum of ``host``'s buffered unfolded deltas restricted to ``ids``.

        ``None`` when no buffered round touches any of the rows (the
        overwhelmingly common case, and always at s=0).  Rounds are
        summed in ascending order for determinism.
        """
        if not ids.size:
            return None
        total: np.ndarray | None = None
        for key in sorted(k for k in run.contrib if k[0] == fname):
            entry = run.contrib[key].get(host)
            if entry is None:
                continue
            cids, delta, _drift = entry
            if not cids.size:
                continue
            pos = np.searchsorted(cids, ids)
            pos = np.clip(pos, 0, cids.size - 1)
            hit = cids[pos] == ids
            if not hit.any():
                continue
            if total is None:
                total = np.zeros((len(ids), dim))
            total[hit] += delta[pos[hit]]
        return total

    def _fold_round(
        self,
        trainer: "GraphWord2Vec",
        run: _RunState,
        g: int,
        epoch_callback,
    ) -> None:
        """Fold global round ``g``: metrics, gluon sync, round bookkeeping.

        The sync frontier only ever advances to a round every host has
        finished, so folds fire in global-round order; each one is the
        async counterpart of a BSP round barrier's accounting + sync tail.
        """
        S = trainer.sync_rounds
        e, s = divmod(g, S)
        metrics = trainer.metrics
        network = trainer.network
        H = trainer.num_hosts

        metrics.begin_round()
        for table, record in (
            (run.compute_buf, metrics.record_compute),
            (run.inspect_buf, metrics.record_inspection),
            (run.recovery_buf, metrics.record_recovery),
        ):
            buf = table.pop(g, None)
            if buf is not None:
                for h in range(H):
                    if buf[h]:
                        record(h, float(buf[h]))
        base = run.base_times.pop(g, [])
        slow = run.slow_times.pop(g, [])
        report = trainer.fault_report
        if report is not None and slow and slow != base:
            report.straggler_rounds += 1
            report.straggler_extra_s += max(slow) - max(base)

        # Priority-schedule the fields: dirtiest mirror state syncs first
        # (galois worklist; the metric is "rows still clean", so the
        # field with more dirty rows pops first).  At s=0 the declaration
        # order is kept — the BSP loop always syncs embedding before
        # training, and reordering would permute the fault injector's
        # draw sequence, breaking bitwise degradation.
        if self.staleness == 0:
            order = list(_FIELD_ORDER)
        else:
            M = max(trainer._fields[name].num_nodes for name in _FIELD_ORDER)
            worklist = OrderedByIntegerMetric(
                lambda fname: M - run.dirty[fname].count()
            )
            for fname in _FIELD_ORDER:
                worklist.push(fname)
            order = [worklist.pop() for _ in _FIELD_ORDER]

        lr = run.lr_of[g]
        for fname in order:
            self._fold_field(trainer, run, fname, g, lr)
        metrics.end_round()
        run.fold_records[g] = (run.rec_cursor, len(network.phase_records))
        run.rec_cursor = len(network.phase_records)

        if trainer.sanitize:
            findings = trainer.sanitize_findings
            if findings:
                raise SanitizeError(findings, context=f"epoch {e} round {s}")

        run.folds_done = g + 1
        trainer._partial_pairs += run.pairs_buf.pop(g, 0)
        trainer._completed_rounds = s + 1
        if s + 1 == S:
            trainer._roll_epoch(e, epoch_callback)

    def _fold_field(
        self,
        trainer: "GraphWord2Vec",
        run: _RunState,
        fname: str,
        g: int,
        lr: float,
    ) -> None:
        """Fold round ``g``'s buffered deltas for one field into canon.

        Mirrors :meth:`~repro.gluon.sync.GluonSynchronizer.sync_replicated`
        phase-for-phase and byte-for-byte — same owner routing, same wire
        formulas, same rotating inductive combiner order (``fold_offset``
        = the global round, as the trainer passes it) — but reduces into
        the canonical store instead of master replica rows, because under
        SSP a master's replica also carries its own not-yet-folded local
        work.  At s=0 replica rows equal canon on every touched row, so
        each phase's payloads and writes are bit-identical to BSP's.
        """
        field = trainer._fields[fname]
        sync = trainer._sync_emb if fname == "embedding" else trainer._sync_out
        bounds = sync.bounds
        plan = trainer.plan
        network = trainer.network
        combiner = trainer.combiner
        canon = trainer._canonical[fname]
        state = trainer._async_state
        dim = field.dim
        dtype = field.arrays[0].dtype
        H = trainer.num_hosts
        lam = self.delay_compensation

        contribs_in = run.contrib.pop((fname, g), {})
        touched: list[np.ndarray] = []
        deltas: list[np.ndarray] = []
        for h in range(H):
            entry = contribs_in.get(h)
            if entry is None:
                touched.append(_empty_ids())
                deltas.append(np.empty((0, dim)))
                continue
            ids, delta, drift_base = entry
            if lam > 0 and ids.size:
                # Drift = how far canon moved since this delta was
                # captured; zero exactly when the contribution is fresh.
                drift = canon[ids].astype(np.float64) - drift_base
                delta = compensate_delta(delta, drift, lam, lr)
            touched.append(ids)
            deltas.append(delta)

        # -- reduce phase: buffered deltas -> canonical masters ---------------
        with network.phase(f"reduce:{fname}"):
            for h in range(H):
                t, d = touched[h], deltas[h]
                owner = np.searchsorted(bounds, t, side="right") - 1
                for m in range(H):
                    if m == h:
                        continue
                    sel = owner == m
                    ids = t[sel]
                    block = int(bounds[m + 1] - bounds[m])
                    wire = plan.reduce_wire_bytes(len(ids), dim, block)
                    if wire > 0:
                        network.send(h, m, wire, payload=(ids, d[sel]))

            changed_per_master: list[np.ndarray] = []
            for m in range(H):
                lo, hi = int(bounds[m]), int(bounds[m + 1])
                contribs: dict[int, tuple[np.ndarray, np.ndarray]] = {}
                own_sel = (touched[m] >= lo) & (touched[m] < hi)
                contribs[m] = (touched[m][own_sel], deltas[m][own_sel])
                for src, payload in network.drain(m):
                    contribs[src] = payload
                all_ids = [
                    contribs[src][0] for src in sorted(contribs)
                    if len(contribs[src][0])
                ]
                if not all_ids:
                    changed_per_master.append(_empty_ids())
                    continue
                union = np.unique(np.concatenate(all_ids))
                cstate = combiner.create(len(union), dim)
                for src in sorted(contribs, key=lambda h: (h - g) % H):
                    ids, vals = contribs[src]
                    if len(ids) == 0:
                        continue
                    rows = np.searchsorted(union, ids)
                    cstate.accumulate(rows, vals)
                combined = cstate.result()
                canonical = canon[union].astype(np.float64) + combined
                new_vals = canonical.astype(dtype)
                canon[union] = new_vals
                self._apply_values(trainer, run, fname, m, union, new_vals)
                changed_per_master.append(union)

        # -- pull-request phase (PullModel only) ------------------------------
        accessed_next: list[np.ndarray] | None = None
        if plan.requires_access_sets:
            accessed_next = [
                np.asarray(
                    state["next_access"].get((fname, h), _empty_ids()),
                    dtype=np.int64,
                )
                for h in range(H)
            ]
            with network.phase(f"request:{fname}"):
                for h in range(H):
                    acc = accessed_next[h]
                    owner = np.searchsorted(bounds, acc, side="right") - 1
                    for m in range(H):
                        if m == h:
                            continue
                        ids = acc[owner == m]
                        wire = plan.request_wire_bytes(len(ids))
                        if wire > 0:
                            network.send(h, m, wire, payload=ids)
                for m in range(H):
                    network.drain(m)

        # -- broadcast phase: canon -> mirrors --------------------------------
        with network.phase(f"broadcast:{fname}"):
            for m in range(H):
                lo, hi = int(bounds[m]), int(bounds[m + 1])
                changed = changed_per_master[m]
                for h in range(H):
                    if h == m:
                        continue
                    accessed = None
                    if accessed_next is not None:
                        acc = accessed_next[h]
                        accessed = acc[(acc >= lo) & (acc < hi)]
                    ids, wire = plan.broadcast_selection(
                        changed, hi - lo, accessed, dim
                    )
                    if wire > 0:
                        network.send(
                            m, h, wire, payload=(ids, canon[ids].copy())
                        )
            received_per_host: list[np.ndarray] = []
            for h in range(H):
                got: list[np.ndarray] = []
                for _src, (ids, vals) in network.drain(h):
                    if len(ids):
                        self._apply_values(trainer, run, fname, h, ids, vals)
                        got.append(ids)
                received_per_host.append(
                    np.unique(np.concatenate(got)) if got else _empty_ids()
                )

        # PullModel staleness ledger: rows whose canon changed this fold
        # that a mirror did not receive are now pending-stale for it;
        # rows it did receive are fresh again.  Per-master unions are
        # ascending over disjoint ascending blocks, so the concatenation
        # is already sorted.
        if plan.requires_access_sets:
            nonempty = [c for c in changed_per_master if c.size]
            changed_all = (
                np.concatenate(nonempty) if nonempty else _empty_ids()
            )
            for h in range(H):
                lo, hi = int(bounds[h]), int(bounds[h + 1])
                foreign = changed_all[(changed_all < lo) | (changed_all >= hi)]
                pending = state["pending_stale"].get((fname, h), _empty_ids())
                pending = np.union1d(pending, foreign)
                pending = np.setdiff1d(
                    pending, received_per_host[h], assume_unique=True
                )
                state["pending_stale"][(fname, h)] = pending

        # Rebuild the dirty vector from the rounds still buffered.
        fresh = BitVector(field.num_nodes)
        for key in sorted(k for k in run.contrib if k[0] == fname):
            per_host = run.contrib[key]
            for h in sorted(per_host):
                ids = per_host[h][0]
                if ids.size:
                    fresh.set_many(ids)
        run.dirty[fname] = fresh

        if trainer.sync_checker is not None:
            trainer.sync_checker.note_async_fold(fname, g)

    def _replay_measured(
        self,
        trainer: "GraphWord2Vec",
        run: _RunState,
        schedule: AsyncSchedule,
    ) -> float:
        """Replay the interleaving with measured durations -> makespan.

        The schedule's virtual durations fixed the *order* of events; the
        modeled wall-clock replays that order with the actual modeled
        per-step compute times: a host starts its next round as soon as
        its previous one ends, except that a fold is a causal barrier —
        the schedule only starts a round once the staleness bound allows
        it, and the fold it waited on must have happened.  At s=0 every
        round starts at the previous fold and ends measured later, so the
        makespan collapses to the sum over rounds of the slowest host:
        exactly BSP's barrier makespan, wait bucket included.
        """
        H = trainer.num_hosts
        avail = [0.0] * H
        start_m: dict[tuple[int, int], float] = {}
        end_m: dict[tuple[int, int], float] = {}
        ends_of: dict[int, list[float]] = {}
        last_fold = 0.0
        offset = trainer._async_makespan_s
        if trainer.async_timeline is None:
            trainer.async_timeline = AsyncTimeline(num_hosts=H)
        timeline = trainer.async_timeline
        for ev in schedule.events:
            h, g = ev.host, ev.round_index
            if ev.kind == "start":
                start_m[(h, g)] = max(avail[h], last_fold)
            elif ev.kind == "end":
                dur = run.measured.get((h, g), 0.0)
                end = start_m[(h, g)] + dur
                end_m[(h, g)] = end
                avail[h] = end
                ends_of.setdefault(g, []).append(end)
                timeline.steps.append((h, g, offset + start_m[(h, g)], dur))
            else:  # fold
                fold_t = max(max(ends_of.pop(g)), last_fold)
                last_fold = fold_t
                rec_lo, rec_hi = run.fold_records[g]
                timeline.folds.append((g, offset + fold_t, rec_lo, rec_hi))
        for host, g, dur in run.recovery_spans:
            timeline.recoveries.append((host, g, offset + end_m[(host, g)], dur))
        makespan = max(max(avail), last_fold)
        timeline.makespan_s = offset + makespan
        return makespan
