"""Command-line interface.

Subcommands::

    repro datasets                         # Table 1 of the presets
    repro train [--dataset NAME | --corpus FILE] [--hosts H] [...]
    repro neighbors --model M.npz --dataset NAME --word W
    repro eval --model M.npz --dataset NAME
    repro experiment {table1,table2,table3,fig6,fig7,fig8,fig9}
    repro serve-bench [--model M.npz] [--queries N] [--json FILE]
    repro serve-bench --workload SPEC.json   # SLO-gated workload harness

Invoke as ``python -m repro`` or ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
from pathlib import Path
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphWord2Vec: distributed Word2Vec on a graph-analytics substrate",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset presets (Table 1)")

    train = sub.add_parser("train", help="train a Word2Vec model")
    source = train.add_mutually_exclusive_group()
    source.add_argument("--dataset", default="tiny-sim", help="synthetic preset name")
    source.add_argument("--corpus", type=Path, help="text file (one sentence per line)")
    train.add_argument("--hosts", type=int, default=1)
    train.add_argument("--sync-rounds", type=int, default=None)
    train.add_argument("--combiner", default="mc", choices=["mc", "avg", "sum", "keep_first"])
    train.add_argument("--plan", default="opt", choices=["naive", "opt", "pull"])
    train.add_argument("--dim", type=int, default=64)
    train.add_argument("--epochs", type=int, default=8)
    train.add_argument("--window", type=int, default=5)
    train.add_argument("--negatives", type=int, default=10)
    train.add_argument("--learning-rate", type=float, default=0.025)
    train.add_argument("--subsample", type=float, default=1e-3)
    train.add_argument("--min-count", type=int, default=1)
    train.add_argument(
        "--architecture", default="skipgram", choices=["skipgram", "cbow"]
    )
    train.add_argument(
        "--objective", default="negative", choices=["negative", "hierarchical"]
    )
    train.add_argument("--seed", type=int, default=7)
    train.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "thread-pool width for the compute phase; with --hosts > 1 the "
            "simulated hosts overlap on real cores (results bit-identical "
            "to serial), with --hosts 1 training is Hogwild-style "
            "(deterministic pair counts, racy vectors). Default: serial, or "
            "the REPRO_WORKERS environment variable for multi-host runs."
        ),
    )
    train.add_argument(
        "--faults",
        metavar="SPEC",
        help=(
            "inject faults into the simulated cluster (multi-host only); "
            "SPEC is comma-separated key=value, e.g. "
            "'crash=0.02,drop=0.01,corrupt=0.005,straggler=0.1'. "
            "Keys map to repro.cluster.FaultConfig fields."
        ),
    )
    train.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "run the repro.analysis sanitizers (do_all race detection and "
            "Gluon sync protocol checking) during training (multi-host "
            "only); findings abort the run with a report. Results are "
            "bit-identical to an unsanitized run. Defaults to the "
            "REPRO_SANITIZE environment variable."
        ),
    )
    train.add_argument(
        "--engine",
        default="bsp",
        choices=["bsp", "async"],
        help=(
            "execution engine for multi-host training: 'bsp' (every round "
            "a global barrier) or 'async' (bounded-staleness SSP; hosts "
            "run ahead up to --staleness rounds). async with --staleness 0 "
            "is bit-identical to bsp."
        ),
    )
    train.add_argument(
        "--staleness",
        type=int,
        default=0,
        metavar="S",
        help="staleness bound for --engine async (rounds a host may lead by)",
    )
    train.add_argument(
        "--delay-compensation",
        type=float,
        default=0.0,
        metavar="LAMBDA",
        help=(
            "delay-compensation strength for --engine async: stale "
            "contributions are corrected for canonical drift at fold time "
            "(Zheng et al.; 0 disables)"
        ),
    )
    train.add_argument(
        "--trace",
        type=Path,
        metavar="FILE",
        help="write Chrome-trace events of the modeled timeline (chrome://tracing)",
    )
    train.add_argument("--save", type=Path, help="write the trained model (.npz)")

    neighbors = sub.add_parser("neighbors", help="nearest-neighbor queries")
    neighbors.add_argument("--model", type=Path, required=True)
    neighbors.add_argument("--dataset", default="tiny-sim")
    neighbors.add_argument("--word", required=True)
    neighbors.add_argument("--topn", type=int, default=10)

    evaluate = sub.add_parser("eval", help="analogy accuracy of a saved model")
    evaluate.add_argument("--model", type=Path, required=True)
    evaluate.add_argument("--dataset", default="tiny-sim")
    evaluate.add_argument(
        "--method", default="add", choices=["add", "mul"],
        help="analogy objective: 3CosAdd (paper) or 3CosMul",
    )
    evaluate.add_argument(
        "--similarity", action="store_true",
        help="also report Spearman rho on planted word-similarity pairs",
    )

    experiment = sub.add_parser("experiment", help="run a paper table/figure")
    experiment.add_argument(
        "name",
        choices=["table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9"],
    )

    serve = sub.add_parser(
        "serve-bench",
        help="benchmark the serving layer: exact vs LSH on a trained model, "
             "the recall-vs-QPS frontier (--frontier), or an SLO-gated "
             "multi-tenant workload (--workload)",
    )
    serve.add_argument("--model", type=Path, help="saved model (.npz); trains fresh if omitted")
    serve.add_argument("--dataset", default="tiny-sim", help="synthetic preset name")
    serve.add_argument("--dim", type=int, default=None,
                       help="embedding dim (default: 48 when training fresh, "
                            "32 for --frontier)")
    serve.add_argument("--epochs", type=int, default=2, help="epochs when training fresh")
    serve.add_argument("--queries", type=int, default=512, help="load-run query count")
    serve.add_argument("--k", type=int, default=10, help="neighbors per query")
    serve.add_argument("--zipf", type=float, default=1.1, help="query-mix Zipf exponent")
    serve.add_argument("--max-batch", type=int, default=64, help="engine micro-batch bound")
    serve.add_argument("--cache-size", type=int, default=256, help="LRU result-cache capacity")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="thread-pool width for batch search (default: serial "
                            "or the REPRO_WORKERS environment variable)")
    serve.add_argument("--shards", type=int, default=1, metavar="S",
                       help="also benchmark a scatter-gather tier over S shards "
                            "and verify its answers bit-match the single-host "
                            "reference (1 = skip)")
    serve.add_argument("--replicas", type=int, default=1, metavar="R",
                       help="replicas per shard for load-aware routing "
                            "(with --shards)")
    serve.add_argument("--seed", type=int, default=None,
                       help="workload + index seed (default: 7, or the library "
                            "default seed for --frontier)")
    serve.add_argument("--lsh-tables", type=int, default=6)
    serve.add_argument("--lsh-probes", type=int, default=24)
    serve.add_argument("--json", type=Path, metavar="FILE",
                       help="write the ServeReports (or frontier payload) as JSON")
    serve.add_argument("--trace", type=Path, metavar="FILE",
                       help="write Chrome-trace events (chrome://tracing)")
    frontier = serve.add_argument_group(
        "frontier", "recall-vs-QPS frontier sweep over a synthetic clustered store"
    )
    frontier.add_argument("--frontier", action="store_true",
                          help="sweep exact/LSH/IVF/int8/PQ points instead of "
                               "benchmarking a trained model")
    frontier.add_argument("--vocab", type=int, default=None, metavar="V",
                          help="frontier store rows (default: 8000)")
    frontier.add_argument("--clusters", type=int, default=None,
                          help="planted family count in the frontier store "
                               "(default: 160)")
    frontier.add_argument("--nlist", type=int, default=None,
                          help="IVF cell count (default: ~sqrt of vocab)")
    frontier.add_argument("--nprobes", type=str, default=None, metavar="P1,P2,..",
                          help="comma-separated IVF probe widths "
                               "(default: 1,2,4,8,16)")
    frontier.add_argument("--check-floors", type=Path, metavar="FILE",
                          help="re-verify the sweep against the recall floors "
                               "recorded under 'frontier_smoke' in FILE; exits "
                               "1 if any point regressed")
    workload = serve.add_argument_group(
        "workload", "multi-tenant workload harness with SLO verdicts"
    )
    workload.add_argument("--workload", type=Path, metavar="SPEC.json",
                          help="run a workload spec (backend plugin, arrival "
                               "process, tenant mix, SLOs) instead of the "
                               "fixed exact/LSH benchmark; exits 1 if any SLO "
                               "verdict fails")
    workload.add_argument("--bench-json", type=Path, metavar="FILE",
                          default=Path("BENCH_serve.json"),
                          help="benchmark file the workload row (verdicts "
                               "included) is merged into "
                               "(default: BENCH_serve.json)")
    return parser


def _load_corpus(args):
    from repro.experiments import datasets
    from repro.text.corpus import Corpus

    if args.corpus is not None:
        text = args.corpus.read_text()
        corpus = Corpus.from_text(text, min_count=args.min_count)
        return corpus, None
    corpus, questions = datasets.load(args.dataset)
    return corpus, questions


def _params_from(args):
    from repro.w2v.params import Word2VecParams

    return Word2VecParams(
        dim=args.dim,
        window=args.window,
        negatives=args.negatives,
        learning_rate=args.learning_rate,
        epochs=args.epochs,
        subsample_threshold=args.subsample,
        min_count=args.min_count,
        architecture=args.architecture,
        objective=args.objective,
    )


def _cmd_datasets(_args) -> int:
    from repro.experiments import table1

    print(table1.format_result(table1.run()))
    return 0


def _cmd_train(args) -> int:
    from repro.eval.analogy import evaluate_analogies
    from repro.w2v.distributed import GraphWord2Vec
    from repro.w2v.shared_memory import SharedMemoryWord2Vec

    corpus, questions = _load_corpus(args)
    params = _params_from(args)
    fault_config = None
    if args.faults is not None:
        if args.hosts == 1:
            print("error: --faults requires --hosts > 1", file=sys.stderr)
            return 2
        from repro.cluster.faults import parse_fault_spec

        try:
            fault_config = parse_fault_spec(args.faults)
        except ValueError as exc:
            print(f"error: invalid --faults spec: {exc}", file=sys.stderr)
            return 2
    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.sanitize and args.hosts == 1:
        print("error: --sanitize requires --hosts > 1", file=sys.stderr)
        return 2
    if args.hosts == 1 and (args.engine != "bsp" or args.trace is not None):
        print("error: --engine/--trace require --hosts > 1", file=sys.stderr)
        return 2
    if args.engine == "bsp" and (args.staleness or args.delay_compensation):
        print(
            "error: --staleness/--delay-compensation require --engine async",
            file=sys.stderr,
        )
        return 2
    print(f"training on {corpus} with {params}")
    if args.hosts == 1:
        model = SharedMemoryWord2Vec(
            corpus, params, seed=args.seed, workers=args.workers
        ).train()
    else:
        trainer = GraphWord2Vec(
            corpus,
            params,
            num_hosts=args.hosts,
            sync_rounds_per_epoch=args.sync_rounds,
            combiner=args.combiner,
            plan=args.plan,
            seed=args.seed,
            faults=fault_config,
            workers=args.workers,
            sanitize=True if args.sanitize else None,
            engine=args.engine,
            staleness=args.staleness,
            delay_compensation=args.delay_compensation,
        )
        result = trainer.train()
        model = result.model
        report = result.report
        print(
            f"modeled cluster time {report.total_time_s:.2f}s "
            f"(compute {report.breakdown.compute_s:.2f}s, "
            f"comm {report.breakdown.communication_s:.2f}s, "
            f"inspect {report.breakdown.inspection_s:.2f}s, "
            f"recovery {report.breakdown.recovery_s:.2f}s, "
            f"wait {report.breakdown.wait_s:.2f}s); "
            f"{report.comm_bytes:,} bytes in {report.comm_messages:,} messages"
        )
        if report.faults is not None:
            print(f"faults: {report.faults.summary()}")
        if args.trace is not None:
            import json as _json

            from repro.cluster.trace import (
                build_async_chrome_trace,
                build_chrome_trace,
            )

            if trainer.async_timeline is not None:
                events = build_async_chrome_trace(
                    trainer.async_timeline,
                    trainer.network.phase_records,
                    trainer.network_model,
                )
            else:
                events = build_chrome_trace(
                    trainer.metrics,
                    trainer.network.phase_records,
                    trainer.network_model,
                )
            args.trace.write_text(_json.dumps({"traceEvents": events}))
            print(f"trace written to {args.trace}")
    if questions is not None:
        print(evaluate_analogies(model, corpus.vocabulary, questions))
    if args.save is not None:
        args.save.write_bytes(model.to_bytes())
        print(f"model written to {args.save}")
    return 0


def _cmd_neighbors(args) -> int:
    from repro.eval.similarity import most_similar
    from repro.experiments import datasets
    from repro.w2v.model import Word2VecModel

    corpus, _ = datasets.load(args.dataset)
    model = Word2VecModel.from_bytes(args.model.read_bytes())
    if model.vocab_size != len(corpus.vocabulary):
        print(
            f"error: model vocab ({model.vocab_size}) does not match dataset "
            f"({len(corpus.vocabulary)})",
            file=sys.stderr,
        )
        return 2
    for word, score in most_similar(model, corpus.vocabulary, args.word, topn=args.topn):
        print(f"{score:+.3f}  {word}")
    return 0


def _cmd_eval(args) -> int:
    from repro.eval.analogy import evaluate_analogies
    from repro.eval.wordsim import build_planted_similarity, evaluate_similarity
    from repro.experiments import datasets
    from repro.w2v.model import Word2VecModel

    corpus, questions = datasets.load(args.dataset)
    model = Word2VecModel.from_bytes(args.model.read_bytes())
    accuracy = evaluate_analogies(
        model, corpus.vocabulary, questions, method=args.method
    )
    print(accuracy)
    for family, acc in sorted(accuracy.per_family.items()):
        print(f"  {family:24s} {acc:.1%}")
    if args.similarity:
        families = datasets.PRESETS[args.dataset].spec.resolve_families()
        pairs = build_planted_similarity(families)
        rho = evaluate_similarity(model, corpus.vocabulary, pairs)
        print(f"word similarity (Spearman rho over planted pairs): {rho:+.3f}")
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments import fig6, fig7, fig8, fig9, table1, table23

    name = args.name
    if name == "table1":
        print(table1.format_result(table1.run()))
    elif name in ("table2", "table3"):
        rows = table23.run()
        print(table23.format_table2(rows) if name == "table2" else table23.format_table3(rows))
    elif name == "fig6":
        print(fig6.format_result(fig6.run()))
    elif name == "fig7":
        print(fig7.format_result(fig7.run()))
    elif name == "fig8":
        print(fig8.format_result(fig8.run()))
    elif name == "fig9":
        print(fig9.format_result(fig9.run()))
    return 0


def _cmd_serve_frontier(args) -> int:
    import json

    from repro.serve import FrontierConfig, check_frontier_floors, sweep_frontier
    from repro.util.tables import format_table

    overrides = {}
    for flag, field in (
        ("vocab", "vocab_size"),
        ("dim", "dim"),
        ("clusters", "clusters"),
        ("seed", "seed"),
        ("nlist", "nlist"),
    ):
        value = getattr(args, flag)
        if value is not None:
            overrides[field] = value
    if args.nprobes is not None:
        overrides["nprobes"] = tuple(int(p) for p in args.nprobes.split(","))
    config = FrontierConfig(num_queries=args.queries, k=args.k, **overrides)
    payload = sweep_frontier(config)
    rows = [
        [
            point["label"],
            f"{point['recall_at_k']:.3f}",
            f"{point['recall_floor']:.3f}",
            float(point["qps"]),
            point["p50_query_ms"],
            point["build_seconds"],
            point["memory_bytes"] // 1024,
        ]
        for point in payload["points"]
    ]
    print(
        format_table(
            ["index", f"recall@{config.k}", "floor", "qps", "p50 ms/q",
             "build s", "KiB"],
            rows,
            title=(
                f"serve-bench frontier · vocab {config.vocab_size} · "
                f"dim {config.dim} · seed {config.seed}"
            ),
        )
    )
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2))
        print(f"frontier written to {args.json}")
    if args.check_floors is not None:
        recorded = json.loads(args.check_floors.read_text())
        section = recorded.get("frontier_smoke")
        if section is None:
            print(
                f"error: {args.check_floors} has no 'frontier_smoke' section",
                file=sys.stderr,
            )
            return 2
        violations = check_frontier_floors(payload, section)
        if violations:
            for violation in violations:
                print(f"floor regression: {violation}", file=sys.stderr)
            return 1
        print(
            f"all {len(section.get('points', []))} recorded recall floors hold"
        )
    return 0


def _cmd_serve_workload(args) -> int:
    import dataclasses
    import json

    from repro.serve import WorkloadSpec, run_workload
    from repro.serve.workload.slo import format_verdicts
    from repro.util.tables import format_table

    try:
        spec = WorkloadSpec.from_file(args.workload)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load workload spec {args.workload}: {exc}",
              file=sys.stderr)
        return 2
    if args.seed is not None:
        spec = dataclasses.replace(spec, seed=args.seed)
    try:
        report = run_workload(spec, workers=args.workers)
    except ValueError as exc:
        # Spec-shaped problems surface here too (unknown backend name,
        # unconsumed backend options, missing store section).
        print(f"error: cannot run workload {spec.name}: {exc}", file=sys.stderr)
        return 2

    rows = []
    for name in report.tenant_names:
        tenant = report.tenant_measured[name]
        rows.append([
            name,
            tenant["qos"],
            report.tenant_counts[name],
            tenant["queries"],
            float(tenant["qps"]),
            tenant["p50_ms"],
            tenant["p99_ms"],
        ])
    aggregate = report.aggregate_measured
    rows.append([
        "aggregate", "-", report.num_queries, aggregate["queries"],
        float(aggregate["qps"]), aggregate["p50_ms"], aggregate["p99_ms"],
    ])
    print(
        format_table(
            ["tenant", "qos", "queries", "measured", "qps", "p50 ms", "p99 ms"],
            rows,
            title=(
                f"serve-bench workload · {spec.name} · backend {spec.backend} "
                f"({spec.mode} loop) · seed {spec.seed}"
            ),
        )
    )
    print(report.summary())
    if report.verdicts:
        print(format_verdicts(report.verdicts))
    else:
        print("no SLO rules in spec — nothing to gate on")

    payload = {}
    if args.bench_json.exists():
        payload = json.loads(args.bench_json.read_text())
    payload[f"workload:{spec.name}"] = report.bench_row()
    args.bench_json.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"workload row merged into {args.bench_json}")
    if args.json is not None:
        args.json.write_text(report.to_json())
        print(f"report written to {args.json}")
    if args.trace is not None:
        args.trace.write_text(report.trace_json())
        print(f"trace written to {args.trace}")
    if not report.slo_pass:
        failed = sum(1 for verdict in report.verdicts if not verdict.passed)
        print(f"error: {failed} SLO verdict(s) failed", file=sys.stderr)
        return 1
    return 0


def _cmd_serve_bench(args) -> int:
    import json

    if args.workload is not None:
        return _cmd_serve_workload(args)
    if args.frontier:
        return _cmd_serve_frontier(args)
    if args.dim is None:
        args.dim = 48
    if args.seed is None:
        args.seed = 7

    from repro.experiments import datasets
    from repro.serve import (
        EmbeddingStore,
        ExactIndex,
        LSHIndex,
        LoadConfig,
        QueryEngine,
        recall_at_k,
        run_load,
    )
    from repro.util.rng import keyed_rng
    from repro.util.tables import format_table
    from repro.w2v.model import Word2VecModel

    corpus, _ = datasets.load(args.dataset)
    if args.model is not None:
        model = Word2VecModel.from_bytes(args.model.read_bytes())
        if model.vocab_size != len(corpus.vocabulary):
            print(
                f"error: model vocab ({model.vocab_size}) does not match dataset "
                f"({len(corpus.vocabulary)})",
                file=sys.stderr,
            )
            return 2
    else:
        from repro.w2v.params import Word2VecParams
        from repro.w2v.shared_memory import SharedMemoryWord2Vec

        params = Word2VecParams(dim=args.dim, epochs=args.epochs, negatives=6)
        print(f"training a fresh model on {corpus} ({params})")
        model = SharedMemoryWord2Vec(corpus, params, seed=args.seed).train()

    store = EmbeddingStore.from_model(model, corpus.vocabulary)
    exact = ExactIndex(store)
    lsh = LSHIndex(
        store, tables=args.lsh_tables, probes=args.lsh_probes, seed=args.seed
    )
    sample_rng = keyed_rng(args.seed, 0x524340)  # recall-sample stream
    sample = store.matrix[sample_rng.choice(len(store), min(128, len(store)))]
    recall = recall_at_k(lsh, exact, sample, k=args.k)
    print(
        f"store: {store}  |  LSH(bits={lsh.bits}, tables={lsh.tables}, "
        f"probes={lsh.probes}) recall@{args.k} = {recall:.3f}"
    )

    config = LoadConfig(
        num_queries=args.queries, k=args.k, zipf_exponent=args.zipf, seed=args.seed
    )
    reports = []
    for label, index in (("exact", exact), ("lsh", lsh)):
        engine = QueryEngine(
            index,
            max_batch=args.max_batch,
            cache_size=args.cache_size,
            workers=args.workers,
        )
        reports.append(run_load(engine, config, index_label=label))

    if args.shards > 1:
        from repro.serve import ShardedEngine, ShardedIndex

        sharded_index = ShardedIndex(
            store, num_shards=args.shards, replicas=args.replicas
        )
        sharded_engine = ShardedEngine(
            sharded_index,
            max_batch=args.max_batch,
            cache_size=args.cache_size,
            workers=args.workers,
        )
        sharded_report = run_load(
            sharded_engine,
            config,
            index_label=f"sharded(s={args.shards},r={args.replicas})",
        )
        # Within-run parity gate: the scatter-gather answers must be
        # bit-identical to a single-host exact pass on the same block grid.
        reference_engine = QueryEngine(
            sharded_index.plan.reference_index(store),
            max_batch=args.max_batch,
            cache_size=args.cache_size,
            workers=args.workers,
        )
        reference_report = run_load(reference_engine, config, index_label="exact-grid")
        if sharded_report.answers_sha256 != reference_report.answers_sha256:
            print(
                "error: sharded answers diverge from the single-host reference "
                f"({sharded_report.answers_sha256[:16]} != "
                f"{reference_report.answers_sha256[:16]})",
                file=sys.stderr,
            )
            return 1
        print(
            f"sharded parity holds: {args.shards} shards x {args.replicas} "
            f"replicas bit-match the single-host reference "
            f"(sha256 {sharded_report.answers_sha256[:16]}…)"
        )
        reports.append(sharded_report)

    rows = []
    for report in reports:
        latency = report.latency_percentiles_ms()
        rows.append(
            [
                report.index_label,
                report.num_queries,
                float(report.throughput_qps),
                latency["p50"],
                latency["p95"],
                latency["p99"],
                f"{report.cache_hit_rate:.1%}",
            ]
        )
    print(
        format_table(
            ["index", "queries", "qps", "p50 ms", "p95 ms", "p99 ms", "cache hits"],
            rows,
            title=f"serve-bench · {args.dataset} · seed {args.seed}",
        )
    )
    for report in reports:
        print(report.summary())
    if args.json is not None:
        payload = {
            "dataset": args.dataset,
            "recall_at_k": recall,
            "shards": args.shards,
            "replicas": args.replicas,
            "reports": [r.as_dict() for r in reports],
        }
        args.json.write_text(json.dumps(payload, indent=2))
        print(f"reports written to {args.json}")
    if args.trace is not None:
        events = [
            e for tid, r in enumerate(reports) for e in r.chrome_trace_events(tid)
        ]
        args.trace.write_text(json.dumps({"traceEvents": events}))
        print(f"trace written to {args.trace}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "train": _cmd_train,
        "neighbors": _cmd_neighbors,
        "eval": _cmd_eval,
        "experiment": _cmd_experiment,
        "serve-bench": _cmd_serve_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
