"""Command-line interface.

Subcommands::

    repro datasets                         # Table 1 of the presets
    repro train [--dataset NAME | --corpus FILE] [--hosts H] [...]
    repro neighbors --model M.npz --dataset NAME --word W
    repro eval --model M.npz --dataset NAME
    repro experiment {table1,table2,table3,fig6,fig7,fig8,fig9}

Invoke as ``python -m repro`` or ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphWord2Vec: distributed Word2Vec on a graph-analytics substrate",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset presets (Table 1)")

    train = sub.add_parser("train", help="train a Word2Vec model")
    source = train.add_mutually_exclusive_group()
    source.add_argument("--dataset", default="tiny-sim", help="synthetic preset name")
    source.add_argument("--corpus", type=Path, help="text file (one sentence per line)")
    train.add_argument("--hosts", type=int, default=1)
    train.add_argument("--sync-rounds", type=int, default=None)
    train.add_argument("--combiner", default="mc", choices=["mc", "avg", "sum", "keep_first"])
    train.add_argument("--plan", default="opt", choices=["naive", "opt", "pull"])
    train.add_argument("--dim", type=int, default=64)
    train.add_argument("--epochs", type=int, default=8)
    train.add_argument("--window", type=int, default=5)
    train.add_argument("--negatives", type=int, default=10)
    train.add_argument("--learning-rate", type=float, default=0.025)
    train.add_argument("--subsample", type=float, default=1e-3)
    train.add_argument("--min-count", type=int, default=1)
    train.add_argument(
        "--architecture", default="skipgram", choices=["skipgram", "cbow"]
    )
    train.add_argument(
        "--objective", default="negative", choices=["negative", "hierarchical"]
    )
    train.add_argument("--seed", type=int, default=7)
    train.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "thread-pool width for the compute phase; with --hosts > 1 the "
            "simulated hosts overlap on real cores (results bit-identical "
            "to serial), with --hosts 1 training is Hogwild-style "
            "(deterministic pair counts, racy vectors). Default: serial, or "
            "the REPRO_WORKERS environment variable for multi-host runs."
        ),
    )
    train.add_argument(
        "--faults",
        metavar="SPEC",
        help=(
            "inject faults into the simulated cluster (multi-host only); "
            "SPEC is comma-separated key=value, e.g. "
            "'crash=0.02,drop=0.01,corrupt=0.005,straggler=0.1'. "
            "Keys map to repro.cluster.FaultConfig fields."
        ),
    )
    train.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "run the repro.analysis sanitizers (do_all race detection and "
            "Gluon sync protocol checking) during training (multi-host "
            "only); findings abort the run with a report. Results are "
            "bit-identical to an unsanitized run. Defaults to the "
            "REPRO_SANITIZE environment variable."
        ),
    )
    train.add_argument("--save", type=Path, help="write the trained model (.npz)")

    neighbors = sub.add_parser("neighbors", help="nearest-neighbor queries")
    neighbors.add_argument("--model", type=Path, required=True)
    neighbors.add_argument("--dataset", default="tiny-sim")
    neighbors.add_argument("--word", required=True)
    neighbors.add_argument("--topn", type=int, default=10)

    evaluate = sub.add_parser("eval", help="analogy accuracy of a saved model")
    evaluate.add_argument("--model", type=Path, required=True)
    evaluate.add_argument("--dataset", default="tiny-sim")
    evaluate.add_argument(
        "--method", default="add", choices=["add", "mul"],
        help="analogy objective: 3CosAdd (paper) or 3CosMul",
    )
    evaluate.add_argument(
        "--similarity", action="store_true",
        help="also report Spearman rho on planted word-similarity pairs",
    )

    experiment = sub.add_parser("experiment", help="run a paper table/figure")
    experiment.add_argument(
        "name",
        choices=["table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9"],
    )
    return parser


def _load_corpus(args):
    from repro.experiments import datasets
    from repro.text.corpus import Corpus

    if args.corpus is not None:
        text = args.corpus.read_text()
        corpus = Corpus.from_text(text, min_count=args.min_count)
        return corpus, None
    corpus, questions = datasets.load(args.dataset)
    return corpus, questions


def _params_from(args):
    from repro.w2v.params import Word2VecParams

    return Word2VecParams(
        dim=args.dim,
        window=args.window,
        negatives=args.negatives,
        learning_rate=args.learning_rate,
        epochs=args.epochs,
        subsample_threshold=args.subsample,
        min_count=args.min_count,
        architecture=args.architecture,
        objective=args.objective,
    )


def _cmd_datasets(_args) -> int:
    from repro.experiments import table1

    print(table1.format_result(table1.run()))
    return 0


def _cmd_train(args) -> int:
    from repro.eval.analogy import evaluate_analogies
    from repro.w2v.distributed import GraphWord2Vec
    from repro.w2v.shared_memory import SharedMemoryWord2Vec

    corpus, questions = _load_corpus(args)
    params = _params_from(args)
    fault_config = None
    if args.faults is not None:
        if args.hosts == 1:
            print("error: --faults requires --hosts > 1", file=sys.stderr)
            return 2
        from repro.cluster.faults import parse_fault_spec

        try:
            fault_config = parse_fault_spec(args.faults)
        except ValueError as exc:
            print(f"error: invalid --faults spec: {exc}", file=sys.stderr)
            return 2
    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.sanitize and args.hosts == 1:
        print("error: --sanitize requires --hosts > 1", file=sys.stderr)
        return 2
    print(f"training on {corpus} with {params}")
    if args.hosts == 1:
        model = SharedMemoryWord2Vec(
            corpus, params, seed=args.seed, workers=args.workers
        ).train()
    else:
        trainer = GraphWord2Vec(
            corpus,
            params,
            num_hosts=args.hosts,
            sync_rounds_per_epoch=args.sync_rounds,
            combiner=args.combiner,
            plan=args.plan,
            seed=args.seed,
            faults=fault_config,
            workers=args.workers,
            sanitize=True if args.sanitize else None,
        )
        result = trainer.train()
        model = result.model
        report = result.report
        print(
            f"modeled cluster time {report.total_time_s:.2f}s "
            f"(compute {report.breakdown.compute_s:.2f}s, "
            f"comm {report.breakdown.communication_s:.2f}s, "
            f"inspect {report.breakdown.inspection_s:.2f}s, "
            f"recovery {report.breakdown.recovery_s:.2f}s); "
            f"{report.comm_bytes:,} bytes in {report.comm_messages:,} messages"
        )
        if report.faults is not None:
            print(f"faults: {report.faults.summary()}")
    if questions is not None:
        print(evaluate_analogies(model, corpus.vocabulary, questions))
    if args.save is not None:
        args.save.write_bytes(model.to_bytes())
        print(f"model written to {args.save}")
    return 0


def _cmd_neighbors(args) -> int:
    from repro.eval.similarity import most_similar
    from repro.experiments import datasets
    from repro.w2v.model import Word2VecModel

    corpus, _ = datasets.load(args.dataset)
    model = Word2VecModel.from_bytes(args.model.read_bytes())
    if model.vocab_size != len(corpus.vocabulary):
        print(
            f"error: model vocab ({model.vocab_size}) does not match dataset "
            f"({len(corpus.vocabulary)})",
            file=sys.stderr,
        )
        return 2
    for word, score in most_similar(model, corpus.vocabulary, args.word, topn=args.topn):
        print(f"{score:+.3f}  {word}")
    return 0


def _cmd_eval(args) -> int:
    from repro.eval.analogy import evaluate_analogies
    from repro.eval.wordsim import build_planted_similarity, evaluate_similarity
    from repro.experiments import datasets
    from repro.w2v.model import Word2VecModel

    corpus, questions = datasets.load(args.dataset)
    model = Word2VecModel.from_bytes(args.model.read_bytes())
    accuracy = evaluate_analogies(
        model, corpus.vocabulary, questions, method=args.method
    )
    print(accuracy)
    for family, acc in sorted(accuracy.per_family.items()):
        print(f"  {family:24s} {acc:.1%}")
    if args.similarity:
        families = datasets.PRESETS[args.dataset].spec.resolve_families()
        pairs = build_planted_similarity(families)
        rho = evaluate_similarity(model, corpus.vocabulary, pairs)
        print(f"word similarity (Spearman rho over planted pairs): {rho:+.3f}")
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments import fig6, fig7, fig8, fig9, table1, table23

    name = args.name
    if name == "table1":
        print(table1.format_result(table1.run()))
    elif name in ("table2", "table3"):
        rows = table23.run()
        print(table23.format_table2(rows) if name == "table2" else table23.format_table3(rows))
    elif name == "fig6":
        print(fig6.format_result(fig6.run()))
    elif name == "fig7":
        print(fig7.format_result(fig7.run()))
    elif name == "fig8":
        print(fig8.format_result(fig8.run()))
    elif name == "fig9":
        print(fig9.format_result(fig9.run()))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "train": _cmd_train,
        "neighbors": _cmd_neighbors,
        "eval": _cmd_eval,
        "experiment": _cmd_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
