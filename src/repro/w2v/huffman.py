"""Huffman coding of the vocabulary for hierarchical softmax.

Mikolov et al. (2013) propose hierarchical softmax as an alternative to
negative sampling: the output distribution is a binary Huffman tree over
the vocabulary (frequent words get short codes), and predicting a word
costs one logistic regression per node on its root path.  word2vec.c
builds the tree once from word counts; we reproduce that construction with
the classic two-queue O(V) algorithm over count-sorted leaves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HuffmanTree"]


@dataclass
class HuffmanTree:
    """Huffman codes and inner-node paths for every vocabulary word.

    For word ``w``: ``codes[w]`` is its bit string (uint8, left=0/right=1,
    root first) and ``points[w]`` the inner-node ids visited root-first
    (excluding leaves).  Inner nodes are numbered ``0 .. V-2`` and index the
    output-layer matrix used by the HS kernel.  Padded matrix forms
    (``code_matrix``, ``point_matrix``, ``code_lengths``) support the
    vectorized kernel.
    """

    codes: list[np.ndarray]
    points: list[np.ndarray]
    code_matrix: np.ndarray  # (V, max_len) uint8, padded with 0
    point_matrix: np.ndarray  # (V, max_len) int64, padded with 0
    code_lengths: np.ndarray  # (V,) int64

    @property
    def vocab_size(self) -> int:
        return len(self.codes)

    @property
    def num_inner_nodes(self) -> int:
        return max(1, self.vocab_size - 1)

    @property
    def max_code_length(self) -> int:
        return int(self.code_matrix.shape[1])

    @classmethod
    def from_counts(cls, counts: np.ndarray) -> "HuffmanTree":
        counts = np.asarray(counts, dtype=np.int64)
        V = len(counts)
        if V == 0:
            raise ValueError("empty vocabulary")
        if (counts < 0).any():
            raise ValueError("negative count")
        if V == 1:
            # Degenerate tree: a single word needs a 1-bit code against one
            # inner node so the kernel has something to train.
            codes = [np.array([0], dtype=np.uint8)]
            points = [np.array([0], dtype=np.int64)]
            return cls(
                codes=codes,
                points=points,
                code_matrix=np.array([[0]], dtype=np.uint8),
                point_matrix=np.array([[0]], dtype=np.int64),
                code_lengths=np.array([1], dtype=np.int64),
            )

        # Two-queue Huffman construction over leaves sorted by count
        # (word2vec.c's count/binary/parent_node arrays, reproduced).
        order = np.argsort(counts, kind="stable")
        weight = np.empty(2 * V - 1, dtype=np.int64)
        weight[:V] = counts[order]
        weight[V:] = np.iinfo(np.int64).max
        parent = np.zeros(2 * V - 1, dtype=np.int64)
        binary = np.zeros(2 * V - 1, dtype=np.uint8)

        pos1, pos2 = 0, V  # cursors: smallest unused leaf / inner node
        for new in range(V, 2 * V - 1):
            picks = []
            for _ in range(2):
                if pos1 < V and (pos2 >= new or weight[pos1] <= weight[pos2]):
                    picks.append(pos1)
                    pos1 += 1
                else:
                    picks.append(pos2)
                    pos2 += 1
            a, b = picks
            weight[new] = weight[a] + weight[b]
            parent[a] = new
            parent[b] = new
            binary[b] = 1

        root = 2 * V - 2
        codes: list[np.ndarray] = [np.empty(0, np.uint8)] * V
        points: list[np.ndarray] = [np.empty(0, np.int64)] * V
        for leaf_rank in range(V):
            bits = []
            nodes = []
            node = leaf_rank
            while node != root:
                bits.append(binary[node])
                nodes.append(parent[node])
                node = parent[node]
            word = int(order[leaf_rank])
            # Root-first order; inner-node ids shifted to 0..V-2.
            codes[word] = np.array(bits[::-1], dtype=np.uint8)
            points[word] = np.array(nodes[::-1], dtype=np.int64) - V

        max_len = max(len(c) for c in codes)
        code_matrix = np.zeros((V, max_len), dtype=np.uint8)
        point_matrix = np.zeros((V, max_len), dtype=np.int64)
        lengths = np.zeros(V, dtype=np.int64)
        for w in range(V):
            n = len(codes[w])
            lengths[w] = n
            code_matrix[w, :n] = codes[w]
            point_matrix[w, :n] = points[w]
        return cls(
            codes=codes,
            points=points,
            code_matrix=code_matrix,
            point_matrix=point_matrix,
            code_lengths=lengths,
        )

    def expected_code_length(self, counts: np.ndarray) -> float:
        """Frequency-weighted mean code length (compression quality)."""
        counts = np.asarray(counts, dtype=np.float64)
        total = counts.sum()
        if total <= 0:
            raise ValueError("counts sum to zero")
        return float((self.code_lengths * counts).sum() / total)
