"""Word2Vec Skip-Gram with negative sampling, shared-memory and distributed.

- :mod:`repro.w2v.params` — hyperparameters (paper §5.1 defaults),
- :mod:`repro.w2v.model` — the per-node label vectors (embedding and
  output layers; Figure 1's node labels),
- :mod:`repro.w2v.sgd` — pair generation and the vectorized SGNS kernel,
- :mod:`repro.w2v.cbow` / :mod:`repro.w2v.hs` / :mod:`repro.w2v.huffman` —
  the rest of the Word2Vec family (CBOW; hierarchical softmax over a
  Huffman tree),
- :mod:`repro.w2v.steps` — uniform round-work construction for all four
  architecture x objective configurations,
- :mod:`repro.w2v.shared_memory` — the single-host trainer (the paper's SM
  baseline and the per-host compute of the distributed trainer),
- :mod:`repro.w2v.distributed` — GraphWord2Vec (Algorithm 1) over the
  Gluon substrate with pluggable combiners and communication plans.
"""

from repro.w2v.distributed import DistributedTrainResult, GraphWord2Vec
from repro.w2v.huffman import HuffmanTree
from repro.w2v.model import Word2VecModel
from repro.w2v.params import Word2VecParams
from repro.w2v.shared_memory import SharedMemoryWord2Vec

__all__ = [
    "Word2VecParams",
    "Word2VecModel",
    "HuffmanTree",
    "SharedMemoryWord2Vec",
    "GraphWord2Vec",
    "DistributedTrainResult",
]
