"""The Word2Vec model: two label vectors per vocabulary node (Figure 1).

Each node carries an *embedding* vector (first/hidden layer, word2vec.c's
``syn0``) and a *training* vector (second/output layer, ``syn1neg``).
Initialization follows word2vec.c: embeddings uniform in
``[-0.5/dim, 0.5/dim)``, training vectors zero.
"""

from __future__ import annotations

from dataclasses import dataclass
import io

import numpy as np

__all__ = ["Word2VecModel"]


@dataclass
class Word2VecModel:
    """Dense float32 model; rows indexed by vocabulary node id."""

    embedding: np.ndarray  # (V, dim) float32
    training: np.ndarray  # (V, dim) float32

    def __post_init__(self) -> None:
        self.embedding = np.ascontiguousarray(self.embedding, dtype=np.float32)
        self.training = np.ascontiguousarray(self.training, dtype=np.float32)
        if (
            self.embedding.ndim != 2
            or self.training.ndim != 2
            or self.embedding.shape[1] != self.training.shape[1]
        ):
            # Row counts may differ (hierarchical softmax trains one vector
            # per Huffman inner node, V-1 rows), but dimensions must match.
            raise ValueError(
                f"embedding {self.embedding.shape} and training "
                f"{self.training.shape} must be 2-D with equal dim"
            )

    @classmethod
    def initialize(
        cls,
        vocab_size: int,
        dim: int,
        rng: np.random.Generator,
        output_rows: int | None = None,
    ) -> "Word2VecModel":
        """word2vec.c initialization; ``output_rows`` defaults to the vocab
        size (negative sampling) and is ``V-1`` for hierarchical softmax."""
        if vocab_size <= 0 or dim <= 0:
            raise ValueError(f"bad model shape ({vocab_size}, {dim})")
        rows = vocab_size if output_rows is None else int(output_rows)
        if rows <= 0:
            raise ValueError(f"output_rows must be positive, got {rows}")
        embedding = (
            (rng.random((vocab_size, dim), dtype=np.float32) - 0.5) / dim
        ).astype(np.float32)
        training = np.zeros((rows, dim), dtype=np.float32)
        return cls(embedding, training)

    # -- geometry ------------------------------------------------------------
    @property
    def vocab_size(self) -> int:
        return self.embedding.shape[0]

    @property
    def dim(self) -> int:
        return self.embedding.shape[1]

    def normalized_embedding(self) -> np.ndarray:
        """Row-normalized embeddings (for cosine-based evaluation)."""
        norms = np.linalg.norm(self.embedding, axis=1, keepdims=True)
        safe = np.where(norms > 0, norms, 1.0)
        return self.embedding / safe

    def copy(self) -> "Word2VecModel":
        return Word2VecModel(self.embedding.copy(), self.training.copy())

    def memory_bytes(self) -> int:
        return int(self.embedding.nbytes + self.training.nbytes)

    # -- persistence -----------------------------------------------------------
    def to_bytes(self) -> bytes:
        buf = io.BytesIO()
        np.savez_compressed(buf, embedding=self.embedding, training=self.training)
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Word2VecModel":
        with np.load(io.BytesIO(blob)) as data:
            return cls(data["embedding"], data["training"])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Word2VecModel):
            return NotImplemented
        return bool(
            np.array_equal(self.embedding, other.embedding)
            and np.array_equal(self.training, other.training)
        )
