"""Interchange with the classic word2vec text format.

word2vec.c, gensim and most embedding tooling exchange vectors as

    <vocab_size> <dim>
    <word> <v_0> <v_1> ... <v_{dim-1}>
    ...

These helpers write a trained model's embedding layer in that format and
read such files back, so embeddings trained here can be consumed by (or
compared against) external tools, and vice versa.
"""

from __future__ import annotations

from typing import TextIO

import numpy as np

from repro.text.vocab import Vocabulary
from repro.w2v.model import Word2VecModel

__all__ = ["save_word2vec_text", "load_word2vec_text"]


def save_word2vec_text(
    model: Word2VecModel | np.ndarray,
    vocabulary: Vocabulary,
    destination: TextIO | str,
    precision: int = 6,
) -> None:
    """Write the embedding in word2vec text format.

    ``destination`` is a file path or text stream.  Rows are written in
    node-id order; words containing whitespace are rejected (they would
    corrupt the format).
    """
    embedding = model.embedding if isinstance(model, Word2VecModel) else np.asarray(model)
    if embedding.ndim != 2:
        raise ValueError("embedding must be 2-D")
    if embedding.shape[0] != len(vocabulary):
        raise ValueError(
            f"embedding rows ({embedding.shape[0]}) != vocabulary size "
            f"({len(vocabulary)})"
        )
    handle: TextIO
    close = False
    if isinstance(destination, str):
        handle = open(destination, "w", encoding="utf-8")
        close = True
    else:
        handle = destination
    try:
        V, dim = embedding.shape
        handle.write(f"{V} {dim}\n")
        for node_id in range(V):
            word = vocabulary.word_of(node_id)
            if any(ch.isspace() for ch in word):
                raise ValueError(f"word {word!r} contains whitespace")
            values = " ".join(f"{v:.{precision}g}" for v in embedding[node_id])
            handle.write(f"{word} {values}\n")
    finally:
        if close:
            handle.close()


def load_word2vec_text(source: TextIO | str) -> tuple[list[str], np.ndarray]:
    """Read a word2vec text file; returns ``(words, vectors)``.

    ``vectors[i]`` corresponds to ``words[i]`` in file order.  Malformed
    headers or rows raise ``ValueError`` with the offending line number.
    """
    handle: TextIO
    close = False
    if isinstance(source, str):
        handle = open(source, "r", encoding="utf-8")
        close = True
    else:
        handle = source
    try:
        header = handle.readline().split()
        if len(header) != 2:
            raise ValueError("malformed header: expected '<vocab> <dim>'")
        V, dim = int(header[0]), int(header[1])
        if V <= 0 or dim <= 0:
            raise ValueError(f"invalid dimensions in header: {V} x {dim}")
        words: list[str] = []
        vectors = np.empty((V, dim), dtype=np.float32)
        for i in range(V):
            line = handle.readline()
            if not line:
                raise ValueError(f"truncated file: expected {V} rows, got {i}")
            parts = line.rstrip("\n").split(" ")
            if len(parts) != dim + 1:
                raise ValueError(
                    f"line {i + 2}: expected word + {dim} values, got {len(parts) - 1}"
                )
            words.append(parts[0])
            vectors[i] = [float(x) for x in parts[1:]]
        return words, vectors
    finally:
        if close:
            handle.close()
