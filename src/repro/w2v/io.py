"""Model interchange: word2vec text format and training checkpoints.

word2vec.c, gensim and most embedding tooling exchange vectors as

    <vocab_size> <dim>
    <word> <v_0> <v_1> ... <v_{dim-1}>
    ...

These helpers write a trained model's embedding layer in that format and
read such files back, so embeddings trained here can be consumed by (or
compared against) external tools, and vice versa.

The module also owns the *checkpoint* wire format used by
:meth:`repro.w2v.distributed.GraphWord2Vec.save_checkpoint`.  Checkpoints
are **round-granular**: they record the canonical model at a
synchronization-round boundary plus the ``(completed_epochs,
completed_rounds)`` cursor and pair-accounting state, so a run killed
mid-epoch resumes exactly (work generation is a pure function of the seed
tree).  The same state is what crash recovery restores from (see
:mod:`repro.cluster.faults`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TextIO

import numpy as np

from repro.text.vocab import Vocabulary
from repro.w2v.model import Word2VecModel

__all__ = [
    "save_word2vec_text",
    "load_word2vec_text",
    "CheckpointState",
    "save_checkpoint_blob",
    "load_checkpoint_blob",
]


def save_word2vec_text(
    model: Word2VecModel | np.ndarray,
    vocabulary: Vocabulary,
    destination: TextIO | str,
    precision: int = 6,
) -> None:
    """Write the embedding in word2vec text format.

    ``destination`` is a file path or text stream.  Rows are written in
    node-id order; words containing whitespace are rejected (they would
    corrupt the format).
    """
    embedding = model.embedding if isinstance(model, Word2VecModel) else np.asarray(model)
    if embedding.ndim != 2:
        raise ValueError("embedding must be 2-D")
    if embedding.shape[0] != len(vocabulary):
        raise ValueError(
            f"embedding rows ({embedding.shape[0]}) != vocabulary size "
            f"({len(vocabulary)})"
        )
    handle: TextIO
    close = False
    if isinstance(destination, str):
        handle = open(destination, "w", encoding="utf-8")
        close = True
    else:
        handle = destination
    try:
        V, dim = embedding.shape
        handle.write(f"{V} {dim}\n")
        for node_id in range(V):
            word = vocabulary.word_of(node_id)
            if any(ch.isspace() for ch in word):
                raise ValueError(f"word {word!r} contains whitespace")
            values = " ".join(f"{v:.{precision}g}" for v in embedding[node_id])
            handle.write(f"{word} {values}\n")
    finally:
        if close:
            handle.close()


@dataclass
class CheckpointState:
    """Everything a checkpoint carries, decoded.

    ``completed_rounds`` counts synchronization rounds finished inside the
    *current* (uncounted) epoch; ``partial_pairs`` are the training pairs
    those rounds processed, so a resumed run's per-epoch pair accounting
    matches an uninterrupted one.
    """

    embedding: np.ndarray
    training: np.ndarray
    completed_epochs: int
    completed_rounds: int = 0
    partial_pairs: int = 0
    pairs_total: int = 0
    epoch_pairs: list[int] = field(default_factory=list)
    fingerprint: str = ""

    @property
    def model(self) -> Word2VecModel:
        return Word2VecModel(self.embedding, self.training)


def save_checkpoint_blob(state: CheckpointState) -> bytes:
    """Serialize a :class:`CheckpointState` (compressed ``.npz`` container)."""
    import io

    buf = io.BytesIO()
    np.savez_compressed(
        buf,
        embedding=state.embedding,
        training=state.training,
        completed_epochs=np.int64(state.completed_epochs),
        completed_rounds=np.int64(state.completed_rounds),
        partial_pairs=np.int64(state.partial_pairs),
        pairs_total=np.int64(state.pairs_total),
        epoch_pairs=np.asarray(state.epoch_pairs, dtype=np.int64),
        fingerprint=np.frombuffer(state.fingerprint.encode(), dtype=np.uint8),
    )
    return buf.getvalue()


def load_checkpoint_blob(blob: bytes) -> CheckpointState:
    """Decode a checkpoint produced by :func:`save_checkpoint_blob`.

    Epoch-granular blobs from before round-granular checkpointing decode
    with a zero round cursor (they were taken at epoch boundaries).
    """
    import io

    with np.load(io.BytesIO(blob)) as data:
        return CheckpointState(
            embedding=data["embedding"],
            training=data["training"],
            completed_epochs=int(data["completed_epochs"]),
            completed_rounds=int(data["completed_rounds"]) if "completed_rounds" in data else 0,
            partial_pairs=int(data["partial_pairs"]) if "partial_pairs" in data else 0,
            pairs_total=int(data["pairs_total"]) if "pairs_total" in data else 0,
            epoch_pairs=(
                [int(p) for p in data["epoch_pairs"]] if "epoch_pairs" in data else []
            ),
            fingerprint=bytes(data["fingerprint"]).decode(),
        )


def load_word2vec_text(source: TextIO | str) -> tuple[list[str], np.ndarray]:
    """Read a word2vec text file; returns ``(words, vectors)``.

    ``vectors[i]`` corresponds to ``words[i]`` in file order.  The header
    is validated against the content: malformed or non-integer headers,
    rows whose width disagrees with ``dim``, duplicate words, truncated
    files and files with more rows than the header declares all raise
    ``ValueError`` naming the offending line, instead of silently
    misparsing.
    """
    handle: TextIO
    close = False
    if isinstance(source, str):
        handle = open(source, "r", encoding="utf-8")
        close = True
    else:
        handle = source
    try:
        header = handle.readline().split()
        if len(header) != 2:
            raise ValueError("malformed header: expected '<vocab> <dim>'")
        try:
            V, dim = int(header[0]), int(header[1])
        except ValueError:
            raise ValueError(
                f"malformed header: non-integer vocab/dim {header!r}"
            ) from None
        if V <= 0 or dim <= 0:
            raise ValueError(f"invalid dimensions in header: {V} x {dim}")
        words: list[str] = []
        seen: dict[str, int] = {}
        vectors = np.empty((V, dim), dtype=np.float32)
        for i in range(V):
            line = handle.readline()
            if not line:
                raise ValueError(f"truncated file: expected {V} rows, got {i}")
            parts = line.rstrip("\n").split(" ")
            if len(parts) != dim + 1:
                raise ValueError(
                    f"line {i + 2}: expected word + {dim} values, got {len(parts) - 1}"
                )
            word = parts[0]
            if word in seen:
                raise ValueError(
                    f"line {i + 2}: duplicate word {word!r} "
                    f"(first seen on line {seen[word] + 2})"
                )
            seen[word] = i
            words.append(word)
            try:
                vectors[i] = [float(x) for x in parts[1:]]
            except ValueError:
                raise ValueError(
                    f"line {i + 2}: non-numeric vector component for {word!r}"
                ) from None
        trailing = handle.readline()
        if trailing.strip():
            raise ValueError(
                f"header declares {V} rows but the file has more; "
                "vocab size and content disagree"
            )
        return words, vectors
    finally:
        if close:
            handle.close()
