"""Continuous Bag-of-Words training (Mikolov et al. 2013; paper §2.1).

CBOW predicts the center word from the *mean* of its context embeddings:
for center ``c`` with context set ``C``, ``h = mean_{x∈C} e_x`` is trained
against the center (plus negatives, or the center's Huffman path under
hierarchical softmax), and the input-side gradient flows back to every
context row — word2vec.c's ``neu1``/``neu1e`` scheme, batched.

The batch is a ragged structure: all context rows concatenated with a
segment id per row mapping it to its example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import expit

from repro.text.negative_sampling import UnigramTable
from repro.w2v.hs import hs_update
from repro.w2v.huffman import HuffmanTree
from repro.w2v.sgd import sample_negatives, subsample_sentence

__all__ = ["CbowBatch", "build_cbow_batch", "cbow_ns_update", "cbow_hs_update"]

_MIN_PROB = 1e-10


@dataclass
class CbowBatch:
    """CBOW examples: one center word per segment of context rows."""

    centers: np.ndarray  # (B,)
    context_rows: np.ndarray  # (T,) word ids, all contexts concatenated
    context_segments: np.ndarray  # (T,) example index per context row
    context_counts: np.ndarray  # (B,) contexts per example (>= 1)
    negatives: np.ndarray  # (B, k)
    negative_mask: np.ndarray  # (B, k) bool

    def __post_init__(self) -> None:
        B = len(self.centers)
        if self.context_counts.shape != (B,):
            raise ValueError("context_counts length mismatch")
        if self.context_rows.shape != self.context_segments.shape:
            raise ValueError("context rows/segments mismatch")
        if int(self.context_counts.sum()) != len(self.context_rows):
            raise ValueError("context_counts do not sum to row count")
        if (self.context_counts < 1).any():
            raise ValueError("every CBOW example needs at least one context")
        if self.negatives.shape[0] != B:
            raise ValueError("negatives batch mismatch")

    def __len__(self) -> int:
        return len(self.centers)

    def accessed_embedding_ids(self) -> np.ndarray:
        return np.unique(self.context_rows)

    def accessed_output_ids_ns(self) -> np.ndarray:
        return np.unique(np.concatenate([self.centers, self.negatives.ravel()]))

    def slice(self, start: int, stop: int) -> "CbowBatch":
        row_mask = (self.context_segments >= start) & (self.context_segments < stop)
        return CbowBatch(
            centers=self.centers[start:stop],
            context_rows=self.context_rows[row_mask],
            context_segments=self.context_segments[row_mask] - start,
            context_counts=self.context_counts[start:stop],
            negatives=self.negatives[start:stop],
            negative_mask=self.negative_mask[start:stop],
        )


def build_cbow_batch(
    sentences: list[np.ndarray],
    *,
    window: int,
    keep_prob: np.ndarray,
    table: UnigramTable | None,
    num_negatives: int,
    rng: np.random.Generator,
) -> CbowBatch:
    """Subsample + window the sentences into a CBOW batch.

    ``table`` may be ``None`` when training with hierarchical softmax (the
    negatives arrays are then empty).
    """
    centers: list[int] = []
    rows: list[np.ndarray] = []
    counts: list[int] = []
    for sentence in sentences:
        kept = subsample_sentence(sentence, keep_prob, rng)
        L = len(kept)
        if L < 2:
            continue
        spans = rng.integers(1, window + 1, size=L)
        for i in range(L):
            lo = max(0, i - int(spans[i]))
            hi = min(L, i + int(spans[i]) + 1)
            context = np.concatenate([kept[lo:i], kept[i + 1 : hi]])
            if context.size == 0:
                continue
            centers.append(int(kept[i]))
            rows.append(context)
            counts.append(len(context))
    if centers:
        centers_arr = np.array(centers, dtype=np.int64)
        rows_arr = np.concatenate(rows)
        counts_arr = np.array(counts, dtype=np.int64)
        segments = np.repeat(np.arange(len(centers), dtype=np.int64), counts_arr)
    else:
        centers_arr = np.empty(0, dtype=np.int64)
        rows_arr = np.empty(0, dtype=np.int64)
        counts_arr = np.empty(0, dtype=np.int64)
        segments = np.empty(0, dtype=np.int64)
    if table is not None and num_negatives > 0:
        negatives, mask = sample_negatives(table, centers_arr, num_negatives, rng)
    else:
        negatives = np.empty((len(centers_arr), 0), dtype=np.int64)
        mask = np.empty((len(centers_arr), 0), dtype=bool)
    return CbowBatch(
        centers=centers_arr,
        context_rows=rows_arr,
        context_segments=segments,
        context_counts=counts_arr,
        negatives=negatives,
        negative_mask=mask,
    )


def _context_means(embedding: np.ndarray, batch: CbowBatch) -> np.ndarray:
    """Per-example mean of context embeddings (word2vec.c's neu1)."""
    B, D = len(batch), embedding.shape[1]
    h = np.zeros((B, D), dtype=np.float64)
    np.add.at(h, batch.context_segments, embedding[batch.context_rows])
    h /= batch.context_counts[:, None]
    return h.astype(embedding.dtype)


def cbow_ns_update(
    embedding: np.ndarray,
    training: np.ndarray,
    batch: CbowBatch,
    learning_rate: float,
    compute_loss: bool = False,
) -> float:
    """CBOW + negative sampling step; returns summed loss (or 0)."""
    B = len(batch)
    if B == 0:
        return 0.0
    lr = np.float32(learning_rate)
    h = _context_means(embedding, batch)  # (B, D)
    targets = np.concatenate([batch.centers[:, None], batch.negatives], axis=1)
    t = training[targets]  # (B, K+1, D)
    scores = np.einsum("bd,bkd->bk", h, t)
    sig = expit(scores)
    grad_scale = sig.copy()
    grad_scale[:, 0] -= 1.0
    if batch.negatives.shape[1]:
        grad_scale[:, 1:] *= batch.negative_mask
    g = grad_scale * lr

    grad_h = np.einsum("bk,bkd->bd", g, t)  # (B, D) — word2vec.c's neu1e
    grad_t = g[:, :, None] * h[:, None, :]
    # Every context row receives the full input gradient (word2vec.c).
    np.subtract.at(
        embedding,
        batch.context_rows,
        grad_h[batch.context_segments].astype(embedding.dtype),
    )
    np.subtract.at(
        training,
        targets.ravel(),
        grad_t.reshape(-1, training.shape[1]).astype(training.dtype),
    )
    if not compute_loss:
        return 0.0
    pos = np.maximum(sig[:, 0], _MIN_PROB)
    loss = -np.log(pos).sum()
    if batch.negatives.shape[1]:
        neg = np.maximum(1.0 - sig[:, 1:], _MIN_PROB)
        loss -= (np.log(neg) * batch.negative_mask).sum()
    return float(loss)


def cbow_hs_update(
    embedding: np.ndarray,
    hs_output: np.ndarray,
    batch: CbowBatch,
    tree: HuffmanTree,
    learning_rate: float,
    compute_loss: bool = False,
) -> float:
    """CBOW + hierarchical softmax step via the shared HS kernel."""
    if len(batch) == 0:
        return 0.0
    h = _context_means(embedding, batch)
    return hs_update(
        embedding,
        hs_output,
        inputs=batch.centers,  # unused when input_vectors given
        outputs=batch.centers,
        tree=tree,
        learning_rate=learning_rate,
        compute_loss=compute_loss,
        input_vectors=h,
        input_scatter=(batch.context_segments, batch.context_rows),
    )
