"""Unified round-work construction for all four training configurations.

Word2Vec = architecture x objective: {Skip-Gram, CBOW} x {negative
sampling, hierarchical softmax}.  The paper evaluates SG+NS; §2.1 notes the
approach carries to the other family members, so all four are supported.
A :class:`RoundWork` packages one worklist chunk's generated examples with
everything the trainers need — the apply kernel, and the embedding/output
rows it touches (the access/update sets Gluon synchronizes on).

The output layer differs by objective: negative sampling trains one vector
per *word* (V rows); hierarchical softmax one per Huffman *inner node*
(V-1 rows).  ``output_rows_for`` reports the right row count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.effects import declare_effects
from repro.text.negative_sampling import UnigramTable
from repro.w2v.cbow import CbowBatch, build_cbow_batch, cbow_hs_update, cbow_ns_update
from repro.w2v.hs import hs_pairs_access, hs_update
from repro.w2v.huffman import HuffmanTree
from repro.w2v.params import Word2VecParams
from repro.w2v.sgd import TrainingBatch, build_training_batch, sgns_update

__all__ = ["RoundWork", "build_round_work", "output_rows_for"]


def output_rows_for(params: Word2VecParams, vocab_size: int) -> int:
    """Rows of the output-layer matrix for this configuration."""
    if params.objective == "hierarchical":
        return max(1, vocab_size - 1)
    return vocab_size


@dataclass
class RoundWork:
    """Generated training examples for one (host, round) work chunk."""

    kind: str  # "sg-ns" | "sg-hs" | "cbow-ns" | "cbow-hs"
    batch: TrainingBatch | CbowBatch
    tree: HuffmanTree | None
    embedding_access: np.ndarray  # sorted unique embedding rows touched
    output_access: np.ndarray  # sorted unique output-layer rows touched

    @property
    def num_examples(self) -> int:
        return len(self.batch)

    @declare_effects(
        reads=("embedding[rows]", "output[rows]", "self.batch", "self.tree"),
        writes=("embedding[rows]", "output[rows]"),
    )
    def apply(
        self,
        embedding: np.ndarray,
        output: np.ndarray,
        learning_rate: float,
        batch_pairs: int,
        compute_loss: bool = False,
    ) -> tuple[float, int]:
        """Run the kernel in ``batch_pairs``-sized Hogwild slices."""
        if batch_pairs < 1:
            raise ValueError(f"batch_pairs must be >= 1, got {batch_pairs}")
        total_loss = 0.0
        n = len(self.batch)
        for start in range(0, n, batch_pairs):
            piece = self.batch.slice(start, min(start + batch_pairs, n))
            if self.kind == "sg-ns":
                total_loss += sgns_update(
                    embedding, output, piece, learning_rate, compute_loss
                )
            elif self.kind == "sg-hs":
                total_loss += hs_update(
                    embedding, output, piece.inputs, piece.outputs,
                    self.tree, learning_rate, compute_loss,
                )
            elif self.kind == "cbow-ns":
                total_loss += cbow_ns_update(
                    embedding, output, piece, learning_rate, compute_loss
                )
            elif self.kind == "cbow-hs":
                total_loss += cbow_hs_update(
                    embedding, output, piece, self.tree, learning_rate, compute_loss
                )
            else:  # pragma: no cover - constructor controls kinds
                raise AssertionError(f"unknown work kind {self.kind}")
        return total_loss, n


def build_round_work(
    sentences: list[np.ndarray],
    *,
    params: Word2VecParams,
    keep_prob: np.ndarray,
    table: UnigramTable | None,
    tree: HuffmanTree | None,
    rng: np.random.Generator,
) -> RoundWork:
    """Generate this chunk's examples for the configured architecture/objective."""
    hierarchical = params.objective == "hierarchical"
    if hierarchical and tree is None:
        raise ValueError("hierarchical objective requires a Huffman tree")
    if not hierarchical and table is None:
        raise ValueError("negative-sampling objective requires a unigram table")

    if params.architecture == "skipgram":
        batch = build_training_batch(
            sentences,
            window=params.window,
            keep_prob=keep_prob,
            table=table if not hierarchical else None,
            num_negatives=0 if hierarchical else params.negatives,
            rng=rng,
        )
        emb_access = np.unique(batch.inputs)
        if hierarchical:
            kind = "sg-hs"
            out_access = hs_pairs_access(batch.outputs, tree)
        else:
            kind = "sg-ns"
            out_access = np.unique(
                np.concatenate([batch.outputs, batch.negatives.ravel()])
            )
        return RoundWork(kind, batch, tree if hierarchical else None, emb_access, out_access)

    # CBOW
    batch = build_cbow_batch(
        sentences,
        window=params.window,
        keep_prob=keep_prob,
        table=table if not hierarchical else None,
        num_negatives=0 if hierarchical else params.negatives,
        rng=rng,
    )
    emb_access = batch.accessed_embedding_ids()
    if hierarchical:
        kind = "cbow-hs"
        out_access = hs_pairs_access(batch.centers, tree)
    else:
        kind = "cbow-ns"
        out_access = batch.accessed_output_ids_ns()
    return RoundWork(kind, batch, tree if hierarchical else None, emb_access, out_access)
