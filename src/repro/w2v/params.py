"""Hyperparameters for Skip-Gram training.

Defaults follow the paper's evaluation configuration (§5.1): window 5,
15 negative samples, 1e-4 subsampling threshold, 16 epochs, initial learning
rate 0.025, maximum sentence length 10K.  ``dim`` defaults to 64 here rather
than the paper's 200 because the synthetic corpora are ~10^3 x smaller than
the paper's (see DESIGN.md §3); every benchmark states the value it uses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

__all__ = ["Word2VecParams"]


ARCHITECTURES = ("skipgram", "cbow")
OBJECTIVES = ("negative", "hierarchical")
LR_SCHEDULES = ("linear", "cosine", "step", "constant")


@dataclass(frozen=True)
class Word2VecParams:
    dim: int = 64
    window: int = 5
    negatives: int = 15
    #: "skipgram" (the paper's evaluated model) or "cbow".
    architecture: str = "skipgram"
    #: "negative" (sampling; the paper's configuration) or "hierarchical"
    #: (Huffman-tree softmax).
    objective: str = "negative"
    learning_rate: float = 0.025
    min_learning_rate_fraction: float = 1e-4  # floor = lr * fraction
    #: Per-epoch decay shape: "linear" (word2vec.c and the paper's
    #: Algorithm 1), "cosine", "step" (halve each quarter), or "constant".
    lr_schedule: str = "linear"
    epochs: int = 16
    subsample_threshold: float = 1e-4
    min_count: int = 1
    max_sentence_length: int = 10_000
    batch_pairs: int = 256  # pairs per Hogwild-style scatter-add batch
    shuffle_each_epoch: bool = True

    def __post_init__(self) -> None:
        checks: list[tuple[bool, str]] = [
            (self.dim > 0, f"dim must be positive, got {self.dim}"),
            (self.window >= 1, f"window must be >= 1, got {self.window}"),
            (self.negatives >= 0, f"negatives must be >= 0, got {self.negatives}"),
            (self.learning_rate > 0, f"learning_rate must be positive, got {self.learning_rate}"),
            (
                0 < self.min_learning_rate_fraction <= 1,
                f"min_learning_rate_fraction must be in (0, 1], got {self.min_learning_rate_fraction}",
            ),
            (self.epochs >= 1, f"epochs must be >= 1, got {self.epochs}"),
            (
                self.subsample_threshold > 0,
                f"subsample_threshold must be positive, got {self.subsample_threshold}",
            ),
            (self.min_count >= 1, f"min_count must be >= 1, got {self.min_count}"),
            (
                self.max_sentence_length >= 2,
                f"max_sentence_length must be >= 2, got {self.max_sentence_length}",
            ),
            (self.batch_pairs >= 1, f"batch_pairs must be >= 1, got {self.batch_pairs}"),
            (
                self.architecture in ARCHITECTURES,
                f"architecture must be one of {ARCHITECTURES}, got {self.architecture!r}",
            ),
            (
                self.objective in OBJECTIVES,
                f"objective must be one of {OBJECTIVES}, got {self.objective!r}",
            ),
            (
                self.objective != "negative" or self.negatives >= 0,
                "negative sampling requires negatives >= 0",
            ),
            (
                self.lr_schedule in LR_SCHEDULES,
                f"lr_schedule must be one of {LR_SCHEDULES}, got {self.lr_schedule!r}",
            ),
        ]
        for ok, message in checks:
            if not ok:
                raise ValueError(message)

    def with_(self, **changes: Any) -> "Word2VecParams":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def learning_rate_for_epoch(self, epoch: int) -> float:
        """Decayed rate for ``epoch`` (0-based), floored.

        Algorithm 1 decays α once per epoch; the default is word2vec.c's
        linear schedule.  Alternatives (cosine / step / constant) are
        provided because, as the paper notes, finding a good schedule "is
        more of an art than science".  All schedules respect the customary
        ``learning_rate * min_learning_rate_fraction`` floor.
        """
        if not 0 <= epoch < self.epochs:
            raise ValueError(f"epoch {epoch} out of range [0, {self.epochs})")
        import math

        progress = epoch / self.epochs
        if self.lr_schedule == "linear":
            rate = self.learning_rate * (1.0 - progress)
        elif self.lr_schedule == "cosine":
            rate = self.learning_rate * 0.5 * (1.0 + math.cos(math.pi * progress))
        elif self.lr_schedule == "step":
            rate = self.learning_rate * 0.5 ** int(progress * 4)
        else:  # constant
            rate = self.learning_rate
        floor = self.learning_rate * self.min_learning_rate_fraction
        return max(rate, floor)
