"""Skip-Gram negative-sampling pair generation and SGD kernel.

Follows word2vec.c's training schedule:

- frequent-word subsampling removes tokens up front (probabilities from
  :meth:`repro.text.vocab.Vocabulary.keep_probabilities`),
- each surviving position gets a *dynamic* window ``b ~ U{1..window}``;
  every in-window neighbor forms a positive pair where the neighbor is the
  **input** (embedding layer, ``syn0``) and the center the **output**
  (training layer, ``syn1neg``),
- each pair draws ``k`` negatives from the unigram^0.75 table (collisions
  with the positive target are redrawn once, then dropped by zero weight),
- the SGD step for a pair with targets ``T`` (1 positive + k negatives),
  labels ``y``, input embedding ``e``:

      σ = sigmoid(e · t_j);  g_j = (σ_j − y_j)·α
      e −= Σ_j g_j t_j;      t_j −= g_j e

Updates are applied in batches with scatter-add (``np.subtract.at``):
gradients in a batch are computed against the model at batch start, the
vectorized equivalent of the intra-host Hogwild the paper uses (racy,
slightly stale, empirically benign for sparse updates — §2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import expit

from repro.text.negative_sampling import UnigramTable

__all__ = [
    "TrainingBatch",
    "subsample_sentence",
    "generate_pairs",
    "sample_negatives",
    "build_training_batch",
    "sgns_update",
    "apply_training_batch",
]

# Loss clamp: -log of a probability never reports more than this per term
# (protects against log(0) for saturated sigmoids in float32).
_MIN_PROB = 1e-10


@dataclass
class TrainingBatch:
    """All training pairs of one worklist chunk, ready for the kernel."""

    inputs: np.ndarray  # (B,) context word ids  -> embedding rows
    outputs: np.ndarray  # (B,) center word ids   -> training rows (label 1)
    negatives: np.ndarray  # (B, k) sampled ids     -> training rows (label 0)
    #: Mask of negatives that collided with their positive target even after
    #: one redraw; they contribute no gradient.
    negative_mask: np.ndarray  # (B, k) bool — True = active

    def __post_init__(self) -> None:
        B = len(self.inputs)
        if self.outputs.shape != (B,):
            raise ValueError("outputs length mismatch")
        if self.negatives.shape[0] != B or self.negatives.ndim != 2:
            raise ValueError("negatives must be (B, k)")
        if self.negative_mask.shape != self.negatives.shape:
            raise ValueError("negative_mask shape mismatch")

    def __len__(self) -> int:
        return len(self.inputs)

    @property
    def num_negatives(self) -> int:
        return self.negatives.shape[1]

    def accessed_ids(self) -> np.ndarray:
        """Sorted unique node ids this batch reads or writes."""
        return np.unique(
            np.concatenate([self.inputs, self.outputs, self.negatives.ravel()])
        )

    def slice(self, start: int, stop: int) -> "TrainingBatch":
        return TrainingBatch(
            inputs=self.inputs[start:stop],
            outputs=self.outputs[start:stop],
            negatives=self.negatives[start:stop],
            negative_mask=self.negative_mask[start:stop],
        )


def subsample_sentence(
    sentence: np.ndarray, keep_prob: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Drop frequent words with probability ``1 - keep_prob[word]``."""
    if sentence.size == 0:
        return sentence
    keep = rng.random(len(sentence)) < keep_prob[sentence]
    return sentence[keep]


def generate_pairs(
    sentence: np.ndarray, window: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Dynamic-window skip-gram pairs: returns ``(inputs, outputs)``.

    ``outputs[i]`` is the center word and ``inputs[i]`` a word within its
    (per-center random) window — word2vec.c's convention where the context
    word indexes the embedding layer.
    """
    L = len(sentence)
    if L < 2:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    spans = rng.integers(1, window + 1, size=L)
    in_parts: list[np.ndarray] = []
    out_parts: list[np.ndarray] = []
    for d in range(1, window + 1):
        if d >= L:
            break  # no position has a neighbor this far away
        wide = spans >= d
        # Left neighbor (i - d): centers i in [d, L) with span >= d.
        left_centers = np.nonzero(wide[d:])[0] + d
        if left_centers.size:
            out_parts.append(sentence[left_centers])
            in_parts.append(sentence[left_centers - d])
        # Right neighbor (i + d): centers i in [0, L - d) with span >= d.
        right_centers = np.nonzero(wide[: L - d])[0]
        if right_centers.size:
            out_parts.append(sentence[right_centers])
            in_parts.append(sentence[right_centers + d])
    if not out_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(in_parts), np.concatenate(out_parts)


def sample_negatives(
    table: UnigramTable,
    outputs: np.ndarray,
    num_negatives: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``(B, k)`` negatives; one redraw for positive collisions.

    Returns ``(negatives, mask)`` where masked-out entries (still colliding
    after redraw) must not contribute gradient.
    """
    B = len(outputs)
    if num_negatives == 0:
        neg = np.empty((B, 0), dtype=np.int64)
        return neg, np.empty((B, 0), dtype=bool)
    neg = table.draw(rng, (B, num_negatives))
    collide = neg == outputs[:, None]
    if collide.any():
        redraw = table.draw(rng, int(collide.sum()))
        neg[collide] = redraw
        collide = neg == outputs[:, None]
    return neg, ~collide


def build_training_batch(
    sentences: list[np.ndarray],
    *,
    window: int,
    keep_prob: np.ndarray,
    table: UnigramTable,
    num_negatives: int,
    rng: np.random.Generator,
) -> TrainingBatch:
    """Subsample + pair + negative-sample a chunk of sentences.

    This is the "edge generation" of the graph formulation (paper §4.2):
    positive edges from windows, negative edges from the noise distribution,
    regenerated fresh every epoch from the worklist.
    """
    in_parts: list[np.ndarray] = []
    out_parts: list[np.ndarray] = []
    for sentence in sentences:
        kept = subsample_sentence(sentence, keep_prob, rng)
        ins, outs = generate_pairs(kept, window, rng)
        if ins.size:
            in_parts.append(ins)
            out_parts.append(outs)
    if in_parts:
        inputs = np.concatenate(in_parts)
        outputs = np.concatenate(out_parts)
    else:
        inputs = np.empty(0, dtype=np.int64)
        outputs = np.empty(0, dtype=np.int64)
    negatives, mask = sample_negatives(table, outputs, num_negatives, rng)
    return TrainingBatch(
        inputs=inputs, outputs=outputs, negatives=negatives, negative_mask=mask
    )


def sgns_update(
    embedding: np.ndarray,
    training: np.ndarray,
    batch: TrainingBatch,
    learning_rate: float,
    compute_loss: bool = False,
) -> float:
    """One scatter-add SGD step over ``batch``; returns summed loss (or 0).

    Gradients are evaluated against the arrays' state at entry; duplicate
    rows within the batch accumulate (Hogwild-style batched application).
    """
    B = len(batch)
    if B == 0:
        return 0.0
    lr = np.float32(learning_rate)
    e = embedding[batch.inputs]  # (B, D)
    targets = np.concatenate([batch.outputs[:, None], batch.negatives], axis=1)
    t = training[targets]  # (B, K+1, D)
    scores = np.einsum("bd,bkd->bk", e, t)
    sig = expit(scores)
    # labels: column 0 positive; masked-out negatives get zero gradient.
    grad_scale = sig.copy()
    grad_scale[:, 0] -= 1.0
    if batch.num_negatives:
        grad_scale[:, 1:] *= batch.negative_mask
    g = grad_scale * lr  # (B, K+1)

    grad_e = np.einsum("bk,bkd->bd", g, t)
    grad_t = g[:, :, None] * e[:, None, :]
    np.subtract.at(embedding, batch.inputs, grad_e.astype(embedding.dtype))
    np.subtract.at(
        training,
        targets.ravel(),
        grad_t.reshape(-1, training.shape[1]).astype(training.dtype),
    )

    if not compute_loss:
        return 0.0
    pos = np.maximum(sig[:, 0], _MIN_PROB)
    loss = -np.log(pos).sum()
    if batch.num_negatives:
        neg = np.maximum(1.0 - sig[:, 1:], _MIN_PROB)
        loss -= (np.log(neg) * batch.negative_mask).sum()
    return float(loss)


def apply_training_batch(
    embedding: np.ndarray,
    training: np.ndarray,
    batch: TrainingBatch,
    learning_rate: float,
    batch_pairs: int,
    compute_loss: bool = False,
) -> tuple[float, int]:
    """Apply ``batch`` in ``batch_pairs``-sized slices; (loss, pairs) totals."""
    if batch_pairs < 1:
        raise ValueError(f"batch_pairs must be >= 1, got {batch_pairs}")
    total_loss = 0.0
    B = len(batch)
    for start in range(0, B, batch_pairs):
        piece = batch.slice(start, min(start + batch_pairs, B))
        total_loss += sgns_update(
            embedding, training, piece, learning_rate, compute_loss=compute_loss
        )
    return total_loss, B
