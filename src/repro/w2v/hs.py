"""Hierarchical-softmax training kernel.

With hierarchical softmax (Mikolov et al. 2013) the output layer is one
vector per *inner node* of the vocabulary's Huffman tree (V-1 vectors).
Predicting word ``w`` from input embedding ``e`` trains one logistic
regression per node on w's root path: for path node ``p`` with branch bit
``b`` (0 = left), the target label is ``1 - b`` and

    σ = sigmoid(e · syn1[p]);   g = (σ − (1 − b))·α
    e −= Σ_p g_p · syn1[p];     syn1[p] −= g_p · e

Batched over pairs with per-word code lengths handled by masking the
padded code/point matrices of :class:`repro.w2v.huffman.HuffmanTree`.
"""

from __future__ import annotations

import numpy as np
from scipy.special import expit

from repro.w2v.huffman import HuffmanTree

__all__ = ["hs_update", "hs_pairs_access"]

_MIN_PROB = 1e-10


def hs_pairs_access(outputs: np.ndarray, tree: HuffmanTree) -> np.ndarray:
    """Sorted unique inner-node rows the given output words train against."""
    if len(outputs) == 0:
        return np.empty(0, dtype=np.int64)
    points = tree.point_matrix[outputs]
    lengths = tree.code_lengths[outputs]
    mask = np.arange(tree.max_code_length)[None, :] < lengths[:, None]
    return np.unique(points[mask])


def hs_update(
    embedding: np.ndarray,
    hs_output: np.ndarray,
    inputs: np.ndarray,
    outputs: np.ndarray,
    tree: HuffmanTree,
    learning_rate: float,
    compute_loss: bool = False,
    input_vectors: np.ndarray | None = None,
    input_scatter: np.ndarray | None = None,
) -> float:
    """One batched HS step for (input, output) pairs; returns summed loss.

    ``inputs`` index ``embedding`` rows unless ``input_vectors`` is given
    (the CBOW case: precomputed context means, with ``input_scatter``
    mapping each example's input gradient back to context rows — see
    :func:`repro.w2v.cbow.cbow_update`).  Gradients are evaluated against
    entry state (Hogwild-style batching, as in the SGNS kernel).
    """
    B = len(outputs)
    if B == 0:
        return 0.0
    if hs_output.shape[0] != tree.num_inner_nodes:
        raise ValueError(
            f"hs_output has {hs_output.shape[0]} rows, tree expects "
            f"{tree.num_inner_nodes}"
        )
    lr = np.float32(learning_rate)
    codes = tree.code_matrix[outputs]  # (B, L)
    points = tree.point_matrix[outputs]  # (B, L)
    lengths = tree.code_lengths[outputs]
    mask = np.arange(tree.max_code_length)[None, :] < lengths[:, None]

    e = embedding[inputs] if input_vectors is None else input_vectors  # (B, D)
    t = hs_output[points]  # (B, L, D)
    scores = np.einsum("bd,bld->bl", e, t)
    sig = expit(scores)
    labels = 1.0 - codes
    g = (sig - labels) * mask * lr  # (B, L)

    grad_e = np.einsum("bl,bld->bd", g, t)
    grad_t = g[:, :, None] * e[:, None, :]
    if input_vectors is None:
        np.subtract.at(embedding, inputs, grad_e.astype(embedding.dtype))
    else:
        if input_scatter is None:
            raise ValueError("input_vectors requires input_scatter")
        segments, rows = input_scatter
        np.subtract.at(
            embedding, rows, grad_e[segments].astype(embedding.dtype)
        )
    np.subtract.at(
        hs_output,
        points.ravel(),
        grad_t.reshape(-1, hs_output.shape[1]).astype(hs_output.dtype),
    )

    if not compute_loss:
        return 0.0
    # loss per node: -log sigma(s) for label 1, -log(1 - sigma(s)) for 0.
    prob = np.where(labels > 0.5, sig, 1.0 - sig)
    prob = np.maximum(prob, _MIN_PROB)
    return float(-(np.log(prob) * mask).sum())
