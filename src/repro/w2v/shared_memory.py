"""Single-host Word2Vec trainer.

This is the paper's shared-memory (SM) configuration: the same operator the
distributed trainer runs per host, driven by a Galois chunked worklist over
the whole corpus.  It serves three roles: the SM convergence line in
Figure 6, the per-host compute of :class:`~repro.w2v.distributed.GraphWord2Vec`
(which reuses the same kernels), and the reference the baselines in
:mod:`repro.baselines` are compared against.

All four Word2Vec configurations are supported through
:mod:`repro.w2v.steps`: Skip-Gram / CBOW x negative sampling / hierarchical
softmax (the paper evaluates Skip-Gram with negative sampling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.galois.accumulators import GAccumulator
from repro.galois.do_all import DoAllExecutor, do_all, resolve_executor
from repro.galois.worklist import ChunkedWorklist
from repro.text.corpus import Corpus
from repro.text.negative_sampling import UnigramTable
from repro.util.rng import SeedSequenceTree
from repro.w2v.huffman import HuffmanTree
from repro.w2v.model import Word2VecModel
from repro.w2v.params import Word2VecParams
from repro.w2v.steps import build_round_work, output_rows_for

__all__ = ["SharedMemoryWord2Vec", "EpochStats"]

# Sentences handed to one example-generation call; amortizes Python overhead
# without materially changing the Hogwild batching granularity.
_SENTENCES_PER_CHUNK = 32


@dataclass
class EpochStats:
    epoch: int
    learning_rate: float
    pairs: int
    loss: float


class SharedMemoryWord2Vec:
    """Sequential (single-host) Word2Vec trainer."""

    def __init__(
        self,
        corpus: Corpus,
        params: Word2VecParams = Word2VecParams(),
        seed: int | None = None,
        compute_loss: bool = False,
        executor: DoAllExecutor | None = None,
        workers: int | None = None,
    ):
        """``executor``/``workers`` enable Galois-style intra-host parallelism.

        With an executor (e.g. :class:`repro.galois.do_all.ThreadPoolDoAll`,
        or the shorthand ``workers=N`` for a private pool; at most one of the
        two) worklist chunks are processed Hogwild-style (paper §2.3):
        example generation is deterministic (per-chunk seed-tree streams) —
        so *pair counts* are exact regardless of executor — but concurrent
        scatter-adds race benignly on the shared model, so the trained
        vectors are *not* bit-reproducible across runs.  ``workers=1`` runs
        the same chunk-scheduled path serially (deterministic, and
        pair-count-identical to any worker count); the default (no executor,
        ``workers=None``) is the classic fully sequential path."""
        self.corpus = corpus.split_long_sentences(params.max_sentence_length)
        self.params = params
        self.compute_loss = compute_loss
        self.executor = resolve_executor(executor, workers)
        self._seeds = SeedSequenceTree(seed if seed is not None else 0)
        vocab = corpus.vocabulary
        self.model = Word2VecModel.initialize(
            len(vocab),
            params.dim,
            self._seeds.child("init"),
            output_rows=output_rows_for(params, len(vocab)),
        )
        self._keep_prob = vocab.keep_probabilities(params.subsample_threshold)
        self._table = (
            UnigramTable(vocab.counts) if params.objective == "negative" else None
        )
        self._tree = (
            HuffmanTree.from_counts(vocab.counts)
            if params.objective == "hierarchical"
            else None
        )
        self.epoch_stats: list[EpochStats] = []

    def train(
        self,
        epoch_callback: Callable[[int, Word2VecModel], None] | None = None,
    ) -> Word2VecModel:
        """Run all epochs; invokes ``epoch_callback(epoch, model)`` after each."""
        params = self.params
        for epoch in range(params.epochs):
            lr = params.learning_rate_for_epoch(epoch)
            rng = self._seeds.subtree("epoch", epoch).child("train")
            sentences = list(self.corpus.sentences)
            if params.shuffle_each_epoch:
                order = rng.permutation(len(sentences))
                sentences = [sentences[i] for i in order]
            worklist = ChunkedWorklist(sentences, chunk_size=_SENTENCES_PER_CHUNK)
            if self.executor is None:
                epoch_loss, epoch_pairs = self._train_epoch_sequential(worklist, rng, lr)
            else:
                epoch_loss, epoch_pairs = self._train_epoch_hogwild(
                    worklist, epoch, lr
                )
            self.epoch_stats.append(
                EpochStats(epoch=epoch, learning_rate=lr, pairs=epoch_pairs, loss=epoch_loss)
            )
            if epoch_callback is not None:
                epoch_callback(epoch, self.model)
        return self.model

    # ------------------------------------------------------------------
    def _train_epoch_sequential(
        self, worklist: ChunkedWorklist, rng, lr: float
    ) -> tuple[float, int]:
        epoch_loss = 0.0
        epoch_pairs = 0
        while not worklist.empty():
            chunk = worklist.pop_chunk()
            work = build_round_work(
                chunk,
                params=self.params,
                keep_prob=self._keep_prob,
                table=self._table,
                tree=self._tree,
                rng=rng,
            )
            loss, pairs = work.apply(
                self.model.embedding,
                self.model.training,
                lr,
                self.params.batch_pairs,
                compute_loss=self.compute_loss,
            )
            epoch_loss += loss
            epoch_pairs += pairs
        return epoch_loss, epoch_pairs

    def _train_epoch_hogwild(
        self, worklist: ChunkedWorklist, epoch: int, lr: float
    ) -> tuple[float, int]:
        """Chunks processed by the executor; racy shared-model updates."""
        chunks: list[tuple[int, list]] = []
        index = 0
        while not worklist.empty():
            chunks.append((index, worklist.pop_chunk()))
            index += 1
        loss_acc = GAccumulator()
        pairs_acc = GAccumulator()
        epoch_seeds = self._seeds.subtree("epoch", epoch)

        def operator(item: tuple[int, list]) -> None:
            chunk_index, chunk = item
            chunk_rng = epoch_seeds.child("chunk", chunk_index)
            work = build_round_work(
                chunk,
                params=self.params,
                keep_prob=self._keep_prob,
                table=self._table,
                tree=self._tree,
                rng=chunk_rng,
            )
            # Hogwild by design: chunks race on the shared model without
            # locks (Recht et al.); the overlap the dataflow pass reports
            # is the algorithm, not a bug.
            loss, pairs = work.apply(  # repro: noqa[REPRO111,REPRO112]
                self.model.embedding,
                self.model.training,
                lr,
                self.params.batch_pairs,
                compute_loss=self.compute_loss,
            )
            loss_acc.update(loss)
            pairs_acc.update(float(pairs))

        do_all(chunks, operator, executor=self.executor)
        return loss_acc.value, int(pairs_acc.value)
