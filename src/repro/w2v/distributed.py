"""GraphWord2Vec: distributed Word2Vec training (paper Algorithm 1, §4).

Formulation.  Vocabulary words are graph nodes carrying two labels (the
embedding and output-layer vectors); training pairs are edges generated on
the fly each round from the per-host worklist (the host's contiguous shard
of the corpus).  Because an edge may connect any pair of nodes, the graph
is partitioned with the *replicate-all* policy: every host holds a proxy
for every node, masters block-distributed (paper §4.2, Figures 4/5).

Execution.  Per epoch, each host's worklist is split into ``S``
synchronization rounds.  A round applies the Word2Vec operator to the
host's chunk (updating its replica in place) and then bulk-synchronizes
both label fields through Gluon: mirrors ship *deltas* since the round's
base, the master folds them with the configured combiner (model combiner
by default), and new canonical values are broadcast back under the
configured communication plan (RepModel-Naive / RepModel-Opt / PullModel).
After all rounds the learning rate decays and the next epoch begins.

Configurations.  The paper evaluates Skip-Gram with negative sampling; all
four {Skip-Gram, CBOW} x {negative sampling, hierarchical softmax}
combinations are supported (``Word2VecParams.architecture``/``objective``).
Under hierarchical softmax the output field has one node per Huffman inner
node (V-1), synchronized over its own replicate-all partitions.

Determinism.  Every stochastic choice (shuffles, subsampling, windows,
negatives) is drawn from a seed tree keyed by (epoch, round, host), so runs
are pure functions of the seed — in particular the *same* training examples
are generated under every communication plan, which is what makes the
"plans differ only in bytes, never in the model" invariant testable.

Fault tolerance.  With ``faults`` enabled the trainer takes a canonical
round-granular checkpoint at every synchronization boundary and consults a
:class:`~repro.cluster.faults.FaultSchedule`.  Transient message faults are
retransmitted inside the phase barrier (extra bytes + backoff, payloads
intact).  A fail-stop host crash loses the host's replica and its in-round
work; recovery restores the host's own master block from the checkpoint,
streams surviving masters' blocks over the network, and replays the lost
worklist chunk.  Because replicas hold canonical values at round boundaries
and work generation is seed-pure, the replayed updates are *bit-identical*
to the lost ones: faults cost time and bytes, never model quality.  The
modeled recovery time redistributes the dead host's shard across the
surviving hosts — consistent with how the simulation treats all wall-clock
(values come from the sequential execution, time from the concurrency
model).  The schedule itself is a pure function of the seed, so faulty runs
are exactly as reproducible as fault-free ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import time
from typing import Callable

import numpy as np

from repro.analysis.runtime import (
    DoAllRaceSanitizer,
    GluonSyncChecker,
    SanitizedExecutor,
    SanitizeError,
    note_write,
    sanitize_from_env,
)
from repro.cluster.faults import FaultConfig, FaultReport, FaultSchedule
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.network import NetworkModel, SCALED_DEFAULT
from repro.cluster.simulator import DistributedRunReport
from repro.core.combiners import GradientCombiner, get_combiner
from repro.dgraph.engine import TrainingEngine, resolve_training_engine
from repro.galois.do_all import (
    DoAllExecutor,
    SerialExecutor,
    do_all,
    executor_from_env,
    resolve_executor,
)
from repro.gluon.bitvector import BitVector
from repro.gluon.comm import VALUE_BYTES, SimulatedNetwork
from repro.gluon.partitioner import replicate_all_partitions
from repro.gluon.plans import CommPlan, get_plan
from repro.gluon.proxies import master_block_slice
from repro.gluon.sync import FieldSync, GluonSynchronizer
from repro.text.corpus import Corpus
from repro.text.negative_sampling import UnigramTable
from repro.util.rng import SeedSequenceTree
from repro.w2v.huffman import HuffmanTree
from repro.w2v.io import CheckpointState, load_checkpoint_blob, save_checkpoint_blob
from repro.w2v.model import Word2VecModel
from repro.w2v.params import Word2VecParams
from repro.w2v.steps import RoundWork, build_round_work, output_rows_for

__all__ = ["GraphWord2Vec", "DistributedTrainResult", "default_sync_rounds"]


def default_sync_rounds(num_hosts: int) -> int:
    """The paper's rule of thumb: frequency grows ~linearly with hosts.

    Matches the host(frequency) labels of Figures 8/9 — 1(1), 2(3), 4(6),
    8(12), 16(24), 32(48), 64(96): ``S = max(1, round(1.5 * H))``.
    """
    if num_hosts <= 0:
        raise ValueError(f"num_hosts must be positive, got {num_hosts}")
    return max(1, round(1.5 * num_hosts))


@dataclass
class DistributedTrainResult:
    """Final canonical model plus the run's accounting."""

    model: Word2VecModel
    report: DistributedRunReport
    epoch_pairs: list[int] = field(default_factory=list)


class GraphWord2Vec:
    """Distributed Word2Vec on the simulated Gluon cluster."""

    def __init__(
        self,
        corpus: Corpus,
        params: Word2VecParams = Word2VecParams(),
        num_hosts: int = 1,
        sync_rounds_per_epoch: int | None = None,
        combiner: str | GradientCombiner = "mc",
        plan: str | CommPlan = "opt",
        seed: int | None = None,
        network_model: NetworkModel = SCALED_DEFAULT,
        compute_loss: bool = False,
        host_speed_factors: list[float] | None = None,
        faults: FaultConfig | FaultSchedule | None = None,
        executor: DoAllExecutor | None = None,
        workers: int | None = None,
        sanitize: bool | None = None,
        engine: str | TrainingEngine = "bsp",
        staleness: int = 0,
        delay_compensation: float = 0.0,
    ):
        """``executor``/``workers`` choose how the per-host compute (and
        PullModel inspection) phases execute: pass a
        :class:`~repro.galois.do_all.DoAllExecutor`, or ``workers=N`` to get
        a private :class:`~repro.galois.do_all.ThreadPoolDoAll` (``N=1`` =
        serial); at most one of the two.  When neither is given the
        ``REPRO_WORKERS`` environment variable is consulted, else execution
        is serial.  Per-host replicas are disjoint arrays, so the trained
        model is *bit-identical* under every executor — parallelism changes
        only the real wall-clock, never results or the modeled timing
        (per-host compute is measured with ``time.thread_time``, which is
        contention-independent).

        ``host_speed_factors`` models a heterogeneous cluster: host h's
        measured compute time is scaled by factor[h] (>1 = slower host)
        before entering the BSP timing model, whose per-round max then
        shows the straggler effect.  Training results are unaffected —
        only the modeled wall-clock changes.

        ``faults`` enables fault injection: pass a
        :class:`~repro.cluster.faults.FaultConfig` (a schedule is
        materialized from this trainer's seed tree) or a pre-built
        :class:`~repro.cluster.faults.FaultSchedule`.  ``None`` (default)
        leaves every fault hook disengaged — byte accounting, timing and
        the final model are bit-identical to a build without the fault
        subsystem.

        ``sanitize`` enables the :mod:`repro.analysis.runtime` sanitizers:
        compute loops run under a :class:`SanitizedExecutor` (cross-host
        data-race detection) and both synchronizers get a
        :class:`GluonSyncChecker` (protocol auditing).  Findings raise
        :class:`~repro.analysis.runtime.SanitizeError` at the next round
        barrier.  Sanitizers observe and never perturb, so a sanitized run
        is bit-identical to an unsanitized one.  ``None`` (default) defers
        to the ``REPRO_SANITIZE`` environment variable."""
        if num_hosts <= 0:
            raise ValueError(f"num_hosts must be positive, got {num_hosts}")
        if host_speed_factors is not None:
            if len(host_speed_factors) != num_hosts:
                raise ValueError(
                    f"need {num_hosts} speed factors, got {len(host_speed_factors)}"
                )
            if any(f <= 0 for f in host_speed_factors):
                raise ValueError("speed factors must be positive")
        vocab_size = len(corpus.vocabulary)
        output_rows = output_rows_for(params, vocab_size)
        if min(vocab_size, output_rows) < num_hosts:
            raise ValueError(
                f"vocabulary ({vocab_size}) smaller than host count ({num_hosts})"
            )
        self.corpus = corpus.split_long_sentences(params.max_sentence_length)
        self.params = params
        self.num_hosts = int(num_hosts)
        self.sync_rounds = (
            default_sync_rounds(num_hosts)
            if sync_rounds_per_epoch is None
            else int(sync_rounds_per_epoch)
        )
        if self.sync_rounds < 1:
            raise ValueError(f"sync rounds must be >= 1, got {self.sync_rounds}")
        self.combiner = (
            get_combiner(combiner) if isinstance(combiner, str) else combiner
        )
        self.plan = get_plan(plan) if isinstance(plan, str) else plan
        # The execution engine owns the round loop's clock model: "bsp"
        # (every round a global barrier) or "async" (bounded-staleness
        # SSP; see repro.dgraph.async_engine).  Trainer code talks to the
        # TrainingEngine seam only.
        self.engine = resolve_training_engine(
            engine, staleness=staleness, delay_compensation=delay_compensation
        )
        self.network_model = network_model
        self.compute_loss = compute_loss
        self.host_speed_factors = (
            [1.0] * num_hosts if host_speed_factors is None else list(host_speed_factors)
        )
        resolved = resolve_executor(executor, workers)
        if resolved is None:
            resolved = executor_from_env()
        self.executor: DoAllExecutor = resolved or SerialExecutor()
        self.sanitize = sanitize_from_env() if sanitize is None else bool(sanitize)
        if self.sanitize:
            self.race_sanitizer: DoAllRaceSanitizer | None = DoAllRaceSanitizer()
            self.sync_checker: GluonSyncChecker | None = GluonSyncChecker()
            self.executor = SanitizedExecutor(
                self.executor, self.race_sanitizer, name="w2v"
            )
        else:
            self.race_sanitizer = None
            self.sync_checker = None
        self._seeds = SeedSequenceTree(seed if seed is not None else 0)

        # Fault injection: the schedule is a pure function of the seed tree,
        # so faulty runs are exactly as reproducible as fault-free ones.
        if faults is None:
            self.fault_schedule: FaultSchedule | None = None
        elif isinstance(faults, FaultSchedule):
            if faults.num_hosts != self.num_hosts:
                raise ValueError(
                    f"fault schedule built for {faults.num_hosts} hosts, "
                    f"trainer has {self.num_hosts}"
                )
            self.fault_schedule = faults
        elif isinstance(faults, FaultConfig):
            self.fault_schedule = FaultSchedule.generate(
                faults,
                seed=self._seeds.subtree("faults").seed,
                num_hosts=self.num_hosts,
                epochs=params.epochs,
                rounds_per_epoch=self.sync_rounds,
            )
        else:
            raise TypeError(
                f"faults must be FaultConfig, FaultSchedule or None, got {type(faults)!r}"
            )
        self.fault_report = (
            FaultReport() if self.fault_schedule is not None else None
        )
        self._fault_injector = (
            self.fault_schedule.message_injector()
            if self.fault_schedule is not None
            else None
        )
        self._round_checkpoint: Word2VecModel | None = None

        vocab = corpus.vocabulary
        self._keep_prob = vocab.keep_probabilities(params.subsample_threshold)
        self._table = (
            UnigramTable(vocab.counts) if params.objective == "negative" else None
        )
        self._tree = (
            HuffmanTree.from_counts(vocab.counts)
            if params.objective == "hierarchical"
            else None
        )

        # Substrate: replicate-all partitions per field (the output layer
        # has its own node space under hierarchical softmax), one network.
        self.network = SimulatedNetwork(self.num_hosts, fault_injector=self._fault_injector)
        self.partitions = replicate_all_partitions(vocab_size, self.num_hosts)
        self._sync_emb = GluonSynchronizer(self.partitions, self.network)
        if output_rows == vocab_size:
            self.partitions_out = self.partitions
            self._sync_out = self._sync_emb
        else:
            self.partitions_out = replicate_all_partitions(
                output_rows, self.num_hosts
            )
            self._sync_out = GluonSynchronizer(self.partitions_out, self.network)
        if self.sync_checker is not None:
            # One checker serves both synchronizers (state is keyed by
            # field name; the two fields have distinct names).
            self._sync_emb.checker = self.sync_checker
            self._sync_out.checker = self.sync_checker
        self.metrics = ClusterMetrics(self.num_hosts)
        self.bounds = self.partitions[0].master_bounds
        self.bounds_out = self.partitions_out[0].master_bounds

        # Model replicas: identical initialization on every host (all hosts
        # derive it from the shared seed, as they derive node ids from the
        # shared hash function).
        init = Word2VecModel.initialize(
            vocab_size, params.dim, self._seeds.child("init"), output_rows=output_rows
        )
        self._fields = {
            "embedding": FieldSync(
                "embedding",
                arrays=[init.embedding.copy() for _ in range(self.num_hosts)],
                bases=[init.embedding.copy() for _ in range(self.num_hosts)],
            ),
            "training": FieldSync(
                "training",
                arrays=[init.training.copy() for _ in range(self.num_hosts)],
                bases=[init.training.copy() for _ in range(self.num_hosts)],
            ),
        }

        # Per-host contiguous shards of the corpus (Algorithm 1, line 4).
        self._shards = self.corpus.shard(self.num_hosts)
        self._epoch_chunks_cache: dict[int, list[list[list[np.ndarray]]]] = {}
        self._work_cache: dict[tuple[int, int, int], RoundWork] = {}
        self._pairs_total = 0
        self._epoch_pairs: list[int] = []
        self._peak_access_rows = 0
        self._completed_epochs = 0
        # Round-granular progress: rounds finished inside the current epoch,
        # and the training pairs those rounds processed.
        self._completed_rounds = 0
        self._partial_pairs = 0
        # Async-engine state (unused under BSP): the canonical value store
        # (the fold frontier's ground truth), bounded-staleness bookkeeping
        # (pending-stale rows, next-round access sets), the replayed
        # event-order makespan of the spans trained so far, and the
        # step/fold timeline the Chrome trace renders.
        self._canonical: dict[str, np.ndarray] | None = None
        self._async_state: dict | None = None
        self._async_makespan_s = 0.0
        self.async_timeline = None

    # ------------------------------------------------------------------
    # Deterministic work generation
    # ------------------------------------------------------------------
    def _epoch_chunks(self, epoch: int) -> list[list[list[np.ndarray]]]:
        """``[host][round] -> sentences`` for ``epoch`` (shuffled, memoized)."""
        cached = self._epoch_chunks_cache.get(epoch)
        if cached is not None:
            return cached
        per_host: list[list[list[np.ndarray]]] = []
        for host in range(self.num_hosts):
            sentences = list(self._shards[host])
            if self.params.shuffle_each_epoch and len(sentences) > 1:
                rng = self._seeds.subtree("epoch", epoch).child("shuffle", host)
                order = rng.permutation(len(sentences))
                sentences = [sentences[i] for i in order]
            # Contiguous split into S nearly-equal rounds (Algorithm 1 l.8).
            S = self.sync_rounds
            base, extra = divmod(len(sentences), S)
            rounds = []
            start = 0
            for s in range(S):
                size = base + (1 if s < extra else 0)
                rounds.append(sentences[start : start + size])
                start += size
            per_host.append(rounds)
        # Only the current and next epoch are ever needed: by the time epoch
        # ``e`` is requested (compute of ``e``, or PullModel inspection of
        # ``e`` from the last round of ``e-1``), epochs ``< e`` can never be
        # asked for again — drop them so their shuffled sentence lists don't
        # pin dead corpus memory for the rest of the run.
        # The cache writes below are reachable from the parallel
        # ``inspect_host`` operator, but never race: ``_run_round``
        # materializes the inspected epoch serially before fanning out
        # (see "materialize serially"), so the operator only ever hits the
        # already-populated cache.
        self._epoch_chunks_cache = {  # repro: noqa[REPRO111]
            k: self._epoch_chunks_cache[k]
            for k in sorted(self._epoch_chunks_cache)
            if k >= epoch
        }
        self._epoch_chunks_cache[epoch] = per_host  # repro: noqa[REPRO111]
        return per_host

    def _get_work(self, epoch: int, round_index: int, host: int) -> RoundWork:
        """The (memoized) round work for one (epoch, round, host) slot.

        Work is a pure function of the seed tree, so inspection (which needs
        it one sync early under PullModel) and compute see the same edges
        without storing more than ~two rounds of examples.
        """
        key = (epoch, round_index, host)
        work = self._work_cache.get(key)
        if work is None:
            work = self._build_work(epoch, round_index, host)
            self._work_cache[key] = work
        return work

    def _build_work(self, epoch: int, round_index: int, host: int) -> RoundWork:
        """Generate one slot's work, bypassing the memo cache.

        A pure function of the seed tree (given materialized epoch chunks),
        so concurrent calls for distinct hosts are safe — the parallel
        inspection phase relies on this.
        """
        sentences = self._epoch_chunks(epoch)[host][round_index]
        rng = (
            self._seeds.subtree("epoch", epoch)
            .subtree("round", round_index)
            .child("pairs", host)
        )
        return build_round_work(
            sentences,
            params=self.params,
            keep_prob=self._keep_prob,
            table=self._table,
            tree=self._tree,
            rng=rng,
        )

    def _pop_work(self, epoch: int, round_index: int, host: int) -> RoundWork:
        work = self._get_work(epoch, round_index, host)
        del self._work_cache[(epoch, round_index, host)]
        return work

    def _next_slot(self, epoch: int, round_index: int) -> tuple[int, int] | None:
        if round_index + 1 < self.sync_rounds:
            return epoch, round_index + 1
        if epoch + 1 < self.params.epochs:
            return epoch + 1, 0
        return None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(
        self,
        epoch_callback: Callable[[int, Word2VecModel], None] | None = None,
        until_epoch: int | None = None,
        until_round: int | None = None,
    ) -> DistributedTrainResult:
        """Train remaining epochs (all, or up to ``until_epoch`` exclusive).

        ``until_epoch`` does not change the learning-rate schedule — it only
        pauses training, so a paused-and-resumed run replays the exact same
        steps as an uninterrupted one (see :meth:`save_checkpoint`).
        ``until_round`` pauses with round granularity: training stops once
        ``until_round`` *global* synchronization rounds (``epoch *
        sync_rounds + round``) have completed, mid-epoch boundaries
        included.
        """
        params = self.params
        stop = params.epochs if until_epoch is None else min(until_epoch, params.epochs)

        makespan = self.engine.run(self, stop, until_round, epoch_callback)
        if makespan is not None:
            self._async_makespan_s += makespan

        if self.fault_report is not None:
            self.fault_report.absorb_injector(self._fault_injector)
        report = DistributedRunReport.build(
            num_hosts=self.num_hosts,
            sync_rounds_per_epoch=self.sync_rounds,
            epochs=params.epochs,
            plan=self.plan.name,
            combiner=self.combiner.name,
            metrics=self.metrics,
            network=self.network,
            model=self.network_model,
            pairs_processed=self._pairs_total + self._partial_pairs,
            peak_replica_rows=self._peak_access_rows,
            fault_report=self.fault_report,
            makespan_s=(
                self._async_makespan_s if self.engine.name != "bsp" else None
            ),
        )
        return DistributedTrainResult(
            model=self.canonical_model(),
            report=report,
            epoch_pairs=list(self._epoch_pairs),
        )

    def _roll_epoch(
        self,
        epoch: int,
        epoch_callback: Callable[[int, Word2VecModel], None] | None,
    ) -> None:
        """Close out ``epoch``: pair accounting, progress, user callback.

        Called by the engines at every epoch boundary (the last round of
        the epoch has folded), so callbacks observe the same canonical
        states under BSP and async execution.
        """
        self._pairs_total += self._partial_pairs
        self._epoch_pairs.append(self._partial_pairs)
        self._partial_pairs = 0
        self._completed_rounds = 0
        self._completed_epochs = epoch + 1
        if epoch_callback is not None:
            epoch_callback(epoch, self.canonical_model())

    def _run_round(self, epoch: int, s: int, lr: float) -> int:
        """Execute one synchronization round; returns pairs processed."""
        params = self.params
        emb_field = self._fields["embedding"]
        out_field = self._fields["training"]
        V = emb_field.num_nodes
        O = out_field.num_nodes
        schedule = self.fault_schedule
        crashes = schedule.crashes_at(epoch, s) if schedule is not None else ()
        if schedule is not None and schedule.has_crashes:
            # Round-granular checkpoint: the canonical state at this
            # boundary is what crash recovery restores from.  Writes are
            # modeled as asynchronous (overlapped with the next round's
            # compute), so checkpointing itself costs no modeled time;
            # restores are charged when a crash happens.
            self._round_checkpoint = self.canonical_model()
        crashed_hosts = {ev.host for ev in crashes}
        round_pairs = 0

        self.metrics.begin_round()
        updated_emb = [BitVector(V) for _ in range(self.num_hosts)]
        updated_out = [BitVector(O) for _ in range(self.num_hosts)]

        # -- compute phase (hosts run concurrently on a cluster; the
        #    executor mirrors that on real cores).  Work generation stays
        #    serial — it mutates the shared caches — then the kernels run
        #    under the executor on *disjoint* per-host replica arrays, and
        #    the accounting folds serially in host order.  Results and
        #    metrics are therefore bit-identical to SerialExecutor under
        #    any executor and any thread schedule.
        live_hosts = [h for h in range(self.num_hosts) if h not in crashed_hosts]
        works = {h: self._pop_work(epoch, s, h) for h in live_hosts}
        compute_slots: list[tuple[float, int] | None] = [None] * self.num_hosts

        def compute_host(host: int) -> None:
            # thread_time = this thread's CPU time: the measurement feeding
            # the timing model stays contention-independent, so reported
            # per-host times do not change just because the simulator itself
            # runs hosts concurrently.
            start = time.thread_time()
            _loss, pairs = works[host].apply(
                emb_field.arrays[host],
                out_field.arrays[host],
                lr,
                params.batch_pairs,
                compute_loss=self.compute_loss,
            )
            compute_slots[host] = (time.thread_time() - start, pairs)
            # Shadow access records for the race sanitizer (no-ops when the
            # loop is not sanitized).  Hosts write disjoint replica arrays,
            # so a clean report here is the parallel-compute invariant.
            work = works[host]
            note_write(
                emb_field.arrays[host], work.embedding_access,
                label=f"embedding[host={host}]",
            )
            note_write(
                out_field.arrays[host], work.output_access,
                label=f"training[host={host}]",
            )

        do_all(live_hosts, compute_host, executor=self.executor)

        base_times: list[float] = []
        slow_times: list[float] = []
        for host in live_hosts:
            measured, pairs = compute_slots[host]
            work = works[host]
            self.metrics.record_compute(
                host, measured * self._time_factor(epoch, s, host)
            )
            base_times.append(measured * self.host_speed_factors[host])
            slow_times.append(measured * self._time_factor(epoch, s, host))
            if work.embedding_access.size:
                updated_emb[host].set_many(work.embedding_access)
            if work.output_access.size:
                updated_out[host].set_many(work.output_access)
            round_pairs += pairs
        if (
            self.fault_report is not None
            and slow_times
            and slow_times != base_times
        ):
            self.fault_report.straggler_rounds += 1
            self.fault_report.straggler_extra_s += max(slow_times) - max(base_times)

        # -- recovery phase: failures surface at the barrier.
        if crashes:
            round_pairs += self._recover_crashes(
                epoch, s, lr, crashes, updated_emb, updated_out
            )

        # -- inspection phase (PullModel): generate the next round's
        #    edges to learn which nodes each host will access.  Example
        #    generation is a pure function of the seed tree, so hosts
        #    inspect concurrently under the executor; the shared caches are
        #    touched only serially (chunk shuffle before, memoization after).
        accessed_emb = accessed_out = None
        if self.plan.requires_access_sets:
            accessed_emb, accessed_out = [], []
            next_slot = self._next_slot(epoch, s)
            if next_slot is None:
                empty = np.empty(0, dtype=np.int64)
                accessed_emb = [empty] * self.num_hosts
                accessed_out = [empty] * self.num_hosts
            else:
                self._epoch_chunks(next_slot[0])  # materialize serially
                inspect_slots: list[tuple[RoundWork, float] | None] = (
                    [None] * self.num_hosts
                )

                def inspect_host(host: int) -> None:
                    start = time.thread_time()
                    key = (next_slot[0], next_slot[1], host)
                    next_work = self._work_cache.get(key)
                    if next_work is None:
                        next_work = self._build_work(*next_slot, host)
                    inspect_slots[host] = (
                        next_work, time.thread_time() - start
                    )

                do_all(
                    range(self.num_hosts), inspect_host, executor=self.executor
                )

                for host in range(self.num_hosts):
                    next_work, measured = inspect_slots[host]
                    self._work_cache[(next_slot[0], next_slot[1], host)] = next_work
                    self.metrics.record_inspection(host, measured)
                    accessed_emb.append(next_work.embedding_access)
                    accessed_out.append(next_work.output_access)
                    self._peak_access_rows = max(
                        self._peak_access_rows,
                        int(
                            next_work.embedding_access.size
                            + next_work.output_access.size
                        ),
                    )

        # -- synchronization (Algorithm 1, line 10).  The inductive
        # fold order rotates with the global round counter so no
        # host's shard is permanently favored by the combiner.
        fold = epoch * self.sync_rounds + s
        self._sync_emb.sync_replicated(
            emb_field, updated_emb, self.combiner, self.plan,
            accessed_next=accessed_emb, fold_offset=fold,
        )
        self._sync_out.sync_replicated(
            out_field, updated_out, self.combiner, self.plan,
            accessed_next=accessed_out, fold_offset=fold,
        )
        self.metrics.end_round()
        if self.sanitize:
            findings = self.sanitize_findings
            if findings:
                raise SanitizeError(findings, context=f"epoch {epoch} round {s}")
        return round_pairs

    @property
    def sanitize_findings(self):
        """All sanitizer findings so far (empty when ``sanitize`` is off)."""
        findings = []
        if self.race_sanitizer is not None:
            findings.extend(self.race_sanitizer.findings)
        if self.sync_checker is not None:
            findings.extend(self.sync_checker.findings)
        return findings

    def _time_factor(self, epoch: int, s: int, host: int) -> float:
        """Combined compute-time scaling: static speed x scheduled straggler."""
        factor = self.host_speed_factors[host]
        if self.fault_schedule is not None:
            straggler = self.fault_schedule.straggler_factor(epoch, s, host)
            if straggler != 1.0:
                factor *= straggler
        return factor

    def _recover_crashes(
        self,
        epoch: int,
        s: int,
        lr: float,
        crashes,
        updated_emb: list[BitVector],
        updated_out: list[BitVector],
    ) -> int:
        """Fail-stop recovery for round ``(epoch, s)``; returns pairs replayed.

        Per crashed host: (1) the barrier times out and declares it dead;
        (2) its replacement restores its own master block from the round
        checkpoint (stable storage) and every surviving master's block over
        the network; (3) the lost worklist chunk is replayed on the restored
        replica.  Replicas hold canonical values at round boundaries under
        every plan and work generation is a pure function of the seed tree,
        so the replayed updates are bit-identical to the lost ones.  The
        modeled recovery time redistributes the replay across the surviving
        hosts (values come from the sequential execution, wall-clock from
        the concurrency model, as everywhere in this simulation).
        """
        assert self._round_checkpoint is not None and self.fault_report is not None
        config = self.fault_schedule.config
        report = self.fault_report
        ckpt = self._round_checkpoint
        emb_field = self._fields["embedding"]
        out_field = self._fields["training"]
        crashed = {ev.host for ev in crashes}
        survivors = [h for h in range(self.num_hosts) if h not in crashed]
        pairs_replayed = 0

        for ev in crashes:
            h = ev.host
            report.crashes += 1
            report.detect_s += config.detect_timeout_s

            # (2a) own master block from the checkpoint — the only copy
            # that survives the crash.
            storage_bytes = 0
            for field_obj, ckpt_arr, bounds in (
                (emb_field, ckpt.embedding, self.bounds),
                (out_field, ckpt.training, self.bounds_out),
            ):
                lo, hi = int(bounds[h]), int(bounds[h + 1])
                field_obj.arrays[h][lo:hi] = ckpt_arr[lo:hi]
                field_obj.bases[h][lo:hi] = ckpt_arr[lo:hi]
                storage_bytes += (hi - lo) * field_obj.dim * VALUE_BYTES
            report.checkpoint_restore_bytes += storage_bytes
            storage_s = storage_bytes / config.restore_bandwidth_Bps

            # (2b) surviving masters stream their canonical blocks (the
            # recovery phases are priced into recovery time, not regular
            # communication, by the report builder).
            net_bytes = self._sync_emb.restore_host(emb_field, h)
            net_bytes += self._sync_out.restore_host(out_field, h)
            report.recovery_bytes += net_bytes

            # (3) replay the lost chunk on the restored canonical replica
            # (thread_time, like the compute phase: recovery cost must not
            # depend on what else shares the simulator's cores).
            work = self._pop_work(epoch, s, h)
            start = time.thread_time()
            _loss, pairs = work.apply(
                emb_field.arrays[h],
                out_field.arrays[h],
                lr,
                self.params.batch_pairs,
                compute_loss=self.compute_loss,
            )
            replay_measured = time.thread_time() - start
            pairs_replayed += pairs
            if work.embedding_access.size:
                updated_emb[h].set_many(work.embedding_access)
            if work.output_access.size:
                updated_out[h].set_many(work.output_access)

            # Timing: the doomed attempt burned part of the round's compute
            # on the dead host; the replay is redistributed across the
            # survivors (or runs on the restarted host when there are none).
            own_factor = self._time_factor(epoch, s, h)
            self.metrics.record_compute(
                h, ev.loss_fraction * replay_measured * own_factor
            )
            if survivors:
                replay_s = (
                    replay_measured
                    * max(self._time_factor(epoch, s, sv) for sv in survivors)
                    / len(survivors)
                )
            else:
                replay_s = replay_measured * own_factor
            report.replay_s += replay_s
            report.restore_s += storage_s
            self.metrics.record_recovery(
                h, config.detect_timeout_s + storage_s + replay_s
            )
        return pairs_replayed

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _config_fingerprint(self) -> str:
        """Identifies the training configuration a checkpoint belongs to."""
        base = (
            f"{self.params!r}|hosts={self.num_hosts}|S={self.sync_rounds}"
            f"|combiner={self.combiner.name}|plan={self.plan.name}"
            f"|seed={self._seeds.seed}|corpus_tokens={self.corpus.num_tokens}"
        )
        if self.engine.staleness or self.engine.delay_compensation:
            # SSP(s=0, λ=0) is bit-identical to BSP — its checkpoints are
            # interchangeable with BSP's in both directions.  Any s>0 (or
            # compensated) run replays a different interleaving, so its
            # checkpoints are its own.
            base += (
                f"|engine={self.engine.name}|s={self.engine.staleness}"
                f"|lam={self.engine.delay_compensation}"
            )
        return base

    def save_checkpoint(self) -> bytes:
        """Serialize the canonical model and training progress.

        Checkpoints are round-granular: training resumed from one replays
        the remaining rounds exactly (work generation is a pure function of
        the seed tree), including from mid-epoch boundaries reached via
        ``train(until_round=...)``.  Communication/compute accounting
        restarts at resume, so a resumed run's report covers only
        post-resume work.
        """
        model = self.canonical_model()
        return save_checkpoint_blob(
            CheckpointState(
                embedding=model.embedding,
                training=model.training,
                completed_epochs=self._completed_epochs,
                completed_rounds=self._completed_rounds,
                partial_pairs=self._partial_pairs,
                pairs_total=self._pairs_total,
                epoch_pairs=list(self._epoch_pairs),
                fingerprint=self._config_fingerprint(),
            )
        )

    def load_checkpoint(self, blob: bytes) -> int:
        """Restore a checkpoint into this trainer; returns the next epoch.

        The trainer must be constructed with the same corpus, parameters,
        topology and seed the checkpoint was taken from (verified).  All
        replicas are set to the canonical values, which matches the
        post-sync state for the RepModel plans and is a valid (fully
        refreshed) state for PullModel.
        """
        state = load_checkpoint_blob(blob)
        if state.fingerprint != self._config_fingerprint():
            raise ValueError(
                "checkpoint belongs to a different training configuration"
            )
        for h in range(self.num_hosts):
            np.copyto(self._fields["embedding"].arrays[h], state.embedding)
            np.copyto(self._fields["embedding"].bases[h], state.embedding)
            np.copyto(self._fields["training"].arrays[h], state.training)
            np.copyto(self._fields["training"].bases[h], state.training)
        self._completed_epochs = state.completed_epochs
        self._completed_rounds = state.completed_rounds
        self._partial_pairs = state.partial_pairs
        self._pairs_total = state.pairs_total
        self._epoch_pairs = list(state.epoch_pairs)
        self._work_cache.clear()
        self._epoch_chunks_cache.clear()
        # Async state is rebuilt lazily from the restored replicas: every
        # replica row is canonical again, nothing is pending-stale.
        self._canonical = None
        self._async_state = None
        if self.sync_checker is not None:
            # Replicas were rebuilt from canonical values: all prior
            # stale/residual tracking is void.
            self.sync_checker.reset_state()
        return state.completed_epochs

    # ------------------------------------------------------------------
    # Model assembly
    # ------------------------------------------------------------------
    def canonical_model(self) -> Word2VecModel:
        """Assemble the canonical model from each host's master block."""
        if self._canonical is not None:
            # Async engine: the canonical store *is* the fold frontier's
            # ground truth (master replica rows may carry unfolded work).
            return Word2VecModel(
                self._canonical["embedding"].copy(),
                self._canonical["training"].copy(),
            )
        emb = np.empty_like(self._fields["embedding"].arrays[0])
        trn = np.empty_like(self._fields["training"].arrays[0])
        for host in range(self.num_hosts):
            blk = master_block_slice(self.bounds, host)
            emb[blk] = self._fields["embedding"].arrays[host][blk]
            blk_o = master_block_slice(self.bounds_out, host)
            trn[blk_o] = self._fields["training"].arrays[host][blk_o]
        return Word2VecModel(emb.copy(), trn.copy())
