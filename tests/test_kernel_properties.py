"""Additional property-based checks on the training kernels."""

from hypothesis import given, settings, strategies as st
import numpy as np

from repro.core.combiners import get_combiner
from repro.w2v.sgd import TrainingBatch, sgns_update


def random_batch(rng, V, B, K):
    return TrainingBatch(
        inputs=rng.integers(0, V, B),
        outputs=rng.integers(0, V, B),
        negatives=rng.integers(0, V, (B, K)),
        negative_mask=np.ones((B, K), dtype=bool),
    )


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**16))
def test_zero_learning_rate_is_noop(seed):
    rng = np.random.default_rng(seed)
    emb = rng.normal(size=(6, 4)).astype(np.float32)
    trn = rng.normal(size=(6, 4)).astype(np.float32)
    emb0, trn0 = emb.copy(), trn.copy()
    batch = random_batch(rng, 6, 5, 2)
    sgns_update(emb, trn, batch, learning_rate=0.0)
    assert np.array_equal(emb, emb0)
    assert np.array_equal(trn, trn0)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**16))
def test_update_touches_only_batch_rows(seed):
    rng = np.random.default_rng(seed)
    V = 12
    emb = rng.normal(size=(V, 4)).astype(np.float32)
    trn = rng.normal(size=(V, 4)).astype(np.float32)
    emb0, trn0 = emb.copy(), trn.copy()
    batch = random_batch(rng, 6, 4, 2)  # rows 0..5 only
    sgns_update(emb, trn, batch, learning_rate=0.1)
    # Rows 6..11 were not in the batch: untouched in both layers.
    assert np.array_equal(emb[6:], emb0[6:])
    assert np.array_equal(trn[6:], trn0[6:])
    untouched_emb = np.setdiff1d(np.arange(6), batch.inputs)
    assert np.array_equal(emb[untouched_emb], emb0[untouched_emb])


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 5), st.integers(1, 4), st.integers(0, 2**16))
def test_avg_combiner_bounded_by_extremes(hosts, dim, seed):
    """Averaged update lies inside the componentwise min/max envelope."""
    rng = np.random.default_rng(seed)
    grads = [rng.normal(size=(1, dim)) for _ in range(hosts)]
    state = get_combiner("avg").create(1, dim)
    rows = np.array([0])
    for g in grads:
        state.accumulate(rows, g)
    out = state.result()[0]
    stack = np.concatenate(grads, axis=0)
    assert np.all(out >= stack.min(axis=0) - 1e-12)
    assert np.all(out <= stack.max(axis=0) + 1e-12)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 5), st.integers(1, 4), st.integers(0, 2**16))
def test_sum_combiner_is_exact_sum(hosts, dim, seed):
    rng = np.random.default_rng(seed)
    grads = [rng.normal(size=(1, dim)) for _ in range(hosts)]
    state = get_combiner("sum").create(1, dim)
    rows = np.array([0])
    for g in grads:
        state.accumulate(rows, g)
    assert np.allclose(state.result()[0], np.sum(grads, axis=0)[0])


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 6), st.integers(0, 2**16))
def test_mc_order_matters_but_span_is_preserved(hosts, seed):
    """The inductive fold is order-dependent, but every order's result lies
    in the span of the inputs (it is a linear combination of them)."""
    rng = np.random.default_rng(seed)
    dim = hosts + 2
    grads = [rng.normal(size=dim) for _ in range(hosts)]
    combiner = get_combiner("mc")
    forward = combiner.combine_dense([g[None, :] for g in grads])
    backward = combiner.combine_dense([g[None, :] for g in reversed(grads)])
    basis = np.stack(grads)
    for combined in (forward[0], backward[0]):
        # Residual after projecting onto the span of the gradients ~ 0.
        coeffs, *_ = np.linalg.lstsq(basis.T, combined, rcond=None)
        residual = combined - basis.T @ coeffs
        assert np.linalg.norm(residual) < 1e-8 * max(1.0, np.linalg.norm(combined))
