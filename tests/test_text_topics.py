import numpy as np
import pytest

from repro.text.topics import TopicCorpusSpec, generate_topic_corpus, topic_coherence
from repro.w2v.params import Word2VecParams
from repro.w2v.shared_memory import SharedMemoryWord2Vec


class TestSpec:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_topics", 1),
            ("words_per_topic", 1),
            ("num_documents", 0),
            ("document_length", 1),
            ("concentration", 0.0),
            ("filler_rate", 1.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            TopicCorpusSpec(**{field: value})


class TestGenerate:
    def test_shapes(self):
        spec = TopicCorpusSpec(num_documents=50, document_length=20)
        corpus, labels = generate_topic_corpus(spec, seed=1)
        assert corpus.num_sentences == 50
        assert corpus.num_tokens == 50 * 20
        topic_words = [w for w, t in labels.items() if t >= 0]
        assert len(topic_words) == spec.num_topics * spec.words_per_topic

    def test_deterministic(self):
        a, _ = generate_topic_corpus(seed=2)
        b, _ = generate_topic_corpus(seed=2)
        assert a.to_text() == b.to_text()

    def test_low_concentration_gives_peaked_documents(self):
        spec = TopicCorpusSpec(
            num_documents=100, concentration=0.02, filler_rate=0.0
        )
        corpus, labels = generate_topic_corpus(spec, seed=3)
        # Most documents should be dominated by a single topic.
        dominated = 0
        for sentence in corpus.sentences:
            words = corpus.vocabulary.decode(sentence)
            topics = [labels[w] for w in words if labels[w] >= 0]
            if topics:
                counts = np.bincount(topics, minlength=spec.num_topics)
                if counts.max() / len(topics) > 0.8:
                    dominated += 1
        assert dominated > 50

    def test_filler_rate_zero_means_no_fillers_in_text(self):
        spec = TopicCorpusSpec(filler_rate=0.0, num_documents=20)
        corpus, labels = generate_topic_corpus(spec, seed=1)
        for word in corpus.vocabulary:
            assert labels[word] >= 0 or word.startswith("f")
        used = {w for s in corpus.sentences for w in corpus.vocabulary.decode(s)}
        assert all(labels[w] >= 0 for w in used)


class TestCoherence:
    def test_planted_embedding_scores_high(self):
        spec = TopicCorpusSpec(num_topics=3, words_per_topic=4, shared_vocab=0)
        corpus, labels = generate_topic_corpus(spec, seed=1)
        V = len(corpus.vocabulary)
        emb = np.zeros((V, 3), dtype=np.float32)
        for word, topic in labels.items():
            if topic >= 0 and word in corpus.vocabulary:
                emb[corpus.vocabulary.id_of(word), topic] = 1.0
        assert topic_coherence(emb, corpus.vocabulary, labels) > 0.9

    def test_random_embedding_near_zero(self):
        spec = TopicCorpusSpec(num_topics=4, words_per_topic=20, shared_vocab=0)
        corpus, labels = generate_topic_corpus(spec, seed=1)
        rng = np.random.default_rng(0)
        emb = rng.normal(size=(len(corpus.vocabulary), 16))
        assert abs(topic_coherence(emb, corpus.vocabulary, labels)) < 0.15

    def test_trained_embedding_recovers_topics(self):
        spec = TopicCorpusSpec(
            num_topics=4, words_per_topic=15, shared_vocab=50,
            num_documents=600, document_length=25, concentration=0.05,
        )
        corpus, labels = generate_topic_corpus(spec, seed=1)
        params = Word2VecParams(
            dim=24, window=5, negatives=5, epochs=4, subsample_threshold=1e-2
        )
        model = SharedMemoryWord2Vec(corpus, params, seed=7).train()
        coherence = topic_coherence(
            model.normalized_embedding(), corpus.vocabulary, labels
        )
        assert coherence > 0.15, f"topics not recovered: {coherence}"

    def test_too_few_words_rejected(self):
        corpus, labels = generate_topic_corpus(
            TopicCorpusSpec(num_documents=5), seed=1
        )
        with pytest.raises(ValueError):
            topic_coherence(
                np.zeros((len(corpus.vocabulary), 4)),
                corpus.vocabulary,
                {"t0w0": 0},
            )
