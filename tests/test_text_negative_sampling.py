from hypothesis import given, settings, strategies as st
import numpy as np
import pytest

from repro.text.negative_sampling import UnigramTable, build_alias_table


class TestAliasTable:
    def test_uniform(self):
        prob, alias = build_alias_table(np.ones(4))
        assert np.allclose(prob, 1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_alias_table(np.array([]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            build_alias_table(np.array([0.5, -0.1]))

    def test_zero_sum_rejected(self):
        with pytest.raises(ValueError):
            build_alias_table(np.zeros(3))

    def test_exactness(self):
        # Alias tables are exact: reconstruct each outcome's probability.
        p = np.array([0.5, 0.3, 0.2])
        prob, alias = build_alias_table(p)
        n = len(p)
        recon = np.zeros(n)
        for i in range(n):
            recon[i] += prob[i] / n
            recon[alias[i]] += (1.0 - prob[i]) / n
        assert np.allclose(recon, p)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=10), min_size=1, max_size=20))
    def test_exactness_property(self, weights):
        p = np.array(weights)
        p = p / p.sum()
        prob, alias = build_alias_table(p)
        n = len(p)
        recon = np.zeros(n)
        for i in range(n):
            recon[i] += prob[i] / n
            recon[alias[i]] += (1.0 - prob[i]) / n
        assert np.allclose(recon, p, atol=1e-12)


class TestUnigramTable:
    def test_power_weighting(self):
        counts = np.array([16.0, 1.0])
        table = UnigramTable(counts, power=0.75)
        # 16^0.75 = 8, so probabilities 8/9 and 1/9.
        assert table.probabilities[0] == pytest.approx(8 / 9)

    def test_zero_count_words_never_drawn(self):
        counts = np.array([0.0, 5.0, 0.0])
        table = UnigramTable(counts)
        draws = table.draw(np.random.default_rng(0), 500)
        assert set(draws.tolist()) == {1}

    def test_empirical_distribution(self):
        counts = np.array([100.0, 10.0, 1.0])
        table = UnigramTable(counts, power=1.0)
        draws = table.draw(np.random.default_rng(0), 60_000)
        freq = np.bincount(draws, minlength=3) / len(draws)
        assert np.allclose(freq, counts / counts.sum(), atol=0.01)

    def test_draw_shapes(self):
        table = UnigramTable(np.array([1.0, 2.0]))
        assert table.draw(np.random.default_rng(0), 5).shape == (5,)
        assert table.draw(np.random.default_rng(0), (3, 4)).shape == (3, 4)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            UnigramTable(np.zeros(3))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            UnigramTable(np.array([-1.0, 2.0]))

    def test_len(self):
        assert len(UnigramTable(np.array([1.0, 1.0, 1.0]))) == 3
