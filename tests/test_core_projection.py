from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays
import numpy as np
import pytest

from repro.core.projection import (
    combine_pair,
    combine_sequence,
    cosine,
    orthogonal_component,
    project_onto,
)

finite_vec = arrays(
    np.float64,
    st.integers(min_value=1, max_value=8),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


def paired_vecs():
    """Two random vectors of the same dimension."""
    return st.integers(min_value=1, max_value=8).flatmap(
        lambda n: st.tuples(
            arrays(np.float64, n, elements=st.floats(-100, 100)),
            arrays(np.float64, n, elements=st.floats(-100, 100)),
        )
    )


class TestProjectOnto:
    def test_axis_projection(self):
        v = np.array([3.0, 4.0])
        assert np.allclose(project_onto(v, np.array([1.0, 0.0])), [3.0, 0.0])

    def test_onto_zero_is_zero(self):
        assert np.allclose(project_onto(np.array([1.0, 2.0]), np.zeros(2)), 0.0)

    def test_idempotent(self):
        v = np.array([1.0, 2.0, 3.0])
        g = np.array([2.0, -1.0, 0.5])
        p = project_onto(v, g)
        assert np.allclose(project_onto(p, g), p)


class TestOrthogonalComponent:
    def test_result_is_orthogonal(self):
        g1 = np.array([1.0, 1.0])
        g2 = np.array([2.0, 0.0])
        g2p = orthogonal_component(g2, g1)
        assert abs(g2p @ g1) < 1e-12

    def test_norm_identity_eq4(self):
        # ||g2'||^2 = ||g2||^2 (1 - cos^2 theta) — paper Eq. 4.
        rng = np.random.default_rng(0)
        for _ in range(20):
            g1 = rng.normal(size=6)
            g2 = rng.normal(size=6)
            g2p = orthogonal_component(g2, g1)
            c = cosine(g1, g2)
            expected = (g2 @ g2) * (1 - c * c)
            assert np.isclose(g2p @ g2p, expected, rtol=1e-9)

    @given(paired_vecs())
    def test_never_longer_than_input(self, pair):
        g1, g2 = pair
        g2p = orthogonal_component(g2, g1)
        assert np.linalg.norm(g2p) <= np.linalg.norm(g2) * (1 + 1e-9) + 1e-12


class TestCosine:
    def test_parallel(self):
        assert cosine(np.array([1.0, 0.0]), np.array([2.0, 0.0])) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine(np.array([1.0, 0.0]), np.array([0.0, 3.0])) == pytest.approx(0.0)

    def test_zero_vector(self):
        assert cosine(np.zeros(3), np.ones(3)) == 0.0

    @given(paired_vecs())
    def test_bounded(self, pair):
        a, b = pair
        assert -1.0 - 1e-9 <= cosine(a, b) <= 1.0 + 1e-9


class TestCombinePair:
    def test_orthogonal_gradients_add(self):
        g1 = np.array([1.0, 0.0])
        g2 = np.array([0.0, 2.0])
        assert np.allclose(combine_pair(g1, g2), [1.0, 2.0])

    def test_parallel_gradients_keep_first(self):
        g1 = np.array([1.0, 1.0])
        assert np.allclose(combine_pair(g1, 3 * g1), g1)

    def test_zero_first_keeps_second(self):
        g2 = np.array([1.0, 2.0])
        assert np.allclose(combine_pair(np.zeros(2), g2), g2)

    def test_zero_second_keeps_first(self):
        g1 = np.array([1.0, 2.0])
        assert np.allclose(combine_pair(g1, np.zeros(2)), g1)

    @given(paired_vecs())
    def test_projection_removed_is_orthogonal_to_first(self, pair):
        g1, g2 = pair
        combined = combine_pair(g1, g2)
        # combined - g1 must be orthogonal to g1.
        residual = combined - g1
        assert abs(residual @ g1) <= 1e-6 * max(1.0, np.abs(g1).max() ** 2 * len(g1))


class TestCombineSequence:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_sequence([])

    def test_single(self):
        g = np.array([1.0, -1.0])
        assert np.allclose(combine_sequence([g]), g)

    def test_pair_matches_combine_pair(self):
        g1 = np.array([1.0, 2.0, 0.0])
        g2 = np.array([0.5, 0.0, 3.0])
        assert np.allclose(combine_sequence([g1, g2]), combine_pair(g1, g2))

    def test_mutually_orthogonal_set_sums(self):
        basis = np.eye(4) * np.array([1.0, 2.0, 3.0, 4.0])[:, None]
        assert np.allclose(combine_sequence(list(basis)), basis.sum(axis=0))

    def test_does_not_mutate_inputs(self):
        g1 = np.array([1.0, 0.0])
        g2 = np.array([1.0, 1.0])
        g1_copy = g1.copy()
        combine_sequence([g1, g2])
        assert np.array_equal(g1, g1_copy)
