import numpy as np
import pytest

from repro.dgraph.bsp import BSPEngine, RoundStats
from repro.gluon.comm import PhaseRecord
from repro.gluon.sync import ValueSyncResult


def make_result(changed_per_host):
    empty = PhaseRecord(name="x", num_hosts=len(changed_per_host))
    return ValueSyncResult(
        field="x",
        changed_local=[np.array(c, dtype=np.int64) for c in changed_per_host],
        reduce_record=empty,
        broadcast_record=empty,
    )


class TestBSPEngine:
    def test_terminates_on_quiescence(self):
        work = [3, 2, 0, 0]

        def compute(host, round_index):
            return work[round_index] if host == 0 else 0

        def sync():
            return make_result([[], []])

        engine = BSPEngine(2)
        # Rounds: r0 work=3, r1 work=2, r2 work=0 -> terminate at round 3? No:
        # round 2 has no work and no sync changes -> stops after 3 rounds.
        rounds = engine.run(compute, sync)
        assert rounds == 3
        assert [s.local_work for s in engine.history] == [3, 2, 0]

    def test_sync_changes_extend_execution(self):
        sync_changes = iter([[[1]], [[]], [[]]])

        def compute(host, round_index):
            return 0

        def sync():
            return make_result(next(sync_changes))

        engine = BSPEngine(1)
        rounds = engine.run(compute, sync)
        assert rounds == 2  # first round's sync changed something

    def test_work_pending_extends_execution(self):
        pending = {"rounds": 0}

        def compute(host, round_index):
            pending["rounds"] = round_index
            return 0

        def sync():
            return make_result([[]])

        engine = BSPEngine(1)
        rounds = engine.run(
            compute, sync, work_pending=lambda h: pending["rounds"] < 2
        )
        assert rounds == 3

    def test_max_rounds_exceeded(self):
        engine = BSPEngine(1, max_rounds=5)
        with pytest.raises(RuntimeError, match="did not quiesce"):
            engine.run(lambda h, r: 1, lambda: make_result([[]]))

    def test_validation(self):
        with pytest.raises(ValueError):
            BSPEngine(0)
        with pytest.raises(ValueError):
            BSPEngine(1, max_rounds=0)

    def test_history_records(self):
        engine = BSPEngine(2)
        engine.run(lambda h, r: 0, lambda: make_result([[], []]))
        assert len(engine.history) == 1
        stats = engine.history[0]
        assert isinstance(stats, RoundStats)
        assert stats.round_index == 0
        assert not stats.sync_changed
