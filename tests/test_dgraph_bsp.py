import numpy as np
import pytest

from repro.cluster.faults import FaultConfig, FaultSchedule
from repro.dgraph.bsp import BSPEngine, RecoveryPolicy, RoundStats
from repro.gluon.comm import PhaseRecord
from repro.gluon.sync import ValueSyncResult


def make_result(changed_per_host):
    empty = PhaseRecord(name="x", num_hosts=len(changed_per_host))
    return ValueSyncResult(
        field="x",
        changed_local=[np.array(c, dtype=np.int64) for c in changed_per_host],
        reduce_record=empty,
        broadcast_record=empty,
    )


class TestBSPEngine:
    def test_terminates_on_quiescence(self):
        work = [3, 2, 0, 0]

        def compute(host, round_index):
            return work[round_index] if host == 0 else 0

        def sync():
            return make_result([[], []])

        engine = BSPEngine(2)
        # Rounds: r0 work=3, r1 work=2, r2 work=0 -> terminate at round 3? No:
        # round 2 has no work and no sync changes -> stops after 3 rounds.
        rounds = engine.run(compute, sync)
        assert rounds == 3
        assert [s.local_work for s in engine.history] == [3, 2, 0]

    def test_sync_changes_extend_execution(self):
        sync_changes = iter([[[1]], [[]], [[]]])

        def compute(host, round_index):
            return 0

        def sync():
            return make_result(next(sync_changes))

        engine = BSPEngine(1)
        rounds = engine.run(compute, sync)
        assert rounds == 2  # first round's sync changed something

    def test_work_pending_extends_execution(self):
        pending = {"rounds": 0}

        def compute(host, round_index):
            pending["rounds"] = round_index
            return 0

        def sync():
            return make_result([[]])

        engine = BSPEngine(1)
        rounds = engine.run(
            compute, sync, work_pending=lambda h: pending["rounds"] < 2
        )
        assert rounds == 3

    def test_max_rounds_exceeded(self):
        engine = BSPEngine(1, max_rounds=5)
        with pytest.raises(RuntimeError, match="did not quiesce"):
            engine.run(lambda h, r: 1, lambda: make_result([[]]))

    def test_validation(self):
        with pytest.raises(ValueError):
            BSPEngine(0)
        with pytest.raises(ValueError):
            BSPEngine(1, max_rounds=0)

    def test_history_records(self):
        engine = BSPEngine(2)
        engine.run(lambda h, r: 0, lambda: make_result([[], []]))
        assert len(engine.history) == 1
        stats = engine.history[0]
        assert isinstance(stats, RoundStats)
        assert stats.round_index == 0
        assert not stats.sync_changed
        assert stats.crashed_hosts == ()


def crash_schedule(num_hosts, rounds, seed=3):
    """A schedule guaranteed to contain at least one crash."""
    schedule = FaultSchedule.generate(
        FaultConfig(crash_prob=0.9),
        seed=seed,
        num_hosts=num_hosts,
        epochs=1,
        rounds_per_epoch=rounds,
    )
    assert schedule.has_crashes
    return schedule


class TestBSPRecovery:
    """Fail-stop recovery: restore from checkpoint, replay the lost round."""

    def run_label_propagation(self, num_hosts, recovery=None, max_rounds=64):
        """A toy deterministic fixpoint: labels spread to the global min.

        Per-host state is a slice of a shared label array; compute lowers
        each host's labels toward the minimum it has seen, sync shares the
        global minimum (all-reduce).  Deterministic, so fault-free and
        recovered runs must reach the same fixpoint.
        """
        labels = np.arange(10, 10 + num_hosts, dtype=np.int64)
        state = {"labels": labels}

        def compute(host, round_index):
            # One relaxation step: move toward the running minimum.
            lo = state["labels"].min()
            if state["labels"][host] > lo:
                state["labels"][host] -= 1
                return 1
            return 0

        def sync():
            return make_result([[] for _ in range(num_hosts)])

        engine = BSPEngine(num_hosts, max_rounds=max_rounds, recovery=recovery)
        rounds = engine.run(compute, sync)
        return engine, rounds, state["labels"].copy()

    def test_recovered_run_reaches_same_fixpoint(self):
        H = 3
        _, _, clean = self.run_label_propagation(H)

        schedule = crash_schedule(H, rounds=16)
        snapshots = {"taken": 0}
        state_ref = {}

        def checkpoint():
            snapshots["taken"] += 1
            return state_ref["labels"].copy()

        def restore(snapshot, host):
            state_ref["labels"][host] = snapshot[host]

        # Re-run with the engine's own state threading through the policy.
        labels = np.arange(10, 10 + H, dtype=np.int64)
        state_ref["labels"] = labels

        def compute(host, round_index):
            lo = state_ref["labels"].min()
            if state_ref["labels"][host] > lo:
                state_ref["labels"][host] -= 1
                return 1
            return 0

        def sync():
            return make_result([[] for _ in range(H)])

        policy = RecoveryPolicy(schedule=schedule, checkpoint=checkpoint, restore=restore)
        engine = BSPEngine(H, max_rounds=64, recovery=policy)
        engine.run(compute, sync)
        assert np.array_equal(state_ref["labels"], clean)
        assert snapshots["taken"] > 0
        assert policy.report.crashes > 0
        assert policy.report.detect_s == pytest.approx(
            policy.report.crashes * schedule.config.detect_timeout_s
        )

    def test_crashed_hosts_recorded_in_history(self):
        H = 2
        schedule = crash_schedule(H, rounds=8)
        policy = RecoveryPolicy(
            schedule=schedule, checkpoint=lambda: None, restore=lambda s, h: None
        )
        engine = BSPEngine(H, max_rounds=16, recovery=policy)
        work = iter([1, 1, 0, 0, 0, 0, 0, 0, 0, 0])

        def compute(host, round_index):
            return next(work, 0) if host == 0 else 0

        engine.run(compute, lambda: make_result([[] for _ in range(H)]))
        recorded = [s.crashed_hosts for s in engine.history]
        expected = [
            tuple(sorted(ev.host for ev in schedule.crashes_at(0, r)))
            for r in range(len(engine.history))
        ]
        assert recorded == expected
        assert any(recorded), "schedule must crash within the executed rounds"

    def test_crashed_host_work_replayed(self):
        """The dead host's round still contributes its work item."""
        H = 2
        schedule = crash_schedule(H, rounds=8)
        crash_rounds = {ev.round_index for ev in schedule.all_crashes()}
        first_crash = min(crash_rounds)
        calls = []

        def compute(host, round_index):
            calls.append((host, round_index))
            return 1 if round_index <= first_crash else 0

        policy = RecoveryPolicy(
            schedule=schedule, checkpoint=lambda: None, restore=lambda s, h: None
        )
        engine = BSPEngine(H, max_rounds=16, recovery=policy)
        engine.run(compute, lambda: make_result([[] for _ in range(H)]))
        # Every (host, round) pair executed exactly once, crash or not.
        executed = [c for c in calls if c[1] <= first_crash]
        assert sorted(executed) == sorted(
            (h, r) for r in range(first_crash + 1) for h in range(H)
        )

    def test_schedule_host_mismatch_rejected(self):
        schedule = FaultSchedule.empty(4, 1, 1)
        policy = RecoveryPolicy(
            schedule=schedule, checkpoint=lambda: None, restore=lambda s, h: None
        )
        with pytest.raises(ValueError, match="hosts"):
            BSPEngine(2, recovery=policy)

    def test_no_crashes_no_checkpoints(self):
        """Checkpoint callable is never invoked on crash-free rounds."""
        taken = []
        policy = RecoveryPolicy(
            schedule=FaultSchedule.empty(2, 1, 8),
            checkpoint=lambda: taken.append(1),
            restore=lambda s, h: None,
        )
        engine = BSPEngine(2, recovery=policy)
        engine.run(lambda h, r: 0, lambda: make_result([[], []]))
        assert not taken
        assert policy.report.crashes == 0
