"""Property battery: training results are invariant to transient faults.

For a fixed training seed the final embeddings must be bit-identical
(a) across every communication plan and (b) under *any* transient-only
fault schedule — message drops, corruption and stragglers may cost bytes
and modeled time but can never change what the model computes.
"""

from hypothesis import given, settings, strategies as st
import pytest

from repro.cluster.faults import FaultConfig, FaultSchedule
from repro.text.synthetic import SyntheticCorpusSpec, generate_corpus
from repro.w2v.distributed import GraphWord2Vec
from repro.w2v.params import Word2VecParams

pytestmark = pytest.mark.faults

SPEC = SyntheticCorpusSpec(
    num_tokens=1500, pairs_per_family=3, filler_vocab=60, questions_per_family=3
)
PARAMS = Word2VecParams(dim=8, epochs=1, negatives=3, window=3, subsample_threshold=1e-2)
HOSTS = 3
SEED = 5

_corpus = None
_baseline = None
_baseline_bytes: dict[str, int] = {}


def corpus():
    global _corpus
    if _corpus is None:
        _corpus = generate_corpus(SPEC, seed=1)[0]
    return _corpus


def baseline_model():
    """The fault-free reference, identical under every plan (verified once)."""
    global _baseline
    if _baseline is None:
        models = {}
        for plan in ("opt", "naive", "pull"):
            result = GraphWord2Vec(
                corpus(), PARAMS, num_hosts=HOSTS, seed=SEED, plan=plan
            ).train()
            models[plan] = result.model
            _baseline_bytes[plan] = result.report.comm_bytes
        assert models["opt"] == models["naive"] == models["pull"]
        _baseline = models["opt"]
    return _baseline


def baseline_comm_bytes(plan: str) -> int:
    baseline_model()
    return _baseline_bytes[plan]


@settings(max_examples=10, deadline=None)
@given(
    plan=st.sampled_from(["opt", "naive", "pull"]),
    drop=st.floats(min_value=0.0, max_value=0.15),
    corrupt=st.floats(min_value=0.0, max_value=0.1),
    straggler=st.floats(min_value=0.0, max_value=0.5),
    schedule_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_transient_faults_never_change_the_model(
    plan, drop, corrupt, straggler, schedule_seed
):
    config = FaultConfig(
        drop_prob=drop, corrupt_prob=corrupt, straggler_prob=straggler
    )
    trainer = GraphWord2Vec(corpus(), PARAMS, num_hosts=HOSTS, seed=SEED, plan=plan)
    schedule = FaultSchedule.generate(
        config,
        seed=schedule_seed,
        num_hosts=HOSTS,
        epochs=PARAMS.epochs,
        rounds_per_epoch=trainer.sync_rounds,
    )
    assert schedule.transient_only
    faulty = GraphWord2Vec(
        corpus(), PARAMS, num_hosts=HOSTS, seed=SEED, plan=plan, faults=schedule
    ).train()

    assert faulty.model == baseline_model()
    report = faulty.report
    faults = report.faults
    # Accounting invariants: fault bytes are itemized exactly (retransmitted
    # payloads + NACKs, on top of the plan's fault-free wire total), and the
    # only fault-induced *time* for transient-only schedules is the
    # retransmission backoff — stragglers stretch the compute bucket.
    assert report.comm_bytes == baseline_comm_bytes(plan) + (
        faults.resent_bytes + faults.nack_bytes
    )
    assert report.breakdown.recovery_s == pytest.approx(faults.backoff_s)


@settings(max_examples=6, deadline=None)
@given(
    crash=st.floats(min_value=0.05, max_value=0.6),
    max_crashes=st.integers(min_value=1, max_value=4),
    schedule_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_crash_recovery_never_changes_the_model(crash, max_crashes, schedule_seed):
    config = FaultConfig(crash_prob=crash, max_crashes=max_crashes)
    trainer = GraphWord2Vec(corpus(), PARAMS, num_hosts=HOSTS, seed=SEED)
    schedule = FaultSchedule.generate(
        config,
        seed=schedule_seed,
        num_hosts=HOSTS,
        epochs=PARAMS.epochs,
        rounds_per_epoch=trainer.sync_rounds,
    )
    faulty = GraphWord2Vec(
        corpus(), PARAMS, num_hosts=HOSTS, seed=SEED, faults=schedule
    ).train()
    assert faulty.model == baseline_model()
    if schedule.has_crashes:
        assert faulty.report.faults.crashes == len(schedule.all_crashes())
        assert faulty.report.breakdown.recovery_s > 0
