from hypothesis import given, strategies as st
import numpy as np
import pytest

from repro.gluon.proxies import block_boundaries, block_owner, block_owner_array


class TestBlockBoundaries:
    def test_even_split(self):
        assert block_boundaries(8, 4).tolist() == [0, 2, 4, 6, 8]

    def test_remainder_goes_first(self):
        assert block_boundaries(10, 4).tolist() == [0, 3, 6, 8, 10]

    def test_more_hosts_than_nodes(self):
        b = block_boundaries(2, 4)
        assert b.tolist() == [0, 1, 2, 2, 2]

    def test_zero_nodes(self):
        assert block_boundaries(0, 3).tolist() == [0, 0, 0, 0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            block_boundaries(4, 0)
        with pytest.raises(ValueError):
            block_boundaries(-1, 2)


class TestBlockOwner:
    def test_basic(self):
        b = block_boundaries(10, 4)  # [0,3,6,8,10]
        assert block_owner(0, b) == 0
        assert block_owner(2, b) == 0
        assert block_owner(3, b) == 1
        assert block_owner(9, b) == 3

    def test_out_of_range(self):
        b = block_boundaries(4, 2)
        with pytest.raises(IndexError):
            block_owner(4, b)
        with pytest.raises(IndexError):
            block_owner(-1, b)

    def test_array_form_matches_scalar(self):
        b = block_boundaries(17, 5)
        nodes = np.arange(17)
        owners = block_owner_array(nodes, b)
        assert [block_owner(int(n), b) for n in nodes] == owners.tolist()

    def test_array_out_of_range(self):
        b = block_boundaries(4, 2)
        with pytest.raises(IndexError):
            block_owner_array(np.array([0, 4]), b)


@given(
    st.integers(min_value=1, max_value=500),
    st.integers(min_value=1, max_value=20),
)
def test_blocks_partition_nodes(num_nodes, num_hosts):
    b = block_boundaries(num_nodes, num_hosts)
    assert b[0] == 0 and b[-1] == num_nodes
    sizes = np.diff(b)
    assert sizes.sum() == num_nodes
    assert sizes.max() - sizes.min() <= 1
    owners = block_owner_array(np.arange(num_nodes), b)
    # Owners are non-decreasing and each host owns a contiguous range.
    assert np.all(np.diff(owners) >= 0)
    counts = np.bincount(owners, minlength=num_hosts)
    assert np.array_equal(np.sort(counts)[::-1], np.sort(sizes)[::-1])
