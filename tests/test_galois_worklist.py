from hypothesis import given, strategies as st
import numpy as np
import pytest

from repro.galois.worklist import ChunkedWorklist, OrderedByIntegerMetric


class TestChunkedWorklist:
    def test_fifo_chunks(self):
        wl = ChunkedWorklist(range(10), chunk_size=4)
        assert wl.pop_chunk() == [0, 1, 2, 3]
        assert wl.pop_chunk() == [4, 5, 6, 7]
        assert wl.pop_chunk() == [8, 9]
        assert wl.empty()
        assert wl.pop_chunk() == []

    def test_len_tracks_pending(self):
        wl = ChunkedWorklist(range(5), chunk_size=2)
        assert len(wl) == 5
        wl.pop_chunk()
        assert len(wl) == 3

    def test_push_after_pop(self):
        wl = ChunkedWorklist([1], chunk_size=8)
        wl.pop_chunk()
        wl.push(2)
        wl.push_many([3, 4])
        assert list(wl) == [2, 3, 4]

    def test_pop_chunk_releases_consumed_items(self):
        # Draining the worklist must not pin consumed items: the backing
        # list shrinks as chunks are popped instead of holding the whole
        # corpus behind an advancing cursor.
        wl = ChunkedWorklist(range(100), chunk_size=10)
        for _ in range(9):
            wl.pop_chunk()
        assert len(wl) == 10
        assert len(wl._items) <= 20  # consumed prefix was compacted away
        assert wl.pop_chunk() == list(range(90, 100))
        assert wl.empty()
        assert wl._items == []

    def test_pop_chunk_order_unchanged_by_compaction(self):
        wl = ChunkedWorklist(range(25), chunk_size=4)
        popped = []
        while not wl.empty():
            popped.extend(wl.pop_chunk())
        assert popped == list(range(25))

    def test_reset_rewinds_retained_items_only(self):
        # Released chunks are gone for good; reset only rewinds whatever the
        # compaction has not yet freed.
        wl = ChunkedWorklist(range(4), chunk_size=4)
        wl.pop_chunk()
        assert wl.empty()
        wl.reset()
        assert len(wl) == 0

    def test_reset_before_compaction_restores(self):
        wl = ChunkedWorklist(range(10), chunk_size=2)
        wl.pop_chunk()  # cursor 2 of 10: below the compaction threshold
        wl.reset()
        assert len(wl) == 10
        assert wl.pop_chunk() == [0, 1]

    def test_shuffle_preserves_multiset(self):
        wl = ChunkedWorklist(range(20), chunk_size=5)
        wl.shuffle(np.random.default_rng(0))
        assert sorted(wl) == list(range(20))

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            ChunkedWorklist([], chunk_size=0)

    def test_partitions_contiguous_and_balanced(self):
        wl = ChunkedWorklist(range(10))
        parts = wl.partitions(3)
        assert parts == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_partitions_more_than_items(self):
        wl = ChunkedWorklist([1, 2])
        parts = wl.partitions(4)
        assert len(parts) == 4
        assert [p for p in parts if p] == [[1], [2]]

    def test_partitions_invalid_count(self):
        with pytest.raises(ValueError):
            ChunkedWorklist([1]).partitions(0)

    @given(st.lists(st.integers(), max_size=50), st.integers(min_value=1, max_value=10))
    def test_partitions_cover_exactly(self, items, k):
        parts = ChunkedWorklist(items).partitions(k)
        flattened = [x for p in parts for x in p]
        assert flattened == items
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1


class TestOBIM:
    def test_pops_lowest_bin_first(self):
        wl = OrderedByIntegerMetric(lambda x: x // 10)
        wl.push_many([25, 5, 17, 3])
        prio, items = wl.pop_bin()
        assert prio == 0
        assert sorted(items) == [3, 5]

    def test_single_pop_order(self):
        wl = OrderedByIntegerMetric(lambda x: x)
        wl.push(2)
        wl.push(1)
        wl.push(1)
        assert wl.pop() == 1
        assert wl.pop() == 1
        assert wl.pop() == 2
        assert wl.empty()

    def test_pop_empty_raises(self):
        wl = OrderedByIntegerMetric(lambda x: x)
        with pytest.raises(IndexError):
            wl.pop()
        with pytest.raises(IndexError):
            wl.pop_bin()

    def test_negative_metric_rejected(self):
        wl = OrderedByIntegerMetric(lambda x: x)
        with pytest.raises(ValueError):
            wl.push(-1)

    def test_len(self):
        wl = OrderedByIntegerMetric(lambda x: x % 3)
        wl.push_many(range(7))
        assert len(wl) == 7
        wl.pop_bin()
        assert len(wl) < 7

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=60))
    def test_drains_in_priority_order(self, items):
        wl = OrderedByIntegerMetric(lambda x: x)
        wl.push_many(items)
        drained = []
        while not wl.empty():
            _p, batch = wl.pop_bin()
            drained.extend(batch)
        assert drained == sorted(items)
