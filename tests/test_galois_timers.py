import pytest

from repro.galois.timers import StatTimer, TimerRegistry


class TestStatTimer:
    def test_accumulates(self):
        t = StatTimer("x")
        with t:
            pass
        with t:
            pass
        assert t.count == 2
        assert t.total >= 0.0

    def test_double_start_rejected(self):
        t = StatTimer("x").start()
        with pytest.raises(RuntimeError):
            t.start()
        t.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            StatTimer("x").stop()

    def test_add_external_time(self):
        t = StatTimer("x")
        t.add(1.5)
        t.add(0.5)
        assert t.total == pytest.approx(2.0)
        assert t.count == 2

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            StatTimer("x").add(-1.0)


class TestTimerRegistry:
    def test_get_creates_once(self):
        reg = TimerRegistry()
        assert reg.get("compute") is reg.get("compute")

    def test_totals(self):
        reg = TimerRegistry()
        reg.get("a").add(1.0)
        reg.get("b").add(2.0)
        assert reg.totals() == {"a": 1.0, "b": 2.0}

    def test_reset(self):
        reg = TimerRegistry()
        reg.get("a").add(1.0)
        reg.reset()
        assert reg.totals() == {}
