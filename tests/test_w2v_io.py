import io

import numpy as np
import pytest

from repro.text.vocab import Vocabulary
from repro.w2v.io import load_word2vec_text, save_word2vec_text
from repro.w2v.model import Word2VecModel


@pytest.fixture
def small():
    vocab = Vocabulary({"fox": 2, "dog": 1, "the": 5})
    rng = np.random.default_rng(0)
    model = Word2VecModel.initialize(3, 4, rng)
    model.embedding[:] = rng.normal(size=(3, 4)).astype(np.float32)
    return vocab, model


class TestSave:
    def test_header_and_rows(self, small):
        vocab, model = small
        buf = io.StringIO()
        save_word2vec_text(model, vocab, buf)
        lines = buf.getvalue().splitlines()
        assert lines[0] == "3 4"
        assert len(lines) == 4
        first_word = lines[1].split()[0]
        assert first_word == vocab.word_of(0)

    def test_file_path(self, small, tmp_path):
        vocab, model = small
        path = tmp_path / "vecs.txt"
        save_word2vec_text(model, vocab, str(path))
        assert path.read_text().startswith("3 4\n")

    def test_raw_matrix_accepted(self, small):
        vocab, model = small
        buf = io.StringIO()
        save_word2vec_text(model.embedding, vocab, buf)
        assert buf.getvalue().startswith("3 4\n")

    def test_size_mismatch(self, small):
        vocab, _ = small
        with pytest.raises(ValueError, match="vocabulary size"):
            save_word2vec_text(np.zeros((5, 4)), vocab, io.StringIO())

    def test_whitespace_word_rejected(self):
        vocab = Vocabulary({"bad word": 1})
        with pytest.raises(ValueError, match="whitespace"):
            save_word2vec_text(np.zeros((1, 2)), vocab, io.StringIO())


class TestRoundTrip:
    def test_save_load(self, small):
        vocab, model = small
        buf = io.StringIO()
        save_word2vec_text(model, vocab, buf, precision=9)
        buf.seek(0)
        words, vectors = load_word2vec_text(buf)
        assert words == [vocab.word_of(i) for i in range(3)]
        np.testing.assert_allclose(vectors, model.embedding, rtol=1e-6)

    def test_file_roundtrip(self, small, tmp_path):
        vocab, model = small
        path = tmp_path / "vecs.txt"
        save_word2vec_text(model, vocab, str(path), precision=9)
        words, vectors = load_word2vec_text(str(path))
        assert len(words) == 3
        np.testing.assert_allclose(vectors, model.embedding, rtol=1e-6)

    def test_unicode_words_roundtrip(self, tmp_path):
        vocab = Vocabulary({"naïve": 3, "東京": 2, "Zürich": 1})
        rng = np.random.default_rng(1)
        embedding = rng.normal(size=(3, 4)).astype(np.float32)
        path = tmp_path / "unicode.txt"
        save_word2vec_text(embedding, vocab, str(path), precision=9)
        words, vectors = load_word2vec_text(str(path))
        assert words == [vocab.word_of(i) for i in range(3)]
        np.testing.assert_allclose(vectors, embedding, rtol=1e-6)


class TestLoadValidation:
    def test_malformed_header(self):
        with pytest.raises(ValueError, match="header"):
            load_word2vec_text(io.StringIO("not a header\n"))

    def test_bad_dimensions(self):
        with pytest.raises(ValueError, match="invalid dimensions"):
            load_word2vec_text(io.StringIO("0 4\n"))

    def test_truncated(self):
        with pytest.raises(ValueError, match="truncated"):
            load_word2vec_text(io.StringIO("2 2\nw 1 2\n"))

    def test_wrong_column_count(self):
        with pytest.raises(ValueError, match="line 2"):
            load_word2vec_text(io.StringIO("1 3\nw 1 2\n"))

    def test_non_integer_header(self):
        with pytest.raises(ValueError, match="non-integer"):
            load_word2vec_text(io.StringIO("two 4\nw 1 2 3 4\n"))

    def test_duplicate_word_names_both_lines(self):
        text = "3 2\na 1 2\nb 3 4\na 5 6\n"
        with pytest.raises(ValueError, match=r"line 4: duplicate word 'a'.*line 2"):
            load_word2vec_text(io.StringIO(text))

    def test_non_numeric_component(self):
        with pytest.raises(ValueError, match="line 2: non-numeric.*'w'"):
            load_word2vec_text(io.StringIO("1 2\nw 1 oops\n"))

    def test_extra_rows_beyond_header(self):
        text = "1 2\na 1 2\nb 3 4\n"
        with pytest.raises(ValueError, match="declares 1 rows but the file has more"):
            load_word2vec_text(io.StringIO(text))
