import pytest

from repro.w2v.params import Word2VecParams


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("dim", 0),
            ("window", 0),
            ("negatives", -1),
            ("learning_rate", 0.0),
            ("min_learning_rate_fraction", 0.0),
            ("min_learning_rate_fraction", 1.5),
            ("epochs", 0),
            ("subsample_threshold", 0.0),
            ("min_count", 0),
            ("max_sentence_length", 1),
            ("batch_pairs", 0),
        ],
    )
    def test_invalid_rejected(self, field, value):
        with pytest.raises(ValueError):
            Word2VecParams(**{field: value})

    def test_paper_defaults(self):
        p = Word2VecParams()
        assert p.window == 5
        assert p.negatives == 15
        assert p.subsample_threshold == 1e-4
        assert p.epochs == 16
        assert p.learning_rate == 0.025
        assert p.max_sentence_length == 10_000

    def test_with_(self):
        p = Word2VecParams().with_(dim=10, epochs=2)
        assert p.dim == 10 and p.epochs == 2
        assert p.window == 5  # untouched
        assert Word2VecParams().dim != 10  # frozen original


class TestLearningRateSchedule:
    def test_linear_decay(self):
        p = Word2VecParams(epochs=10, learning_rate=0.1)
        assert p.learning_rate_for_epoch(0) == pytest.approx(0.1)
        assert p.learning_rate_for_epoch(5) == pytest.approx(0.05)

    def test_floor(self):
        p = Word2VecParams(epochs=10, learning_rate=0.1)
        assert p.learning_rate_for_epoch(9) >= 0.1 * 1e-4

    def test_monotone_nonincreasing(self):
        p = Word2VecParams(epochs=16)
        rates = [p.learning_rate_for_epoch(e) for e in range(16)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_out_of_range(self):
        p = Word2VecParams(epochs=4)
        with pytest.raises(ValueError):
            p.learning_rate_for_epoch(4)
        with pytest.raises(ValueError):
            p.learning_rate_for_epoch(-1)
