"""Property-based end-to-end checks of the replicated synchronization.

A reference implementation combines each round's host deltas directly with
the scalar-path projection math (repro.core.projection) on a single global
model; the Gluon engine must produce the same canonical values through its
master/mirror machinery under every plan.
"""

from hypothesis import given, settings, strategies as st
import numpy as np

from repro.core.combiners import get_combiner
from repro.core.projection import combine_sequence
from repro.gluon.bitvector import BitVector
from repro.gluon.comm import SimulatedNetwork
from repro.gluon.partitioner import replicate_all_partitions
from repro.gluon.plans import get_plan
from repro.gluon.sync import FieldSync, GluonSynchronizer


def reference_combine(model, round_touches, round_deltas, combiner_name, fold_offset):
    """Directly fold per-host deltas into the global model, row by row."""
    H = len(round_touches)
    order = sorted(range(H), key=lambda h: (h - fold_offset) % H)
    V = model.shape[0]
    for row in range(V):
        grads = []
        for h in order:
            touched = round_touches[h]
            if row in touched:
                grads.append(round_deltas[h][touched.index(row)])
        if not grads:
            continue
        if combiner_name == "mc":
            combined = combine_sequence(grads)
        elif combiner_name == "sum":
            combined = np.sum(grads, axis=0)
        elif combiner_name == "avg":
            combined = np.mean(grads, axis=0)
        else:
            raise AssertionError(combiner_name)
        model[row] += combined.astype(np.float32)
    return model


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=4),  # hosts
    st.integers(min_value=1, max_value=3),  # rounds
    st.sampled_from(["mc", "sum", "avg"]),
    st.sampled_from(["opt", "naive", "pull"]),
    st.integers(0, 2**16),
)
def test_engine_matches_reference(H, rounds, combiner_name, plan_name, seed):
    rng = np.random.default_rng(seed)
    V, D = 7, 3
    init = rng.normal(size=(V, D)).astype(np.float32)

    parts = replicate_all_partitions(V, H)
    net = SimulatedNetwork(H)
    sync = GluonSynchronizer(parts, net)
    field = FieldSync(
        "f",
        arrays=[init.copy() for _ in range(H)],
        bases=[init.copy() for _ in range(H)],
    )
    plan = get_plan(plan_name)
    combiner = get_combiner(combiner_name)
    reference = init.astype(np.float64).astype(np.float32).copy()

    # Pre-generate the whole touch/delta schedule so PullModel's access
    # sets (next round's touches) are known at sync time.
    schedule = []
    for _r in range(rounds):
        touches = []
        deltas = []
        for _h in range(H):
            k = int(rng.integers(0, V + 1))
            rows = sorted(rng.choice(V, size=k, replace=False).tolist())
            touches.append(rows)
            deltas.append(rng.normal(size=(k, D)).astype(np.float32))
        schedule.append((touches, deltas))

    for r in range(rounds):
        touches, deltas = schedule[r]
        upd = [BitVector(V) for _ in range(H)]
        for h in range(H):
            rows = np.array(touches[h], dtype=np.int64)
            if rows.size:
                # A host may only write rows it "accesses"; under PullModel
                # that means rows in this round's access set — which is how
                # we define the access sets below, so this is consistent.
                field.arrays[h][rows] += deltas[h]
                upd[h].set_many(rows)
        accessed = None
        if plan.requires_access_sets:
            if r + 1 < rounds:
                next_touches = schedule[r + 1][0]
                accessed = [
                    np.array(next_touches[h], dtype=np.int64) for h in range(H)
                ]
            else:
                accessed = [np.empty(0, dtype=np.int64) for _ in range(H)]
        sync.sync_replicated(
            field, upd, combiner, plan, accessed_next=accessed, fold_offset=r
        )
        # Reference: deltas measured in float64 from the float32 arrays the
        # engine saw; we reuse the raw float32 deltas (identical values).
        reference = reference_combine(
            reference, touches, deltas, combiner_name, fold_offset=r
        )

    # Canonical state lives at the masters.
    bounds = parts[0].master_bounds
    canonical = np.empty_like(init)
    for h in range(H):
        lo, hi = int(bounds[h]), int(bounds[h + 1])
        canonical[lo:hi] = field.arrays[h][lo:hi]
    np.testing.assert_allclose(canonical, reference, rtol=1e-4, atol=1e-5)
