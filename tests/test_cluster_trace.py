import json

import pytest

from repro.cluster.metrics import ClusterMetrics
from repro.cluster.network import NetworkModel
from repro.cluster.trace import build_chrome_trace, trace_json
from repro.gluon.comm import SimulatedNetwork


def run_fake_round(metrics, net, compute=(0.1, 0.3)):
    metrics.begin_round()
    for host, seconds in enumerate(compute):
        metrics.record_compute(host, seconds)
    with net.phase("reduce:f"):
        net.send(0, 1, 1000)
    with net.phase("broadcast:f"):
        net.send(1, 0, 1000)
    net.drain(0)
    net.drain(1)
    metrics.end_round()


class TestBuildChromeTrace:
    def test_event_structure(self):
        metrics = ClusterMetrics(2)
        net = SimulatedNetwork(2)
        run_fake_round(metrics, net)
        events = build_chrome_trace(metrics, net.phase_records, NetworkModel())
        kinds = {e.get("cat") for e in events if e["ph"] == "X"}
        assert kinds == {"compute", "communication", "wait"}
        # Two compute events (one per host) + two comm phases; the fast
        # host idles at the barrier (0.3 - 0.1 = 0.2s wait slice).
        compute = [e for e in events if e.get("cat") == "compute"]
        comm = [e for e in events if e.get("cat") == "communication"]
        waits = [e for e in events if e.get("cat") == "wait"]
        assert len(compute) == 2
        assert len(comm) == 2
        assert len(waits) == 1
        assert waits[0]["tid"] == 0
        assert waits[0]["dur"] == pytest.approx(0.2 * 1e6)
        # Communication starts after the slowest host's compute (0.3s).
        assert min(c["ts"] for c in comm) >= 0.3 * 1e6 - 1

    def test_bsp_barrier_between_rounds(self):
        metrics = ClusterMetrics(2)
        net = SimulatedNetwork(2)
        run_fake_round(metrics, net, compute=(0.1, 0.2))
        run_fake_round(metrics, net, compute=(0.1, 0.2))
        events = build_chrome_trace(metrics, net.phase_records, NetworkModel())
        round1 = [e for e in events if e.get("name") == "compute r1"]
        round0 = [e for e in events if e.get("name") == "compute r0"]
        # Round 1 starts after all of round 0 (including comm).
        end_of_round0 = max(e["ts"] + e["dur"] for e in round0)
        assert all(e["ts"] >= end_of_round0 for e in round1)

    def test_thread_labels(self):
        metrics = ClusterMetrics(3)
        net = SimulatedNetwork(3)
        metrics.begin_round()
        metrics.record_compute(0, 0.1)
        metrics.end_round()
        events = build_chrome_trace(metrics, net.phase_records, NetworkModel())
        labels = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert labels == {"host 0", "host 1", "host 2", "network"}

    def test_comm_args_carry_bytes(self):
        metrics = ClusterMetrics(2)
        net = SimulatedNetwork(2)
        run_fake_round(metrics, net)
        events = build_chrome_trace(metrics, net.phase_records, NetworkModel())
        comm = [e for e in events if e.get("cat") == "communication"]
        assert all(e["args"]["bytes"] > 0 for e in comm)


class TestTraceMetricsContract:
    """The trace consumes only ClusterMetrics' public read-only accessors."""

    def test_accessors_expose_round_history(self):
        metrics = ClusterMetrics(2)
        metrics.begin_round()
        metrics.record_compute(0, 0.1)
        metrics.record_inspection(1, 0.05)
        metrics.record_recovery(0, 0.2)
        metrics.end_round()
        assert len(metrics.compute_rounds) == 1
        assert metrics.compute_rounds[0].tolist() == [0.1, 0.0]
        assert metrics.inspection_rounds[0].tolist() == [0.0, 0.05]
        assert metrics.recovery_rounds[0].tolist() == [0.2, 0.0]
        # Views are read-only: the trace builder cannot corrupt the metrics.
        for rounds in (
            metrics.compute_rounds,
            metrics.inspection_rounds,
            metrics.recovery_rounds,
        ):
            assert not rounds[0].flags.writeable

    def test_trace_matches_accessor_data(self):
        metrics = ClusterMetrics(2)
        net = SimulatedNetwork(2)
        run_fake_round(metrics, net, compute=(0.1, 0.3))
        events = build_chrome_trace(metrics, net.phase_records, NetworkModel())
        compute = sorted(
            (e for e in events if e.get("cat") == "compute"), key=lambda e: e["tid"]
        )
        for host, event in enumerate(compute):
            assert event["dur"] == metrics.compute_rounds[0][host] * 1e6

    def test_recovery_spans_rendered_and_stall_barrier(self):
        metrics = ClusterMetrics(2)
        net = SimulatedNetwork(2)
        metrics.begin_round()
        metrics.record_compute(0, 0.1)
        metrics.record_compute(1, 0.2)
        metrics.record_recovery(1, 0.5)
        with net.phase("reduce:f"):
            net.send(0, 1, 1000)
        net.drain(1)
        metrics.end_round()
        events = build_chrome_trace(metrics, net.phase_records, NetworkModel())
        recovery = [e for e in events if e.get("cat") == "recovery"]
        assert len(recovery) == 1
        assert recovery[0]["tid"] == 1
        assert recovery[0]["dur"] == pytest.approx(0.5 * 1e6)
        # Recovery starts at the compute barrier (slowest host: 0.2s) ...
        assert recovery[0]["ts"] == pytest.approx(0.2 * 1e6)
        # ... and communication waits for it.
        comm = [e for e in events if e.get("cat") == "communication"]
        assert min(c["ts"] for c in comm) >= (0.2 + 0.5) * 1e6 - 1

    def test_fault_free_trace_has_no_recovery_spans(self):
        metrics = ClusterMetrics(2)
        net = SimulatedNetwork(2)
        run_fake_round(metrics, net)
        events = build_chrome_trace(metrics, net.phase_records, NetworkModel())
        assert not [e for e in events if e.get("cat") == "recovery"]


class TestTraceJson:
    def test_valid_json(self):
        metrics = ClusterMetrics(2)
        net = SimulatedNetwork(2)
        run_fake_round(metrics, net)
        blob = trace_json(metrics, net.phase_records, NetworkModel())
        parsed = json.loads(blob)
        assert "traceEvents" in parsed
        assert len(parsed["traceEvents"]) > 0

    def test_trace_from_real_training(self):
        from repro.experiments import datasets
        from repro.w2v.distributed import GraphWord2Vec
        from repro.w2v.params import Word2VecParams

        corpus, _ = datasets.load("tiny-sim")
        params = Word2VecParams(
            dim=16, epochs=1, negatives=4, window=3, subsample_threshold=1e-2
        )
        trainer = GraphWord2Vec(corpus, params, num_hosts=3, seed=5)
        trainer.train()
        blob = trace_json(
            trainer.metrics, trainer.network.phase_records, trainer.network_model
        )
        parsed = json.loads(blob)
        cats = {e.get("cat") for e in parsed["traceEvents"] if e["ph"] == "X"}
        assert "compute" in cats and "communication" in cats
