"""Load generator and ServeReport: determinism, export formats."""

import json

import numpy as np
import pytest

from repro.serve.engine import QueryEngine
from repro.serve.index import ExactIndex, LSHIndex
from repro.serve.loadgen import LoadConfig, generate_queries, run_load
from repro.serve.store import EmbeddingStore
from repro.util.rng import default_rng


def make_store(V=300, d=16, seed=1):
    rng = default_rng(seed)
    matrix = rng.normal(size=(V, d)).astype(np.float32)
    return EmbeddingStore(matrix, [f"w{i:03d}" for i in range(V)])


class TestGenerateQueries:
    def test_deterministic(self):
        config = LoadConfig(num_queries=200, seed=9)
        np.testing.assert_array_equal(
            generate_queries(100, config), generate_queries(100, config)
        )

    def test_seed_changes_stream(self):
        a = generate_queries(100, LoadConfig(num_queries=200, seed=1))
        b = generate_queries(100, LoadConfig(num_queries=200, seed=2))
        assert not np.array_equal(a, b)

    def test_zipf_skew_favors_low_ranks(self):
        ids = generate_queries(
            1000, LoadConfig(num_queries=5000, zipf_exponent=1.2, seed=3)
        )
        head = np.sum(ids < 10)
        tail = np.sum(ids >= 990)
        assert head > 5 * max(tail, 1)

    def test_flat_exponent_is_uniformish(self):
        ids = generate_queries(
            50, LoadConfig(num_queries=5000, zipf_exponent=0.0, seed=3)
        )
        counts = np.bincount(ids, minlength=50)
        assert counts.min() > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="vocab_size"):
            generate_queries(0, LoadConfig())
        with pytest.raises(ValueError, match="num_queries"):
            LoadConfig(num_queries=-1)
        with pytest.raises(ValueError, match="zipf_exponent"):
            LoadConfig(zipf_exponent=-1)
        with pytest.raises(ValueError, match="arrival_qps"):
            LoadConfig(arrival_qps=0)
        with pytest.raises(ValueError, match="k must be positive"):
            LoadConfig(k=0)


class TestRunLoad:
    def test_report_shape(self):
        store = make_store()
        engine = QueryEngine(ExactIndex(store), max_batch=16, cache_size=64)
        config = LoadConfig(num_queries=100, k=5, seed=4)
        report = run_load(engine, config, index_label="exact")
        assert report.num_queries == 100
        assert sum(report.batch_sizes) == 100
        assert len(report.batch_seconds) == len(report.batch_sizes)
        assert len(report.batch_arrival_us) == len(report.batch_sizes)
        assert report.cache_hits + report.cache_misses == 100
        assert 0.0 <= report.cache_hit_rate <= 1.0
        assert report.throughput_qps > 0
        assert len(report.answers_sha256) == 64
        latency = report.latency_percentiles_ms()
        assert latency["p50"] <= latency["p95"] <= latency["p99"]

    def test_modeled_identical_across_runs_and_workers(self):
        store = make_store()
        index = ExactIndex(store)
        config = LoadConfig(num_queries=150, seed=12)
        reports = [
            run_load(
                QueryEngine(index, max_batch=16, cache_size=32, workers=workers),
                config,
                index_label="exact",
            )
            for workers in (None, 2, 4)
        ]
        assert reports[0].modeled() == reports[1].modeled() == reports[2].modeled()

    def test_answers_and_cache_invariant_to_max_batch(self):
        store = make_store()
        index = LSHIndex(store, seed=5)
        config = LoadConfig(num_queries=150, seed=12)
        signatures = set()
        for max_batch in (1, 13, 150):
            report = run_load(
                QueryEngine(index, max_batch=max_batch, cache_size=32),
                config,
                index_label="lsh",
            )
            signatures.add(
                (
                    report.answers_sha256,
                    report.cache_hits,
                    report.cache_misses,
                    report.cache_evictions,
                )
            )
        assert len(signatures) == 1

    def test_different_seeds_different_answers(self):
        store = make_store()
        index = ExactIndex(store)
        a = run_load(QueryEngine(index), LoadConfig(num_queries=50, seed=1))
        b = run_load(QueryEngine(index), LoadConfig(num_queries=50, seed=2))
        assert a.answers_sha256 != b.answers_sha256

    def test_resets_engine_stats_first(self):
        store = make_store()
        engine = QueryEngine(ExactIndex(store), max_batch=8)
        engine.query(["w001"] * 20)
        report = run_load(engine, LoadConfig(num_queries=40, seed=3))
        assert report.num_queries == 40
        assert sum(report.batch_sizes) == 40

    def test_stale_pending_queries_drained_before_run(self):
        """Submitted-but-unflushed queries must not leak into the report:
        they would skew the first batch's size and walk the arrival
        cursor past the end of the schedule."""
        store = make_store()
        engine = QueryEngine(ExactIndex(store), max_batch=64)
        stale = [engine.submit(f"w{i:03d}") for i in range(5)]
        assert engine.pending == 5
        report = run_load(engine, LoadConfig(num_queries=30, seed=7))
        assert all(t.done for t in stale)
        assert report.num_queries == 30
        assert sum(report.batch_sizes) == 30
        assert len(report.batch_arrival_us) == len(report.batch_sizes)

    def test_zero_query_run_is_well_defined(self):
        """num_queries=0 is a legal degenerate run: empty stream, zero
        throughput, all-zero percentiles, and a valid (empty) report."""
        store = make_store()
        engine = QueryEngine(ExactIndex(store), max_batch=16, cache_size=8)
        config = LoadConfig(num_queries=0, seed=11)
        assert generate_queries(100, config).shape == (0,)
        report = run_load(engine, config, index_label="exact")
        assert report.num_queries == 0
        assert report.batch_sizes == []
        assert report.batch_arrival_us == []
        assert report.cache_hits == 0 and report.cache_misses == 0
        assert report.cache_hit_rate == 0.0
        assert report.throughput_qps == 0.0
        assert report.latency_percentiles_ms() == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0
        }
        assert len(report.answers_sha256) == 64
        payload = json.loads(report.to_json())
        assert payload["batch_size_histogram"] == {}
        assert "serve" in report.trace_json()

    def test_single_batch_run(self):
        """The whole stream fits one flush: one batch, one arrival stamp."""
        store = make_store()
        engine = QueryEngine(ExactIndex(store), max_batch=64, cache_size=64)
        report = run_load(engine, LoadConfig(num_queries=16, seed=8))
        assert report.batch_sizes == [16]
        assert len(report.batch_seconds) == 1
        assert len(report.batch_arrival_us) == 1
        latency = report.latency_percentiles_ms()
        assert latency["p50"] == latency["p99"]  # every query shares the batch


class TestExport:
    @pytest.fixture
    def report(self):
        store = make_store()
        engine = QueryEngine(ExactIndex(store), max_batch=16, cache_size=64)
        return run_load(engine, LoadConfig(num_queries=64, seed=6), index_label="exact")

    def test_json_round_trip(self, report):
        payload = json.loads(report.to_json())
        assert payload["modeled"]["answers_sha256"] == report.answers_sha256
        assert payload["measured"]["throughput_qps"] == pytest.approx(
            report.throughput_qps
        )
        assert set(payload["measured"]["latency_ms"]) == {"p50", "p95", "p99"}
        assert payload["cache_hit_rate"] == pytest.approx(report.cache_hit_rate)
        sizes = {int(k): v for k, v in payload["batch_size_histogram"].items()}
        assert sum(size * count for size, count in sizes.items()) == 64

    def test_chrome_trace_events(self, report):
        events = report.chrome_trace_events(tid=3)
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == len(report.batch_sizes)
        assert all(e["tid"] == 3 and e["cat"] == "serve" for e in complete)
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in complete)
        arrivals = [e["ts"] for e in complete]
        assert arrivals == sorted(arrivals)
        assert meta[0]["args"]["name"].startswith("serve engine")
        json.dumps({"traceEvents": events})  # serializable as-is

    def test_trace_json(self, report):
        parsed = json.loads(report.trace_json())
        assert "traceEvents" in parsed

    def test_summary_mentions_key_numbers(self, report):
        text = report.summary()
        assert "exact" in text and "p99" in text and "cache hit rate" in text
