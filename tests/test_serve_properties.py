"""Hypothesis battery over the serving indexes (Exact / LSH / IVF).

Contracts hunted over random stores/seeds: batched search is *bitwise*
identical to one-query-at-a-time search, IVF recall@k is monotone
non-decreasing in ``nprobe``, ``k`` covering the vocab degrades every
index to the exact ranking, exactly-tied scores (duplicate rows) always
break toward the lowest id, the engine's cache accounting is a pure
function of the query stream (invariant to ``max_batch``, even when the
cache is smaller than a batch), and the sharded scatter-gather merge is
bitwise invariant to the shard/replica layout.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np

from repro.serve.engine import QueryEngine
from repro.serve.index import ExactIndex, LSHIndex, recall_at_k
from repro.serve.ivf import IVFIndex
from repro.serve.shard import ShardedIndex, ShardPlan
from repro.serve.store import EmbeddingStore
from repro.util.rng import keyed_rng

_MATRIX_DOMAIN = 0x50525250  # "PRP" — property-test stores
_QUERY_DOMAIN = 0x505251  # "PQR" — property-test queries

INDEX_KINDS = ("exact", "lsh", "ivf")


def make_store(V, d, seed, duplicates=0):
    rng = keyed_rng(seed, _MATRIX_DOMAIN, V, d)
    matrix = rng.normal(size=(V, d)).astype(np.float32)
    for row in range(1, duplicates + 1):
        matrix[row] = matrix[0]
    return EmbeddingStore(matrix, [f"w{i:04d}" for i in range(V)])


def make_queries(store, n, seed):
    rng = keyed_rng(seed, _QUERY_DOMAIN, n)
    return store.matrix[rng.choice(len(store), n)]


def build_index(kind, store, seed):
    if kind == "exact":
        return ExactIndex(store, block_rows=32)
    if kind == "lsh":
        return LSHIndex(store, seed=seed)
    return IVFIndex(store, nlist=max(2, len(store) // 10), nprobe=2, seed=seed)


seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestBatchedUnbatchedParity:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, kind=st.sampled_from(INDEX_KINDS), k=st.integers(1, 12))
    def test_bitwise_parity(self, seed, kind, k):
        store = make_store(V=80, d=16, seed=seed)
        index = build_index(kind, store, seed)
        queries = make_queries(store, 10, seed)
        ids_all, scores_all = index.search(queries, k)
        for i in range(queries.shape[0]):
            ids_one, scores_one = index.search(queries[i], k)
            np.testing.assert_array_equal(ids_one[0], ids_all[i])
            np.testing.assert_array_equal(scores_one[0], scores_all[i])


class TestNprobeMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, k=st.integers(1, 10))
    def test_recall_non_decreasing_in_nprobe(self, seed, k):
        store = make_store(V=120, d=12, seed=seed)
        exact = ExactIndex(store)
        queries = make_queries(store, 16, seed)
        ivf = IVFIndex(store, nlist=12, nprobe=1, seed=seed)
        recalls = []
        for nprobe in (1, 2, 4, 8, 12):
            ivf.nprobe = nprobe
            recalls.append(recall_at_k(ivf, exact, queries, k=k))
        assert all(a <= b for a, b in zip(recalls, recalls[1:])), recalls
        assert recalls[-1] == 1.0  # nprobe == nlist is an exhaustive scan


class TestKCoversVocab:
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, kind=st.sampled_from(INDEX_KINDS), extra=st.integers(0, 7))
    def test_degrades_to_exact(self, seed, kind, extra):
        """k >= vocab must return *every* row with the exact scores.

        Ids are compared as the full row set and scores per-id (exact and
        approximate paths may sum in different float orders, so the rank
        of two near-tied rows is not pinned — their scores are).
        """
        store = make_store(V=40, d=12, seed=seed)
        index = build_index(kind, store, seed)
        exact = ExactIndex(store)
        queries = make_queries(store, 6, seed)
        k = len(store) + extra
        ids, scores = index.search(queries, k)
        exact_ids, exact_scores = exact.search(queries, k)
        assert ids.shape == exact_ids.shape == (6, len(store))
        for row in range(queries.shape[0]):
            assert sorted(ids[row].tolist()) == list(range(len(store)))
            assert np.all(np.diff(scores[row]) <= 1e-6)  # descending
            by_id = scores[row][np.argsort(ids[row])]
            exact_by_id = exact_scores[row][np.argsort(exact_ids[row])]
            np.testing.assert_allclose(by_id, exact_by_id, atol=1e-5)


class TestTieBreaking:
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, kind=st.sampled_from(INDEX_KINDS), dupes=st.integers(1, 6))
    def test_equal_scores_break_toward_lowest_id(self, seed, kind, dupes):
        """Bitwise-identical rows score identically; ids must come out
        ascending — the shared tie-break contract of every index."""
        store = make_store(V=60, d=10, seed=seed, duplicates=dupes)
        index = build_index(kind, store, seed)
        ids, scores = index.search(store.matrix[0], dupes + 1)
        group = ids[0, : dupes + 1]
        assert group.tolist() == list(range(dupes + 1))
        assert np.all(scores[0, : dupes + 1] == scores[0, 0])


class TestCacheAccountingPureFunctionOfStream:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=seeds,
        cache_size=st.integers(1, 6),
        max_batches=st.tuples(
            st.integers(1, 4), st.integers(5, 30), st.integers(31, 200)
        ),
    )
    def test_invariant_to_max_batch_even_below_cache_size(
        self, seed, cache_size, max_batches
    ):
        """Hits/misses/evictions replay one-query-at-a-time serving for
        *every* batch chopping — including ``cache_size < max_batch``,
        where in-flight ``_PENDING`` placeholders thrash out mid-flush."""
        store = make_store(V=40, d=8, seed=seed)
        rng = keyed_rng(seed, _QUERY_DOMAIN, 0x434143)  # "CAC"
        words = [store.word_of(int(i)) for i in rng.integers(0, 12, size=120)]
        signatures = set()
        for max_batch in (1, *max_batches):
            engine = QueryEngine(
                ExactIndex(store), max_batch=max_batch, cache_size=cache_size
            )
            tickets = [engine.submit(word) for word in words]
            engine.flush()
            assert all(t.done for t in tickets)
            cache = engine.stats.cache
            signatures.add((cache.hits, cache.misses, cache.evictions))
        assert len(signatures) == 1, signatures


class TestShardLayoutInvariance:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=seeds,
        num_shards=st.integers(1, 6),
        replicas=st.integers(1, 3),
        k=st.integers(1, 15),
    )
    def test_merge_bitwise_invariant_to_layout(self, seed, num_shards, replicas, k):
        """Scatter-gather answers are bit-identical to the single-host
        reference index for every (shards, replicas) layout."""
        store = make_store(V=90, d=12, seed=seed)
        queries = make_queries(store, 8, seed)
        sharded = ShardedIndex(store, num_shards=num_shards, replicas=replicas)
        reference = sharded.plan.reference_index(store)
        ids, scores = sharded.search(queries, k)
        ref_ids, ref_scores = reference.search(queries, k)
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(scores, ref_scores)

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, block_rows=st.integers(4, 40))
    def test_explicit_grid_still_bitwise(self, seed, block_rows):
        """Any block grid works as long as shards and reference share it."""
        store = make_store(V=70, d=10, seed=seed)
        queries = make_queries(store, 6, seed)
        plan = ShardPlan(len(store), num_shards=2, block_rows=block_rows)
        sharded = ShardedIndex(store, plan=plan)
        reference = plan.reference_index(store)
        ids, scores = sharded.search(queries, 9)
        ref_ids, ref_scores = reference.search(queries, 9)
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(scores, ref_scores)
