from hypothesis import given, settings, strategies as st
import numpy as np
import pytest

from repro.text.vocab import Vocabulary

words = st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=6)


class TestConstruction:
    def test_from_sentences_counts(self):
        vocab = Vocabulary.from_sentences([["the", "quick", "the"], ["fox"]])
        assert len(vocab) == 3
        assert vocab.total_words == 4
        assert vocab.counts[vocab.id_of("the")] == 2

    def test_min_count_filters(self):
        vocab = Vocabulary.from_sentences([["a", "a", "b"]], min_count=2)
        assert "a" in vocab
        assert "b" not in vocab

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary({})
        with pytest.raises(ValueError):
            Vocabulary.from_sentences([["a"]], min_count=5)

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary({"a": 0})


class TestHashIds:
    def test_ids_independent_of_insertion_order(self):
        v1 = Vocabulary({"fox": 1, "dog": 2, "cat": 3})
        v2 = Vocabulary({"cat": 3, "fox": 1, "dog": 2})
        for w in ("fox", "dog", "cat"):
            assert v1.id_of(w) == v2.id_of(w)

    def test_ids_independent_of_counts(self):
        # Node ids come from the shared hash function, not frequencies —
        # this is what lets hosts agree without communication.
        v1 = Vocabulary({"fox": 1, "dog": 200})
        v2 = Vocabulary({"fox": 99, "dog": 1})
        assert v1.id_of("fox") == v2.id_of("fox")

    def test_roundtrip(self):
        vocab = Vocabulary({"a": 1, "b": 2, "c": 3})
        for w in vocab:
            assert vocab.word_of(vocab.id_of(w)) == w

    def test_unknown_word(self):
        vocab = Vocabulary({"a": 1})
        with pytest.raises(KeyError):
            vocab.id_of("zzz")

    def test_bad_id(self):
        vocab = Vocabulary({"a": 1})
        with pytest.raises(IndexError):
            vocab.word_of(5)


class TestEncode:
    def test_encode_skips_unknown(self):
        vocab = Vocabulary({"a": 1, "b": 1})
        ids = vocab.encode(["a", "zzz", "b"])
        assert vocab.decode(ids) == ["a", "b"]

    def test_encode_strict(self):
        vocab = Vocabulary({"a": 1})
        with pytest.raises(KeyError):
            vocab.encode(["a", "zzz"], skip_unknown=False)


class TestStatistics:
    def test_frequency(self):
        vocab = Vocabulary({"a": 3, "b": 1})
        assert vocab.frequency("a") == pytest.approx(0.75)

    def test_counts_read_only(self):
        vocab = Vocabulary({"a": 1})
        with pytest.raises(ValueError):
            vocab.counts[0] = 5

    def test_size_on_disk(self):
        vocab = Vocabulary({"ab": 2, "c": 1})
        # "ab " twice + "c " once = 6 + 2.
        assert vocab.size_on_disk_bytes() == 2 * 3 + 1 * 2


class TestSubsampling:
    def test_rare_words_always_kept(self):
        counts = {"rare": 1, "common": 100_000}
        vocab = Vocabulary(counts)
        keep = vocab.keep_probabilities(threshold=1e-4)
        assert keep[vocab.id_of("rare")] == 1.0
        assert keep[vocab.id_of("common")] < 1.0

    def test_mikolov_formula(self):
        vocab = Vocabulary({"w": 90, "x": 10})
        t = 0.05
        keep = vocab.keep_probabilities(threshold=t)
        f = 0.9
        expected = min(1.0, np.sqrt(t / f) + t / f)
        assert keep[vocab.id_of("w")] == pytest.approx(expected)

    def test_cache_invalidated_on_threshold_change(self):
        vocab = Vocabulary({"w": 99, "x": 1})
        a = vocab.keep_probabilities(threshold=1e-3).copy()
        b = vocab.keep_probabilities(threshold=1e-1)
        assert not np.array_equal(a, b)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            Vocabulary({"a": 1}).keep_probabilities(threshold=0)


@settings(max_examples=30, deadline=None)
@given(st.dictionaries(words, st.integers(min_value=1, max_value=50), min_size=1, max_size=30))
def test_ids_form_a_permutation(counts):
    vocab = Vocabulary(counts)
    ids = sorted(vocab.id_of(w) for w in counts)
    assert ids == list(range(len(counts)))
