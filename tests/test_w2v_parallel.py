"""Host-parallel execution of the distributed trainer.

Per-host replicas are disjoint arrays, so running the compute (and PullModel
inspection) phases under ``ThreadPoolDoAll`` must leave the trained model
*bit-identical* to ``SerialExecutor`` — unlike intra-host Hogwild, where
concurrent scatter-adds race on one shared model.  These tests pin that
invariant across communication plans, under fault injection, and through
the executor-resolution plumbing (``workers=``, ``REPRO_WORKERS``).
"""

import numpy as np
import pytest

from repro.analysis.runtime import SanitizedExecutor
from repro.cluster.faults import FaultConfig
from repro.galois.do_all import DoAllExecutor, SerialExecutor, ThreadPoolDoAll
from repro.text.synthetic import SyntheticCorpusSpec, generate_corpus
from repro.w2v.distributed import GraphWord2Vec
from repro.w2v.params import Word2VecParams
from repro.w2v.shared_memory import SharedMemoryWord2Vec


@pytest.fixture(scope="module")
def corpus():
    spec = SyntheticCorpusSpec(
        num_tokens=6000, pairs_per_family=4, filler_vocab=120, questions_per_family=4
    )
    return generate_corpus(spec, seed=1)[0]


FAST = Word2VecParams(dim=16, epochs=2, negatives=4, window=3, subsample_threshold=1e-2)


def train(corpus, *, plan="opt", faults=None, hosts=4, **kwargs):
    trainer = GraphWord2Vec(
        corpus,
        FAST,
        num_hosts=hosts,
        plan=plan,
        seed=11,
        faults=faults,
        **kwargs,
    )
    result = trainer.train()
    return trainer, result


def resolved_executor(trainer):
    """The executor picked by workers/env resolution, ignoring the
    ``SanitizedExecutor`` wrapper added when ``REPRO_SANITIZE=1``."""
    executor = trainer.executor
    if isinstance(executor, SanitizedExecutor):
        executor = executor.inner
    return executor


class TestHostParallelParity:
    @pytest.mark.parametrize("plan", ["naive", "opt", "pull"])
    def test_bit_identical_across_executors(self, corpus, plan):
        _, serial = train(corpus, plan=plan, executor=SerialExecutor())
        with ThreadPoolDoAll(workers=3) as pool:
            _, parallel = train(corpus, plan=plan, executor=pool)
        assert np.array_equal(serial.model.embedding, parallel.model.embedding)
        assert np.array_equal(serial.model.training, parallel.model.training)
        assert serial.epoch_pairs == parallel.epoch_pairs

    @pytest.mark.parametrize("plan", ["naive", "opt", "pull"])
    def test_bit_identical_with_faults(self, corpus, plan):
        faults = FaultConfig(crash_prob=0.2, drop_prob=0.05, straggler_prob=0.2)
        ts, serial = train(corpus, plan=plan, faults=faults, executor=SerialExecutor())
        with ThreadPoolDoAll(workers=3) as pool:
            tp, parallel = train(corpus, plan=plan, faults=faults, executor=pool)
        assert ts.fault_report.crashes == tp.fault_report.crashes
        assert np.array_equal(serial.model.embedding, parallel.model.embedding)
        assert np.array_equal(serial.model.training, parallel.model.training)
        assert serial.epoch_pairs == parallel.epoch_pairs

    def test_byte_accounting_identical(self, corpus):
        _, serial = train(corpus, workers=1)
        _, parallel = train(corpus, workers=3)
        assert serial.report.comm_bytes == parallel.report.comm_bytes
        assert serial.report.comm_messages == parallel.report.comm_messages
        assert serial.report.pairs_processed == parallel.report.pairs_processed

    def test_workers_knob_builds_pool(self, corpus):
        trainer = GraphWord2Vec(corpus, FAST, num_hosts=2, workers=3)
        assert isinstance(resolved_executor(trainer), ThreadPoolDoAll)
        assert resolved_executor(trainer).workers == 3

    def test_workers_one_is_serial(self, corpus):
        trainer = GraphWord2Vec(corpus, FAST, num_hosts=2, workers=1)
        assert isinstance(resolved_executor(trainer), SerialExecutor)

    def test_executor_and_workers_conflict(self, corpus):
        with pytest.raises(ValueError, match="not both"):
            GraphWord2Vec(
                corpus, FAST, num_hosts=2, executor=SerialExecutor(), workers=2
            )

    def test_env_default_used(self, corpus, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        trainer = GraphWord2Vec(corpus, FAST, num_hosts=2)
        assert isinstance(resolved_executor(trainer), ThreadPoolDoAll)
        assert resolved_executor(trainer).workers == 3

    def test_explicit_workers_beat_env(self, corpus, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        trainer = GraphWord2Vec(corpus, FAST, num_hosts=2, workers=1)
        assert isinstance(resolved_executor(trainer), SerialExecutor)


class TestExecutorFailurePropagation:
    def test_operator_error_surfaces_from_train(self, corpus):
        class BrokenExecutor:
            """Runs the first item, then fails the loop."""

            def run(self, items, operator):
                operator(items[0])
                raise RuntimeError("executor blew up")

        trainer = GraphWord2Vec(
            corpus, FAST, num_hosts=2, executor=BrokenExecutor()
        )
        with pytest.raises(RuntimeError, match="executor blew up"):
            trainer.train()

    def test_protocol_accepts_custom_executor(self, corpus):
        calls = []

        class CountingExecutor:
            def run(self, items, operator):
                calls.append(len(list(items)))
                for item in items:
                    operator(item)

        executor: DoAllExecutor = CountingExecutor()
        _, result = train(corpus, hosts=2, executor=executor)
        _, reference = train(corpus, hosts=2, executor=SerialExecutor())
        assert calls  # the trainer actually drove the injected executor
        assert np.array_equal(result.model.embedding, reference.model.embedding)


class TestHogwildSmoke:
    def test_exact_pair_counts_across_worker_counts(self, corpus):
        # Example generation uses per-chunk seed streams, so the *number* of
        # training pairs is exact under any worker count — only the trained
        # vectors are allowed to differ (benign Hogwild races).  Race-free
        # accumulators make the counts reliable.
        serial = SharedMemoryWord2Vec(corpus, FAST, seed=5, workers=1)
        serial.train()
        parallel = SharedMemoryWord2Vec(corpus, FAST, seed=5, workers=4)
        parallel.train()
        assert [s.pairs for s in serial.epoch_stats] == [
            s.pairs for s in parallel.epoch_stats
        ]
        assert all(s.pairs > 0 for s in serial.epoch_stats)

    def test_workers_conflict_rejected(self, corpus):
        with pytest.raises(ValueError, match="not both"):
            SharedMemoryWord2Vec(
                corpus, FAST, seed=5, executor=SerialExecutor(), workers=2
            )
