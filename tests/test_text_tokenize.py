from hypothesis import given, strategies as st

from repro.text.corpus import Corpus
from repro.text.tokenize import sentences_from_lines, simple_tokenize


class TestSimpleTokenize:
    def test_lowercase_and_split(self):
        assert simple_tokenize("The Quick, Brown FOX!") == ["the", "quick", "brown", "fox"]

    def test_apostrophes_kept(self):
        assert simple_tokenize("don't stop") == ["don't", "stop"]

    def test_numbers_kept(self):
        assert simple_tokenize("route 66 rocks") == ["route", "66", "rocks"]

    def test_empty(self):
        assert simple_tokenize("") == []
        assert simple_tokenize("!!! ...") == []

    @given(st.text(max_size=100))
    def test_never_produces_empty_tokens(self, text):
        assert all(t for t in simple_tokenize(text))


class TestSentencesFromLines:
    def test_skips_empty_lines(self):
        lines = ["Hello world", "", "  !!!  ", "again"]
        assert list(sentences_from_lines(lines)) == [["hello", "world"], ["again"]]


class TestCorpusFromFile:
    def test_two_pass_streaming(self, tmp_path):
        path = tmp_path / "corpus.txt"
        path.write_text("a b c\nb c\n\nc c\n")
        corpus = Corpus.from_file(path)
        assert corpus.num_sentences == 3
        assert corpus.num_tokens == 7
        assert corpus.vocabulary.counts.sum() == 7

    def test_min_count(self, tmp_path):
        path = tmp_path / "corpus.txt"
        path.write_text("common rare\ncommon\n")
        corpus = Corpus.from_file(path, min_count=2)
        assert len(corpus.vocabulary) == 1
        assert corpus.num_tokens == 2

    def test_tokenize_mode(self, tmp_path):
        path = tmp_path / "corpus.txt"
        path.write_text("Hello, WORLD!\n")
        corpus = Corpus.from_file(path, tokenize=True)
        assert "hello" in corpus.vocabulary
        assert "Hello," not in corpus.vocabulary

    def test_max_sentence_length(self, tmp_path):
        path = tmp_path / "corpus.txt"
        path.write_text(" ".join(["w"] * 10) + "\n")
        corpus = Corpus.from_file(path, max_sentence_length=4)
        assert [len(s) for s in corpus.sentences] == [4, 4, 2]

    def test_matches_from_text(self, tmp_path):
        text = "the quick brown fox\njumps over the lazy dog\n"
        path = tmp_path / "corpus.txt"
        path.write_text(text)
        a = Corpus.from_file(path)
        b = Corpus.from_text(text)
        assert a.to_text() == b.to_text()
