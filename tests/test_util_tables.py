import pytest

from repro.util.tables import format_bytes, format_number, format_table


class TestFormatNumber:
    def test_int_passthrough(self):
        assert format_number(42) == "42"

    def test_float_precision(self):
        assert format_number(3.14159, precision=2) == "3.14"

    def test_large_float_scientific(self):
        assert "e" in format_number(1.5e7)

    def test_tiny_float_scientific(self):
        assert "e" in format_number(1.5e-5)

    def test_nan(self):
        assert format_number(float("nan")) == "nan"

    def test_bool_not_treated_as_int(self):
        assert format_number(True) == "True"

    def test_thousands_separator(self):
        assert format_number(12345.0) == "12,345.00"


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512B"

    def test_terabytes(self):
        assert format_bytes(27.6e12) == "27.60TB"

    def test_gigabytes(self):
        assert format_bytes(3.7e9) == "3.70GB"


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert lines[0].endswith("value")
        # All lines equal width (right-justified columns).
        assert len({len(l) for l in lines}) == 1

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out
