"""Smoke tests: the runnable examples execute end to end.

Only the fast examples run here (the training-heavy ones are exercised by
the benchmark suite); each runs in a subprocess exactly as a user would.
"""

from pathlib import Path
import subprocess
import sys

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    return result.stdout


def test_examples_exist():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "combiner_comparison.py",
        "scaling_and_plans.py",
        "graph_analytics.py",
        "custom_corpus.py",
        "node_embeddings.py",
        "fault_injection.py",
        "serve_embeddings.py",
        "sharded_serving.py",
        "workload_slo.py",
    } <= names


def test_graph_analytics_example():
    out = run_example("graph_analytics.py")
    assert "delta-stepping agrees with the distributed run" in out
    assert "pagerank: sum=1.000000" in out
    assert "connected components" in out


def test_scaling_and_plans_example():
    out = run_example("scaling_and_plans.py")
    assert "bitwise-identical models" in out
    assert "RepModel-Opt" in out and "PullModel" in out


@pytest.mark.slow
def test_custom_corpus_example():
    out = run_example("custom_corpus.py")
    assert "royalty cluster recovered" in out


@pytest.mark.slow
@pytest.mark.faults
def test_fault_injection_example():
    out = run_example("fault_injection.py")
    assert "bitwise identical to the fault-free run" in out
    assert "pinned-schedule run matches too" in out


@pytest.mark.slow
def test_serve_embeddings_example():
    out = run_example("serve_embeddings.py")
    assert "store round-trip ok" in out
    assert "recall@10" in out
    assert "modeled results identical across runs and worker counts" in out


def test_workload_slo_example():
    out = run_example("workload_slo.py")
    assert "SLOs 4/4 pass" in out
    assert "SLO gate: pass" in out
    assert "modeled accounting bit-identical at workers=4" in out


@pytest.mark.slow
def test_sharded_serving_example():
    out = run_example("sharded_serving.py")
    assert "bit-identical to the single-host reference" in out
    assert "replica failover survived a crash" in out
    assert "answers unchanged" in out
    assert "promoted under live load" in out
