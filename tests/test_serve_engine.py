"""QueryEngine: batching policy, LRU accounting, executor invariance."""

import numpy as np
import pytest

from repro.galois.do_all import SerialExecutor, ThreadPoolDoAll
from repro.serve.engine import CacheStats, LRUCache, QueryEngine
from repro.serve.index import ExactIndex
from repro.serve.store import EmbeddingStore
from repro.util.rng import default_rng


def make_index(V=120, d=16, seed=1):
    rng = default_rng(seed)
    matrix = rng.normal(size=(V, d)).astype(np.float32)
    return ExactIndex(EmbeddingStore(matrix, [f"w{i:03d}" for i in range(V)]))


class TestLRUCache:
    def test_bounded_with_eviction_accounting(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts a
        assert len(cache) == 2
        assert "a" not in cache
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # a now most recent
        cache.put("c", 3)  # evicts b, not a
        assert "a" in cache and "b" not in cache

    def test_hit_miss_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_peek_counts_nothing(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("b") is None
        assert cache.stats.lookups == 0

    def test_replace_keeps_recency_and_skips_absent(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.replace("a", 10)  # value swapped, recency unchanged
        cache.replace("ghost", 1)  # no-op, no insertion
        assert "ghost" not in cache
        cache.put("c", 3)  # LRU is still a
        assert "a" not in cache

    def test_put_existing_refreshes(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 5)
        cache.put("c", 3)  # evicts b
        assert cache.peek("a") == 5 and "b" not in cache

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            LRUCache(0)


class TestBatchingPolicy:
    def test_auto_flush_at_max_batch(self):
        engine = QueryEngine(make_index(), max_batch=4)
        tickets = [engine.submit(f"w{i:03d}") for i in range(3)]
        assert engine.pending == 3
        assert not tickets[0].done
        engine.submit("w003")  # fourth query triggers the flush
        assert engine.pending == 0
        assert all(t.done for t in tickets)

    def test_explicit_flush_drains_tail(self):
        engine = QueryEngine(make_index(), max_batch=100)
        ticket = engine.submit("w000")
        assert engine.flush() == 1
        assert ticket.done
        assert engine.flush() == 0  # idempotent on empty

    def test_batch_sizes_recorded(self):
        engine = QueryEngine(make_index(), max_batch=4)
        engine.query([f"w{i:03d}" for i in range(10)])
        assert engine.stats.batch_sizes == [4, 4, 2]
        assert engine.stats.batch_size_histogram() == {2: 1, 4: 2}
        assert engine.stats.queries == 10
        assert len(engine.stats.batch_seconds) == 3

    def test_results_correct_and_read_only(self):
        index = make_index()
        engine = QueryEngine(index, max_batch=3)
        results = engine.query(["w005", "w017"], k=4)
        ids, scores = results[0]
        expect_ids, expect_scores = index.search(index.store.matrix[5], 4)
        np.testing.assert_array_equal(ids, expect_ids[0])
        np.testing.assert_array_equal(scores, expect_scores[0])
        with pytest.raises(ValueError):
            ids[0] = 1

    def test_mixed_k_in_one_flush(self):
        engine = QueryEngine(make_index(), max_batch=100)
        t_small = engine.submit("w001", k=2)
        t_big = engine.submit("w002", k=9)
        engine.flush()
        assert t_small.result[0].shape == (2,)
        assert t_big.result[0].shape == (9,)

    def test_unknown_word_fails_at_submit(self):
        engine = QueryEngine(make_index())
        with pytest.raises(KeyError):
            engine.submit("nope")
        assert engine.pending == 0

    def test_validation(self):
        index = make_index()
        with pytest.raises(ValueError, match="max_batch"):
            QueryEngine(index, max_batch=0)
        with pytest.raises(ValueError, match="search_block"):
            QueryEngine(index, search_block=0)
        with pytest.raises(ValueError, match="k must be positive"):
            QueryEngine(index).submit("w000", k=0)


class TestCacheAccounting:
    def test_repeat_query_hits(self):
        engine = QueryEngine(make_index(), max_batch=2)
        engine.query(["w001", "w002"])
        engine.query(["w001", "w003"])
        assert engine.stats.cache.hits == 1
        assert engine.stats.cache.misses == 3

    def test_in_flush_duplicate_counts_as_hit(self):
        engine = QueryEngine(make_index(), max_batch=10)
        results = engine.query(["w001", "w001", "w001"])
        assert engine.stats.cache.hits == 2
        assert engine.stats.cache.misses == 1
        for ids, _ in results:
            np.testing.assert_array_equal(ids, results[0][0])

    def test_distinct_k_cached_separately(self):
        engine = QueryEngine(make_index(), max_batch=10)
        engine.query(["w001"], k=3)
        engine.query(["w001"], k=5)
        assert engine.stats.cache.misses == 2

    def test_accounting_invariant_to_batch_chopping(self):
        """Hits, misses and evictions match one-query-at-a-time serving."""
        words = [f"w{i % 17:03d}" for i in default_rng(3).integers(0, 40, 200)]
        reference = None
        for max_batch in (1, 7, 64, 200):
            engine = QueryEngine(make_index(), max_batch=max_batch, cache_size=8)
            for word in words:
                engine.submit(word)
            engine.flush()
            stats = (
                engine.stats.cache.hits,
                engine.stats.cache.misses,
                engine.stats.cache.evictions,
            )
            if reference is None:
                reference = stats
            assert stats == reference, f"max_batch={max_batch}"

    def test_tickets_resolve_even_when_cache_thrashes(self):
        engine = QueryEngine(make_index(), max_batch=50, cache_size=1)
        tickets = [engine.submit(f"w{i:03d}") for i in range(30)]
        engine.flush()
        assert all(t.done for t in tickets)

    def test_evicted_placeholder_not_searched_twice(self):
        """Regression: with cache_size < max_batch, a key whose _PENDING
        placeholder was evicted mid-flush re-misses on its next occurrence
        — it must re-enter the accounting replay but NOT the search batch.
        """

        class CountingIndex:
            def __init__(self, inner):
                self.inner = inner
                self.rows_searched = 0

            @property
            def store(self):
                return self.inner.store

            def search(self, queries, k):
                self.rows_searched += np.atleast_2d(queries).shape[0]
                return self.inner.search(queries, k)

        counting = CountingIndex(make_index())
        engine = QueryEngine(counting, max_batch=10, cache_size=1)
        # Stream [a, b, a]: b's miss evicts a's placeholder, so a re-misses.
        tickets = [engine.submit(w) for w in ("w001", "w002", "w001")]
        engine.flush()
        assert all(t.done for t in tickets)
        np.testing.assert_array_equal(tickets[0].result[0], tickets[2].result[0])
        # Accounting still replays one-query-at-a-time serving exactly:
        # three misses (a, b, a-again), two placeholder evictions.
        assert engine.stats.cache.misses == 3
        assert engine.stats.cache.hits == 0
        assert engine.stats.cache.evictions == 2
        # ...but only the two distinct keys hit the index.
        assert counting.rows_searched == 2

    def test_thrashed_flush_searches_each_distinct_key_once(self):
        class CountingIndex:
            def __init__(self, inner):
                self.inner = inner
                self.rows_searched = 0

            @property
            def store(self):
                return self.inner.store

            def search(self, queries, k):
                self.rows_searched += np.atleast_2d(queries).shape[0]
                return self.inner.search(queries, k)

        words = [f"w{i % 9:03d}" for i in default_rng(6).integers(0, 25, 80)]
        counting = CountingIndex(make_index())
        engine = QueryEngine(counting, max_batch=80, cache_size=2)
        tickets = [engine.submit(word) for word in words]
        engine.flush()
        assert all(t.done for t in tickets)
        assert counting.rows_searched == len(set(words))

    def test_reset_stats_keeps_cache_contents(self):
        engine = QueryEngine(make_index(), max_batch=1)
        engine.query(["w001"])
        engine.reset_stats()
        assert engine.stats.queries == 0
        assert engine.stats.cache.lookups == 0
        engine.query(["w001"])  # still cached from before the reset
        assert engine.stats.cache.hits == 1


class TestExecutorInvariance:
    def test_results_bit_identical_across_workers(self):
        words = [f"w{i:03d}" for i in default_rng(4).integers(0, 100, 90)]
        index = make_index()
        baseline = QueryEngine(index, max_batch=64, executor=SerialExecutor())
        base_results = baseline.query(list(words))
        with ThreadPoolDoAll(workers=4) as pool:
            parallel = QueryEngine(index, max_batch=64, executor=pool, search_block=8)
            par_results = parallel.query(list(words))
        for (ids_a, scores_a), (ids_b, scores_b) in zip(base_results, par_results):
            np.testing.assert_array_equal(ids_a, ids_b)
            np.testing.assert_array_equal(scores_a, scores_b)

    def test_workers_knob(self):
        engine = QueryEngine(make_index(), workers=2)
        executor = engine._executor.inner if engine.sanitize else engine._executor
        assert isinstance(executor, ThreadPoolDoAll)
        executor.close()

    def test_executor_and_workers_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            QueryEngine(make_index(), executor=SerialExecutor(), workers=2)

    def test_injected_clock_measures_batches(self):
        ticks = iter(range(100))

        def clock():
            return float(next(ticks))

        engine = QueryEngine(make_index(), max_batch=2, clock=clock)
        engine.query(["w001", "w002"])
        assert engine.stats.batch_seconds == [1.0]


def test_cache_stats_shared_with_engine_stats():
    engine = QueryEngine(make_index(), max_batch=1)
    engine.query(["w001"])
    assert engine.stats.cache is engine.cache.stats
    assert isinstance(engine.stats.cache, CacheStats)
