import numpy as np
import pytest

from repro.gluon.comm import HEADER_BYTES, PhaseRecord, SimulatedNetwork


class TestSend:
    def test_delivery_order(self):
        net = SimulatedNetwork(3)
        net.send(0, 2, 10, payload="a")
        net.send(1, 2, 20, payload="b")
        assert net.drain(2) == [(0, "a"), (1, "b")]
        assert net.drain(2) == []

    def test_header_charged(self):
        net = SimulatedNetwork(2)
        net.send(0, 1, 100)
        assert net.total_bytes == 100 + HEADER_BYTES

    def test_loopback_rejected(self):
        net = SimulatedNetwork(2)
        with pytest.raises(ValueError, match="loopback"):
            net.send(1, 1, 4)

    def test_bad_hosts_rejected(self):
        net = SimulatedNetwork(2)
        with pytest.raises(ValueError):
            net.send(0, 2, 4)
        with pytest.raises(ValueError):
            net.send(-1, 0, 4)

    def test_negative_bytes_rejected(self):
        net = SimulatedNetwork(2)
        with pytest.raises(ValueError):
            net.send(0, 1, -1)

    def test_pending(self):
        net = SimulatedNetwork(2)
        net.send(0, 1, 0)
        assert net.pending(1) == 1
        net.drain(1)
        assert net.pending(1) == 0


class TestPhases:
    def test_phase_records_per_host_traffic(self):
        net = SimulatedNetwork(3)
        with net.phase("reduce") as record:
            net.send(0, 1, 84)  # 100 on the wire
            net.send(2, 1, 184)  # 200 on the wire
        assert record.sent.tolist() == [100, 0, 200]
        assert record.recv.tolist() == [0, 300, 0]
        assert record.max_host_bytes() == 300
        assert record.messages == 2

    def test_phase_bytes_aggregated(self):
        net = SimulatedNetwork(2)
        with net.phase("reduce"):
            net.send(0, 1, 84)
        with net.phase("broadcast"):
            net.send(1, 0, 84)
        assert net.stats.bytes_by_phase == {"reduce": 100, "broadcast": 100}
        assert net.stats.messages_by_phase == {"reduce": 1, "broadcast": 1}

    def test_phases_do_not_nest(self):
        net = SimulatedNetwork(2)
        with net.phase("a"):
            with pytest.raises(RuntimeError, match="do not nest"):
                net._begin_phase("b")

    def test_default_phase_outside_blocks(self):
        net = SimulatedNetwork(2)
        net.send(0, 1, 0)
        net.send(1, 0, 0)
        assert net.stats.bytes_by_phase == {"default": 2 * HEADER_BYTES}
        # One shared default record, not one per message.
        assert len(net.phase_records) == 1

    def test_records_for(self):
        net = SimulatedNetwork(2)
        with net.phase("x"):
            net.send(0, 1, 0)
        with net.phase("y"):
            net.send(0, 1, 0)
        assert len(list(net.records_for("x"))) == 1

    def test_conservation_sent_equals_received(self):
        net = SimulatedNetwork(4)
        rng = np.random.default_rng(0)
        with net.phase("p") as record:
            for _ in range(50):
                a, b = rng.choice(4, size=2, replace=False)
                net.send(int(a), int(b), int(rng.integers(0, 1000)))
        assert record.sent.sum() == record.recv.sum()
        assert record.total_bytes == record.sent.sum()


class TestPhaseRecord:
    def test_empty_record(self):
        r = PhaseRecord(name="x", num_hosts=3)
        assert r.total_bytes == 0
        assert r.max_host_bytes() == 0

    def test_invalid_network(self):
        with pytest.raises(ValueError):
            SimulatedNetwork(0)
