import numpy as np
import pytest

from repro.experiments.stats import repeat_runs


class TestRepeatRuns:
    def test_constant_measure(self):
        stats = repeat_runs(lambda seed: 5.0, seeds=[1, 2, 3])
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.ci95_low == stats.ci95_high == 5.0

    def test_seed_passed_through(self):
        seen = []
        repeat_runs(lambda s: seen.append(s) or float(s), seeds=[7, 9])
        assert seen == [7, 9]

    def test_statistics_match_numpy(self):
        values = [1.0, 2.0, 3.0, 4.0]
        stats = repeat_runs(lambda s: values[s], seeds=[0, 1, 2, 3])
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.std == pytest.approx(np.std(values, ddof=1))
        assert stats.n == 4

    def test_ci_contains_mean_and_widens_with_variance(self):
        tight = repeat_runs(lambda s: 10.0 + 0.01 * s, seeds=range(5))
        loose = repeat_runs(lambda s: 10.0 + 1.0 * s, seeds=range(5))
        assert tight.ci95_low <= tight.mean <= tight.ci95_high
        assert (loose.ci95_high - loose.ci95_low) > (
            tight.ci95_high - tight.ci95_low
        )

    def test_needs_two_seeds(self):
        with pytest.raises(ValueError, match=">= 2 seeds"):
            repeat_runs(lambda s: 1.0, seeds=[1])

    def test_str(self):
        stats = repeat_runs(lambda s: float(s), seeds=[0, 2])
        assert "95% CI" in str(stats)

    def test_real_training_variation(self):
        """Accuracy across seeds on a tiny config has finite spread."""
        from repro.eval.analogy import evaluate_analogies
        from repro.experiments import datasets
        from repro.w2v.params import Word2VecParams
        from repro.w2v.shared_memory import SharedMemoryWord2Vec

        corpus, questions = datasets.load("tiny-sim")
        params = Word2VecParams(
            dim=16, epochs=2, negatives=4, window=3, subsample_threshold=1e-2
        )

        def measure(seed: int) -> float:
            model = SharedMemoryWord2Vec(corpus, params, seed=seed).train()
            return evaluate_analogies(model, corpus.vocabulary, questions).total

        stats = repeat_runs(measure, seeds=[1, 2, 3])
        assert 0.0 <= stats.mean <= 1.0
        assert stats.n == 3
