import numpy as np
import pytest

from repro.eval.analogy import evaluate_analogies
from repro.eval.similarity import cosine_similarity, most_similar
from repro.text.synthetic import (
    SEMANTIC,
    SYNTACTIC,
    AnalogyQuestion,
    AnalogyQuestionSet,
)
from repro.text.vocab import Vocabulary
from repro.w2v.model import Word2VecModel


def planted_embedding():
    """Embedding where analogies hold by construction.

    Words a0,a1 share a 'role A' direction; b0,b1 the 'role B' direction;
    pair identity lives on separate axes — the textbook parallelogram.
    """
    vocab = Vocabulary({w: 1 for w in ["a0", "b0", "a1", "b1", "x", "y"]})
    dim = 6
    emb = np.zeros((len(vocab), dim), dtype=np.float32)
    role_a = np.array([1, 0, 0, 0, 0, 0], dtype=np.float32)
    role_b = np.array([0, 1, 0, 0, 0, 0], dtype=np.float32)
    pair0 = np.array([0, 0, 1, 0, 0, 0], dtype=np.float32)
    pair1 = np.array([0, 0, 0, 1, 0, 0], dtype=np.float32)
    emb[vocab.id_of("a0")] = role_a + pair0
    emb[vocab.id_of("b0")] = role_b + pair0
    emb[vocab.id_of("a1")] = role_a + pair1
    emb[vocab.id_of("b1")] = role_b + pair1
    emb[vocab.id_of("x")] = np.array([0, 0, 0, 0, 1, 0], dtype=np.float32)
    emb[vocab.id_of("y")] = np.array([0, 0, 0, 0, 0, 1], dtype=np.float32)
    return vocab, emb


def question(a, b, c, d, family="fam", kind=SEMANTIC):
    return AnalogyQuestion(family=family, kind=kind, a=a, b=b, c=c, expected=d)


class TestEvaluateAnalogies:
    def test_perfect_parallelogram(self):
        vocab, emb = planted_embedding()
        questions = AnalogyQuestionSet(
            [
                question("a0", "b0", "a1", "b1"),
                question("a1", "b1", "a0", "b0"),
            ]
        )
        acc = evaluate_analogies(emb, vocab, questions)
        assert acc.total == 1.0
        assert acc.num_questions == 2

    def test_wrong_expectation_scores_zero(self):
        vocab, emb = planted_embedding()
        questions = AnalogyQuestionSet([question("a0", "b0", "a1", "x")])
        acc = evaluate_analogies(emb, vocab, questions)
        assert acc.total == 0.0

    def test_question_words_excluded_from_candidates(self):
        # Without exclusion, b0 itself would be the nearest to b0-a0+a1
        # in degenerate embeddings; the scorer must skip a, b, c.
        vocab, emb = planted_embedding()
        emb = emb.copy()
        questions = AnalogyQuestionSet([question("a0", "b0", "a1", "b1")])
        acc = evaluate_analogies(emb, vocab, questions)
        assert acc.total == 1.0

    def test_oov_questions_skipped(self):
        vocab, emb = planted_embedding()
        questions = AnalogyQuestionSet(
            [
                question("a0", "b0", "a1", "b1"),
                question("a0", "b0", "unknown", "b1"),
            ]
        )
        acc = evaluate_analogies(emb, vocab, questions)
        assert acc.num_questions == 1

    def test_all_oov(self):
        vocab, emb = planted_embedding()
        questions = AnalogyQuestionSet([question("zzz", "b0", "a1", "b1")])
        acc = evaluate_analogies(emb, vocab, questions)
        assert acc.num_questions == 0
        assert acc.total == 0.0

    def test_macro_average_over_categories(self):
        vocab, emb = planted_embedding()
        questions = AnalogyQuestionSet(
            [
                # Family f1 (semantic): 2 correct.
                question("a0", "b0", "a1", "b1", family="f1", kind=SEMANTIC),
                question("a1", "b1", "a0", "b0", family="f1", kind=SEMANTIC),
                # Family f2 (syntactic): 1 wrong.
                question("a0", "b0", "a1", "x", family="f2", kind=SYNTACTIC),
            ]
        )
        acc = evaluate_analogies(emb, vocab, questions)
        assert acc.semantic == 1.0
        assert acc.syntactic == 0.0
        assert acc.total == pytest.approx(0.5)  # mean over the two categories
        assert acc.micro == pytest.approx(2 / 3)
        assert acc.per_family == {"f1": 1.0, "f2": 0.0}

    def test_accepts_model_object(self):
        vocab, emb = planted_embedding()
        model = Word2VecModel(emb, np.zeros_like(emb))
        questions = AnalogyQuestionSet([question("a0", "b0", "a1", "b1")])
        assert evaluate_analogies(model, vocab, questions).total == 1.0

    def test_batching_equivalence(self):
        vocab, emb = planted_embedding()
        questions = AnalogyQuestionSet(
            [question("a0", "b0", "a1", "b1")] * 5
            + [question("b0", "a0", "b1", "a1")] * 5
        )
        a = evaluate_analogies(emb, vocab, questions, batch_size=2)
        b = evaluate_analogies(emb, vocab, questions, batch_size=512)
        assert a.total == b.total

    def test_str(self):
        vocab, emb = planted_embedding()
        acc = evaluate_analogies(
            emb, vocab, AnalogyQuestionSet([question("a0", "b0", "a1", "b1")])
        )
        assert "semantic" in str(acc)

    def test_3cosmul_on_parallelogram(self):
        vocab, emb = planted_embedding()
        questions = AnalogyQuestionSet(
            [
                question("a0", "b0", "a1", "b1"),
                question("b1", "a1", "b0", "a0"),
            ]
        )
        acc = evaluate_analogies(emb, vocab, questions, method="mul")
        assert acc.total == 1.0

    def test_unknown_method_rejected(self):
        vocab, emb = planted_embedding()
        with pytest.raises(ValueError, match="method"):
            evaluate_analogies(
                emb, vocab, AnalogyQuestionSet([question("a0", "b0", "a1", "b1")]),
                method="max",
            )

    def test_methods_can_disagree_but_both_score(self):
        rng = np.random.default_rng(0)
        vocab, emb = planted_embedding()
        noisy = emb + rng.normal(scale=0.2, size=emb.shape).astype(np.float32)
        questions = AnalogyQuestionSet(
            [question("a0", "b0", "a1", "b1")] * 4
            + [question("a1", "b1", "a0", "b0")] * 4
        )
        add = evaluate_analogies(noisy, vocab, questions, method="add")
        mul = evaluate_analogies(noisy, vocab, questions, method="mul")
        assert 0.0 <= add.total <= 1.0
        assert 0.0 <= mul.total <= 1.0


class TestSimilarity:
    def test_cosine(self):
        assert cosine_similarity([1, 0], [2, 0]) == pytest.approx(1.0)
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)
        assert cosine_similarity([0, 0], [1, 1]) == 0.0

    def test_most_similar_orders_by_cosine(self):
        vocab, emb = planted_embedding()
        model = Word2VecModel(emb, np.zeros_like(emb))
        result = most_similar(model, vocab, "a0", topn=2)
        assert result[0][0] == "a1"  # shares the role-A axis
        assert result[0][1] >= result[1][1]

    def test_most_similar_excludes_query(self):
        vocab, emb = planted_embedding()
        model = Word2VecModel(emb, np.zeros_like(emb))
        names = [w for w, _ in most_similar(model, vocab, "a0", topn=5)]
        assert "a0" not in names

    def test_topn_capped_at_vocab(self):
        vocab, emb = planted_embedding()
        model = Word2VecModel(emb, np.zeros_like(emb))
        assert len(most_similar(model, vocab, "a0", topn=100)) == len(vocab) - 1

    def test_invalid_topn(self):
        vocab, emb = planted_embedding()
        model = Word2VecModel(emb, np.zeros_like(emb))
        with pytest.raises(ValueError):
            most_similar(model, vocab, "a0", topn=0)
