import numpy as np
import pytest

from repro.baselines.vertical import VerticalPartitionWord2Vec
from repro.text.synthetic import SyntheticCorpusSpec, generate_corpus
from repro.w2v.params import Word2VecParams
from repro.w2v.shared_memory import SharedMemoryWord2Vec


@pytest.fixture(scope="module")
def corpus():
    spec = SyntheticCorpusSpec(
        num_tokens=5000, pairs_per_family=4, filler_vocab=100, questions_per_family=4
    )
    return generate_corpus(spec, seed=1)[0]


PARAMS = Word2VecParams(
    dim=16, epochs=2, negatives=4, window=3, subsample_threshold=1e-2, batch_pairs=64
)


class TestConstruction:
    def test_requires_sg_ns(self, corpus):
        with pytest.raises(ValueError, match="skipgram"):
            VerticalPartitionWord2Vec(corpus, PARAMS.with_(architecture="cbow"))
        with pytest.raises(ValueError):
            VerticalPartitionWord2Vec(corpus, PARAMS.with_(objective="hierarchical"))

    def test_dim_must_cover_hosts(self, corpus):
        with pytest.raises(ValueError, match="dim"):
            VerticalPartitionWord2Vec(corpus, PARAMS.with_(dim=2), num_hosts=4)

    def test_invalid_hosts(self, corpus):
        with pytest.raises(ValueError):
            VerticalPartitionWord2Vec(corpus, PARAMS, num_hosts=0)


class TestExactness:
    def test_matches_sequential_trainer(self, corpus):
        """Vertical partitioning is an exact re-factoring: no staleness."""
        sequential = SharedMemoryWord2Vec(corpus, PARAMS, seed=9).train()
        vertical = VerticalPartitionWord2Vec(corpus, PARAMS, num_hosts=4, seed=9).train()
        # Same seed tree -> same batches; partial-sum order differs, so
        # allow float tolerance rather than bitwise equality.
        np.testing.assert_allclose(
            vertical.embedding, sequential.embedding, rtol=2e-3, atol=2e-5
        )

    def test_host_count_invariance(self, corpus):
        two = VerticalPartitionWord2Vec(corpus, PARAMS, num_hosts=2, seed=9).train()
        four = VerticalPartitionWord2Vec(corpus, PARAMS, num_hosts=4, seed=9).train()
        np.testing.assert_allclose(two.embedding, four.embedding, rtol=2e-3, atol=2e-5)


class TestNetworkProfile:
    def test_score_volume_independent_of_dim(self, corpus):
        small = VerticalPartitionWord2Vec(
            corpus, PARAMS.with_(dim=8, epochs=1), num_hosts=4, seed=9
        )
        big = VerticalPartitionWord2Vec(
            corpus, PARAMS.with_(dim=64, epochs=1), num_hosts=4, seed=9
        )
        small.train()
        big.train()
        assert (
            small.network.stats.bytes_by_phase["allreduce-scores"]
            == big.network.stats.bytes_by_phase["allreduce-scores"]
        )

    def test_communicates_every_batch(self, corpus):
        trainer = VerticalPartitionWord2Vec(
            corpus, PARAMS.with_(epochs=1), num_hosts=3, seed=9
        )
        trainer.train()
        assert trainer.batches_processed > 0
        phases = trainer.network.stats.messages_by_phase
        # One allreduce (2 msgs/host) + index broadcast per batch.
        assert phases["allreduce-scores"] == trainer.batches_processed * 2 * 3
        assert phases["indices"] == trainer.batches_processed * 2

    def test_per_host_memory_shrinks_with_hosts(self, corpus):
        m2 = VerticalPartitionWord2Vec(corpus, PARAMS, num_hosts=2, seed=9)
        m4 = VerticalPartitionWord2Vec(corpus, PARAMS, num_hosts=4, seed=9)
        assert m4.per_host_memory_bytes() < m2.per_host_memory_bytes()
        assert m2.per_host_memory_bytes() == pytest.approx(
            m2.assembled_model().memory_bytes() / 2, rel=0.2
        )
