import networkx as nx
import numpy as np
import pytest

from repro.dgraph.apps.bfs import bfs_levels
from repro.dgraph.apps.kcore import kcore
from repro.dgraph.apps.triangles import count_triangles
from repro.dgraph.dist_graph import DistGraph


def random_digraph(n=25, p=0.12, seed=7):
    rng = np.random.default_rng(seed)
    src, dst = [], []
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                src.append(u)
                dst.append(v)
    return np.array(src), np.array(dst), n


def symmetrize(src, dst):
    return np.concatenate([src, dst]), np.concatenate([dst, src])


class TestBFS:
    @pytest.mark.parametrize("hosts", [1, 3])
    def test_matches_networkx(self, hosts):
        src, dst, n = random_digraph()
        dg = DistGraph.build(src, dst, n, hosts)
        got = bfs_levels(dg, source=0)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        g.add_edges_from(zip(src.tolist(), dst.tolist()))
        expected = nx.single_source_shortest_path_length(g, 0)
        for node in range(n):
            if node in expected:
                assert got[node] == expected[node]
            else:
                assert got[node] == np.inf

    def test_source_zero_level(self):
        dg = DistGraph.build(np.array([0]), np.array([1]), 3, 2)
        got = bfs_levels(dg, source=1)
        assert got[1] == 0.0
        assert got[0] == np.inf

    def test_invalid_source(self):
        dg = DistGraph.build(np.array([0]), np.array([1]), 2, 1)
        with pytest.raises(ValueError):
            bfs_levels(dg, source=9)


class TestKCore:
    @pytest.mark.parametrize("hosts", [1, 3])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_networkx(self, hosts, k):
        src, dst, n = random_digraph(seed=2)
        s, d = symmetrize(src, dst)
        dg = DistGraph.build(s, d, n, hosts)
        got = kcore(dg, k)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(zip(src.tolist(), dst.tolist()))
        g.remove_edges_from(nx.selfloop_edges(g))
        core_numbers = nx.core_number(g)
        for node in range(n):
            assert got[node] == (core_numbers[node] >= k), f"node {node} k={k}"

    def test_k_zero_keeps_everyone(self):
        dg = DistGraph.build(np.array([0]), np.array([1]), 4, 2)
        assert kcore(dg, 0).all()

    def test_invalid_k(self):
        dg = DistGraph.build(np.array([0]), np.array([1]), 2, 1)
        with pytest.raises(ValueError):
            kcore(dg, -1)

    def test_triangle_is_2core(self):
        src = np.array([0, 1, 2, 3])
        dst = np.array([1, 2, 0, 0])  # triangle 0-1-2 plus pendant 3
        s, d = symmetrize(src, dst)
        dg = DistGraph.build(s, d, 4, 2)
        got = kcore(dg, 2)
        assert got.tolist() == [True, True, True, False]


class TestTriangles:
    @pytest.mark.parametrize("hosts", [1, 2, 4])
    def test_matches_networkx(self, hosts):
        src, dst, n = random_digraph(seed=5, p=0.2)
        s, d = symmetrize(src, dst)
        dg = DistGraph.build(s, d, n, hosts)
        got = count_triangles(dg)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(zip(src.tolist(), dst.tolist()))
        expected = sum(nx.triangles(g).values()) // 3
        assert got == expected

    def test_single_triangle(self):
        src = np.array([0, 1, 2])
        dst = np.array([1, 2, 0])
        s, d = symmetrize(src, dst)
        dg = DistGraph.build(s, d, 3, 2)
        assert count_triangles(dg) == 1

    def test_no_edges(self):
        dg = DistGraph.build(np.empty(0, np.int64), np.empty(0, np.int64), 5, 2)
        assert count_triangles(dg) == 0

    def test_host_count_invariance(self):
        src, dst, n = random_digraph(seed=9, p=0.25)
        s, d = symmetrize(src, dst)
        counts = {
            h: count_triangles(DistGraph.build(s, d, n, h)) for h in (1, 3)
        }
        assert counts[1] == counts[3]
