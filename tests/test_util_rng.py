from hypothesis import given, strategies as st
import numpy as np
import pytest

from repro.util.rng import SeedSequenceTree, default_rng, hash64, spawn_rngs


class TestDefaultRng:
    def test_deterministic_for_same_seed(self):
        assert default_rng(5).integers(1 << 30) == default_rng(5).integers(1 << 30)

    def test_different_seeds_differ(self):
        a = default_rng(1).random(8)
        b = default_rng(2).random(8)
        assert not np.allclose(a, b)

    def test_none_uses_library_default(self):
        assert default_rng().integers(1 << 30) == default_rng(None).integers(1 << 30)


class TestSpawnRngs:
    def test_streams_are_stable_prefixes(self):
        few = spawn_rngs(9, 2)
        many = spawn_rngs(9, 5)
        for a, b in zip(few, many):
            assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_streams_are_distinct(self):
        rngs = spawn_rngs(3, 4)
        draws = [r.random(16).tobytes() for r in rngs]
        assert len(set(draws)) == 4

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count_ok(self):
        assert spawn_rngs(0, 0) == []


class TestSeedSequenceTree:
    def test_child_reproducible(self):
        tree = SeedSequenceTree(42)
        a = tree.child("pairs", 3).random(4)
        b = SeedSequenceTree(42).child("pairs", 3).random(4)
        assert np.array_equal(a, b)

    def test_children_distinct_by_name_and_index(self):
        tree = SeedSequenceTree(42)
        draws = {
            tree.child("a", 0).integers(1 << 40),
            tree.child("a", 1).integers(1 << 40),
            tree.child("b", 0).integers(1 << 40),
        }
        assert len(draws) == 3

    def test_subtrees_do_not_collide(self):
        tree = SeedSequenceTree(7)
        x = tree.subtree("epoch", 0).child("shuffle", 1).integers(1 << 40)
        y = tree.subtree("epoch", 1).child("shuffle", 1).integers(1 << 40)
        z = tree.child("shuffle", 1).integers(1 << 40)
        assert len({x, y, z}) == 3

    def test_children_list(self):
        tree = SeedSequenceTree(7)
        rngs = tree.children("hosts", 3)
        assert len(rngs) == 3
        assert rngs[1].integers(1 << 40) == tree.child("hosts", 1).integers(1 << 40)


class TestHash64:
    def test_known_fnv_vector(self):
        # FNV-1a 64-bit of empty string is the offset basis.
        assert hash64("") == 0xCBF29CE484222325

    def test_stability(self):
        assert hash64("fox") == hash64("fox")

    def test_distinct_words(self):
        assert hash64("fox") != hash64("dog")

    @given(st.text(max_size=30))
    def test_range(self, text):
        assert 0 <= hash64(text) < 2**64

    @given(st.text(max_size=30), st.text(max_size=30))
    def test_deterministic_property(self, a, b):
        if a == b:
            assert hash64(a) == hash64(b)
