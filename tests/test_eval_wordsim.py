import numpy as np
import pytest

from repro.eval.wordsim import (
    SimilarityPair,
    build_planted_similarity,
    evaluate_similarity,
)
from repro.text.synthetic import SyntheticCorpusSpec, default_families, generate_corpus
from repro.text.vocab import Vocabulary
from repro.w2v.params import Word2VecParams
from repro.w2v.shared_memory import SharedMemoryWord2Vec


class TestBuildPlantedSimilarity:
    def test_levels_present(self):
        pairs = build_planted_similarity(default_families(4), pairs_per_level=10)
        golds = {p.gold for p in pairs}
        assert golds == {0.0, 1.0, 2.0, 3.0}

    def test_deterministic(self):
        fams = default_families(4)
        a = build_planted_similarity(fams, seed=3)
        b = build_planted_similarity(fams, seed=3)
        assert a == b

    def test_words_come_from_families(self):
        fams = default_families(3)
        vocab_words = {w for f in fams for p in f.pairs for w in p}
        for pair in build_planted_similarity(fams, pairs_per_level=5):
            assert pair.word_a in vocab_words
            assert pair.word_b in vocab_words

    def test_empty_families_rejected(self):
        with pytest.raises(ValueError):
            build_planted_similarity(())


class TestEvaluateSimilarity:
    def test_perfect_embedding_scores_high(self):
        # Construct an embedding whose cosines increase with gold level.
        words = ["a", "b", "c", "d"]
        vocab = Vocabulary({w: 1 for w in words})
        emb = np.eye(4, dtype=np.float32)
        emb[vocab.id_of("b")] = emb[vocab.id_of("a")]  # identical: cos 1
        pairs = [
            SimilarityPair("a", "b", 3.0),
            SimilarityPair("a", "c", 1.0),
            SimilarityPair("c", "d", 0.0),
        ]
        emb[vocab.id_of("c")] = 0.5 * emb[vocab.id_of("a")] + np.array(
            [0, 0.8, 0, 0], dtype=np.float32
        )
        rho = evaluate_similarity(emb, vocab, pairs)
        assert rho > 0.8

    def test_oov_skipped_and_too_few_rejected(self):
        vocab = Vocabulary({"a": 1, "b": 1})
        emb = np.eye(2, dtype=np.float32)
        pairs = [
            SimilarityPair("a", "zzz", 1.0),
            SimilarityPair("a", "b", 2.0),
        ]
        with pytest.raises(ValueError, match="usable pairs"):
            evaluate_similarity(emb, vocab, pairs)

    def test_trained_model_correlates(self):
        spec = SyntheticCorpusSpec(
            num_tokens=20_000, pairs_per_family=6, filler_vocab=200
        )
        corpus, _ = generate_corpus(spec, seed=1)
        params = Word2VecParams(dim=32, epochs=6, negatives=8, subsample_threshold=1e-3)
        model = SharedMemoryWord2Vec(corpus, params, seed=7).train()
        pairs = build_planted_similarity(spec.resolve_families(), pairs_per_level=40)
        rho = evaluate_similarity(model, corpus.vocabulary, pairs)
        assert rho > 0.3, f"trained embedding should track planted similarity, got {rho}"

    def test_random_embedding_near_zero(self):
        fams = default_families(6)
        words = {w for f in fams for p in f.pairs for w in p}
        vocab = Vocabulary({w: 1 for w in words})
        rng = np.random.default_rng(0)
        emb = rng.normal(size=(len(vocab), 16)).astype(np.float32)
        pairs = build_planted_similarity(fams, pairs_per_level=60)
        rho = evaluate_similarity(emb, vocab, pairs)
        assert abs(rho) < 0.25
