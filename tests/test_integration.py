"""Cross-module integration tests.

These exercise whole pipelines — corpus -> distributed training -> canonical
model -> evaluation — and the semantic invariants that tie the subsystems
together (plan equivalence, host-sharding conservation, learning on planted
structure, divergence at oversized learning rates).
"""

import numpy as np
import pytest

from repro.baselines.sgns_reference import GensimStyleWord2Vec, Word2VecCReference
from repro.eval.analogy import evaluate_analogies
from repro.eval.similarity import most_similar
from repro.text.synthetic import SyntheticCorpusSpec, generate_corpus
from repro.w2v.distributed import GraphWord2Vec
from repro.w2v.params import Word2VecParams
from repro.w2v.shared_memory import SharedMemoryWord2Vec


@pytest.fixture(scope="module")
def data():
    spec = SyntheticCorpusSpec(
        num_tokens=20_000,
        pairs_per_family=6,
        filler_vocab=200,
        questions_per_family=10,
    )
    return generate_corpus(spec, seed=1)


PARAMS = Word2VecParams(dim=32, epochs=6, negatives=8, subsample_threshold=1e-3)


class TestLearningOnPlantedStructure:
    def test_sequential_learns_analogies(self, data):
        corpus, questions = data
        model = SharedMemoryWord2Vec(corpus, PARAMS, seed=7).train()
        acc = evaluate_analogies(model, corpus.vocabulary, questions)
        assert acc.total > 0.25, f"sequential SGNS failed to learn: {acc}"
        assert acc.semantic > 0.0 and acc.syntactic > 0.0

    def test_distributed_mc_learns_analogies(self, data):
        corpus, questions = data
        result = GraphWord2Vec(corpus, PARAMS, num_hosts=8, combiner="mc", seed=7).train()
        acc = evaluate_analogies(result.model, corpus.vocabulary, questions)
        assert acc.total > 0.15, f"distributed MC failed to learn: {acc}"

    def test_pair_words_become_neighbors(self, data):
        corpus, _ = data
        model = SharedMemoryWord2Vec(corpus, PARAMS, seed=7).train()
        # Planted pair (country00, capital00) should be mutually close:
        # capital00 within the top quarter of country00's neighbor list.
        neighbors = [
            w for w, _ in most_similar(model, corpus.vocabulary, "country00",
                                       topn=len(corpus.vocabulary) // 4)
        ]
        assert "capital00" in neighbors

    def test_mc_beats_avg_at_same_learning_rate(self, data):
        corpus, questions = data
        mc = GraphWord2Vec(corpus, PARAMS, num_hosts=8, combiner="mc", seed=7).train()
        avg = GraphWord2Vec(corpus, PARAMS, num_hosts=8, combiner="avg", seed=7).train()
        acc_mc = evaluate_analogies(mc.model, corpus.vocabulary, questions)
        acc_avg = evaluate_analogies(avg.model, corpus.vocabulary, questions)
        assert acc_mc.total >= acc_avg.total - 0.02, (
            f"MC {acc_mc.total:.1%} should not trail AVG {acc_avg.total:.1%}"
        )

    def test_oversized_learning_rate_diverges_sequentially(self, data):
        corpus, questions = data
        params = PARAMS.with_(learning_rate=0.8, epochs=3)
        with np.errstate(over="ignore", invalid="ignore"):
            model = SharedMemoryWord2Vec(corpus, params, seed=7).train()
        acc = evaluate_analogies(model, corpus.vocabulary, questions)
        assert acc.total < 0.05, "lr=0.8 should diverge"


class TestCrossSystemConsistency:
    def test_all_trainers_accept_same_inputs(self, data):
        corpus, _ = data
        fast = PARAMS.with_(epochs=1)
        for trainer in (
            SharedMemoryWord2Vec(corpus, fast, seed=1),
            Word2VecCReference(corpus, fast, seed=1),
            GensimStyleWord2Vec(corpus, fast, seed=1),
            GraphWord2Vec(corpus, fast, num_hosts=2, seed=1),
        ):
            model = trainer.train()
            model = model.model if hasattr(model, "model") else model
            assert model.vocab_size == len(corpus.vocabulary)
            assert np.isfinite(model.embedding).all()

    def test_plan_equivalence_end_to_end(self, data):
        corpus, _ = data
        fast = PARAMS.with_(epochs=2)
        results = {
            plan: GraphWord2Vec(corpus, fast, num_hosts=4, plan=plan, seed=9).train()
            for plan in ("opt", "naive", "pull")
        }
        assert results["opt"].model == results["naive"].model == results["pull"].model
        volumes = {p: r.report.comm_bytes for p, r in results.items()}
        assert volumes["naive"] > volumes["opt"]

    def test_sync_frequency_tradeoff_is_visible(self, data):
        """More rounds => more communication events; same total work."""
        corpus, _ = data
        fast = PARAMS.with_(epochs=1)
        lo = GraphWord2Vec(corpus, fast, num_hosts=4, sync_rounds_per_epoch=2, seed=1).train()
        hi = GraphWord2Vec(corpus, fast, num_hosts=4, sync_rounds_per_epoch=16, seed=1).train()
        assert hi.report.comm_messages > lo.report.comm_messages
        assert hi.epoch_pairs[0] == pytest.approx(lo.epoch_pairs[0], rel=0.05)

    def test_hogwild_batch_granularity_changes_little(self, data):
        """batch_pairs is a Hogwild staleness knob, not a semantics knob."""
        corpus, questions = data
        small = SharedMemoryWord2Vec(corpus, PARAMS.with_(batch_pairs=64), seed=7).train()
        large = SharedMemoryWord2Vec(corpus, PARAMS.with_(batch_pairs=1024), seed=7).train()
        acc_small = evaluate_analogies(small, corpus.vocabulary, questions)
        acc_large = evaluate_analogies(large, corpus.vocabulary, questions)
        assert abs(acc_small.total - acc_large.total) < 0.25
