from hypothesis import given, settings, strategies as st
import numpy as np
import pytest

from repro.dgraph.graph import Graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges([0, 0, 1], [1, 2, 2], num_nodes=3)
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert sorted(g.out_neighbors(0).tolist()) == [1, 2]
        assert g.out_neighbors(2).tolist() == []

    def test_symmetric(self):
        g = Graph.from_edges([0], [1], num_nodes=2, symmetric=True)
        assert g.num_edges == 2
        assert g.out_neighbors(1).tolist() == [0]

    def test_edge_data_preserved(self):
        g = Graph.from_edges([1, 0], [0, 1], num_nodes=2, edge_data=np.array([5.0, 7.0]))
        assert g.out_edge_data(0).tolist() == [7.0]
        assert g.out_edge_data(1).tolist() == [5.0]

    def test_symmetric_duplicates_edge_data(self):
        g = Graph.from_edges([0], [1], num_nodes=2, edge_data=np.array([3.0]), symmetric=True)
        assert g.out_edge_data(0).tolist() == [3.0]
        assert g.out_edge_data(1).tolist() == [3.0]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges([0], [3], num_nodes=3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Graph.from_edges([0, 1], [1], num_nodes=2)

    def test_invalid_indptr(self):
        with pytest.raises(ValueError):
            Graph(np.array([1, 2]), np.array([0]))
        with pytest.raises(ValueError):
            Graph(np.array([0, 2]), np.array([0]))

    def test_no_edge_data_access(self):
        g = Graph.from_edges([0], [1], num_nodes=2)
        with pytest.raises(ValueError, match="no edge data"):
            g.out_edge_data(0)


class TestQueries:
    def test_out_degree(self):
        g = Graph.from_edges([0, 0, 2], [1, 2, 0], num_nodes=3)
        assert g.out_degree().tolist() == [2, 0, 1]
        assert g.out_degree(0) == 2

    def test_edge_slices_matches_naive(self):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 10, size=40)
        dst = rng.integers(0, 10, size=40)
        w = rng.random(40)
        g = Graph.from_edges(src, dst, 10, edge_data=w)
        nodes = np.array([2, 5, 5, 9])
        srcs, dsts, data = g.edge_slices(nodes)
        expected_src, expected_dst, expected_w = [], [], []
        for n in nodes:
            expected_src.extend([n] * g.out_degree(int(n)))
            expected_dst.extend(g.out_neighbors(int(n)).tolist())
            expected_w.extend(g.out_edge_data(int(n)).tolist())
        assert srcs.tolist() == expected_src
        assert dsts.tolist() == expected_dst
        assert data.tolist() == expected_w

    def test_edge_slices_empty(self):
        g = Graph.from_edges([0], [1], num_nodes=3)
        srcs, dsts, _ = g.edge_slices(np.array([2]))
        assert srcs.size == 0 and dsts.size == 0


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=15), st.integers(0, 2**16))
def test_csr_roundtrip(num_nodes, seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(0, 40))
    src = rng.integers(0, num_nodes, size=m)
    dst = rng.integers(0, num_nodes, size=m)
    g = Graph.from_edges(src, dst, num_nodes)
    rebuilt = sorted(
        (int(u), int(v))
        for u in range(num_nodes)
        for v in g.out_neighbors(u)
    )
    assert rebuilt == sorted(zip(src.tolist(), dst.tolist()))
