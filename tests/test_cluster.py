import math

import numpy as np
import pytest

from repro.cluster.metrics import ClusterMetrics, TimeBreakdown
from repro.cluster.network import INFINIBAND_56G, NetworkModel
from repro.cluster.simulator import DistributedRunReport
from repro.gluon.comm import PhaseRecord, SimulatedNetwork


class TestNetworkModel:
    def test_phase_time_formula(self):
        model = NetworkModel(latency_s=1e-3, bandwidth_Bps=1e6)
        record = PhaseRecord(name="x", num_hosts=4)
        record.sent[0] = 2_000_000
        record.recv[1] = 2_000_000
        record.messages = 1
        expected = 1e-3 * math.ceil(math.log2(4)) + 2_000_000 / 1e6
        assert model.phase_time(record) == pytest.approx(expected)

    def test_empty_phase_free(self):
        model = NetworkModel()
        record = PhaseRecord(name="x", num_hosts=8)
        assert model.phase_time(record) == 0.0

    def test_two_host_latency_depth_one(self):
        model = NetworkModel(latency_s=1.0, bandwidth_Bps=1e12)
        record = PhaseRecord(name="x", num_hosts=2)
        record.sent[0] = 1
        record.recv[1] = 1
        record.messages = 1
        assert model.phase_time(record) == pytest.approx(1.0, abs=1e-6)

    def test_total_time_sums(self):
        model = NetworkModel(latency_s=0.0, bandwidth_Bps=1.0)
        records = []
        for volume in (10, 20):
            r = PhaseRecord(name="p", num_hosts=2)
            r.sent[0] = volume
            r.recv[1] = volume
            r.messages = 1
            records.append(r)
        assert model.total_time(records) == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_Bps=0)

    def test_infiniband_preset_faster_than_default(self):
        record = PhaseRecord(name="x", num_hosts=2)
        record.sent[0] = 10**9
        record.recv[1] = 10**9
        record.messages = 1
        assert INFINIBAND_56G.phase_time(record) < NetworkModel().phase_time(record)


class TestTimeBreakdown:
    def test_total(self):
        b = TimeBreakdown(compute_s=1.0, communication_s=2.0, inspection_s=0.5)
        assert b.total_s == pytest.approx(3.5)

    def test_total_includes_recovery(self):
        b = TimeBreakdown(compute_s=1.0, communication_s=2.0, inspection_s=0.5, recovery_s=0.25)
        assert b.total_s == pytest.approx(3.75)

    def test_add(self):
        a = TimeBreakdown(1.0, 2.0, 3.0)
        b = TimeBreakdown(0.5, 0.5, 0.5)
        c = a + b
        assert (c.compute_s, c.communication_s, c.inspection_s) == (1.5, 2.5, 3.5)

    def test_add_carries_recovery(self):
        c = TimeBreakdown(recovery_s=1.0) + TimeBreakdown(recovery_s=0.5)
        assert c.recovery_s == pytest.approx(1.5)

    def test_recovery_defaults_to_zero(self):
        # Fault-free breakdowns must be unchanged by the recovery field.
        assert TimeBreakdown(1.0, 2.0, 0.5).recovery_s == 0.0


class TestClusterMetrics:
    def test_round_max_semantics(self):
        m = ClusterMetrics(3)
        m.begin_round()
        m.record_compute(0, 1.0)
        m.record_compute(1, 3.0)
        m.record_compute(2, 2.0)
        m.end_round()
        m.begin_round()
        m.record_compute(0, 5.0)
        m.end_round()
        assert m.modeled_compute_s() == pytest.approx(8.0)  # 3 + 5
        assert m.sequential_compute_s() == pytest.approx(11.0)
        assert m.num_rounds == 2

    def test_inspection_tracked_separately(self):
        m = ClusterMetrics(2)
        m.begin_round()
        m.record_inspection(0, 0.5)
        m.record_compute(0, 1.0)
        m.end_round()
        assert m.modeled_inspection_s() == pytest.approx(0.5)
        assert m.modeled_compute_s() == pytest.approx(1.0)

    def test_per_host(self):
        m = ClusterMetrics(2)
        m.begin_round()
        m.record_compute(0, 1.0)
        m.record_compute(1, 2.0)
        m.end_round()
        assert m.per_host_compute_s().tolist() == [1.0, 2.0]

    def test_lifecycle_errors(self):
        m = ClusterMetrics(2)
        with pytest.raises(RuntimeError):
            m.end_round()
        with pytest.raises(RuntimeError):
            m.record_compute(0, 1.0)
        m.begin_round()
        with pytest.raises(RuntimeError):
            m.begin_round()
        with pytest.raises(ValueError):
            m.record_compute(0, -1.0)
        with pytest.raises(ValueError):
            m.record_recovery(0, -1.0)
        m.end_round()
        with pytest.raises(RuntimeError):
            m.record_recovery(0, 1.0)

    def test_recovery_round_max_semantics(self):
        m = ClusterMetrics(3)
        m.begin_round()
        m.record_recovery(0, 1.0)
        m.record_recovery(1, 3.0)
        m.end_round()
        m.begin_round()
        m.record_recovery(2, 2.0)
        m.end_round()
        assert m.modeled_recovery_s() == pytest.approx(5.0)  # 3 + 2
        assert m.modeled_compute_s() == 0.0

    def test_public_round_accessors_are_readonly_views(self):
        m = ClusterMetrics(2)
        m.begin_round()
        m.record_compute(0, 1.0)
        m.record_inspection(1, 0.5)
        m.record_recovery(0, 0.25)
        m.end_round()
        for rounds, expect in (
            (m.compute_rounds, [1.0, 0.0]),
            (m.inspection_rounds, [0.0, 0.5]),
            (m.recovery_rounds, [0.25, 0.0]),
        ):
            assert len(rounds) == 1
            assert rounds[0].tolist() == expect
            assert not rounds[0].flags.writeable
            with pytest.raises(ValueError):
                rounds[0][0] = 9.0

    def test_accessors_agree_with_aggregates(self):
        m = ClusterMetrics(2)
        for compute in ([1.0, 2.0], [4.0, 3.0]):
            m.begin_round()
            for host, sec in enumerate(compute):
                m.record_compute(host, sec)
            m.end_round()
        assert m.modeled_compute_s() == pytest.approx(
            sum(r.max() for r in m.compute_rounds)
        )
        assert m.sequential_compute_s() == pytest.approx(
            sum(r.sum() for r in m.compute_rounds)
        )


class TestStragglerAccounting:
    """With heterogeneous hosts each round prices at the slowest host."""

    def test_host_speed_factors_round_max(self):
        from repro.text.synthetic import SyntheticCorpusSpec, generate_corpus
        from repro.w2v.distributed import GraphWord2Vec
        from repro.w2v.params import Word2VecParams

        spec = SyntheticCorpusSpec(
            num_tokens=2000, pairs_per_family=3, filler_vocab=60, questions_per_family=3
        )
        corpus = generate_corpus(spec, seed=1)[0]
        params = Word2VecParams(dim=8, epochs=1, negatives=3, window=3)
        factors = [1.0, 4.0, 1.5]
        trainer = GraphWord2Vec(
            corpus, params, num_hosts=3, seed=5, host_speed_factors=factors
        )
        result = trainer.train()
        rounds = trainer.metrics.compute_rounds
        assert len(rounds) == trainer.sync_rounds
        # Each round's modeled compute is the per-round max over hosts...
        per_round_max = [float(r.max()) for r in rounds]
        assert trainer.metrics.modeled_compute_s() == pytest.approx(sum(per_round_max))
        # ...and the breakdown's buckets add up to the total.
        b = result.report.breakdown
        assert b.total_s == pytest.approx(
            b.compute_s + b.communication_s + b.inspection_s + b.recovery_s + b.wait_s
        )
        # Busy compute + barrier wait spans the compute critical path: the
        # heterogeneous factors make the wait bucket strictly positive.
        assert b.compute_s == pytest.approx(trainer.metrics.modeled_busy_s())
        assert b.compute_s + b.wait_s == pytest.approx(
            trainer.metrics.modeled_compute_s()
        )
        assert b.wait_s > 0.0
        assert b.recovery_s == 0.0

    def test_scheduled_straggler_stretches_round_max(self):
        from repro.cluster.faults import FaultConfig
        from repro.text.synthetic import SyntheticCorpusSpec, generate_corpus
        from repro.w2v.distributed import GraphWord2Vec
        from repro.w2v.params import Word2VecParams

        spec = SyntheticCorpusSpec(
            num_tokens=2000, pairs_per_family=3, filler_vocab=60, questions_per_family=3
        )
        corpus = generate_corpus(spec, seed=1)[0]
        params = Word2VecParams(dim=8, epochs=1, negatives=3, window=3)
        faulty = GraphWord2Vec(
            corpus, params, num_hosts=3, seed=5,
            faults=FaultConfig(straggler_prob=0.5, straggler_factor=(3.0, 3.0)),
        )
        result = faulty.train()
        faults = result.report.faults
        assert faults.straggler_rounds > 0
        schedule = faulty.fault_schedule
        # Recorded times are measured * factor; dividing the factor back out
        # recovers the un-straggled round max, and the report's extra_s is
        # exactly the sum of the per-round differences.
        extra = 0.0
        for s, recorded in enumerate(faulty.metrics.compute_rounds):
            factors = np.array([schedule.straggler_factor(0, s, h) for h in range(3)])
            extra += float(recorded.max() - (recorded / factors).max())
        assert faults.straggler_extra_s == pytest.approx(extra, rel=1e-9)


class TestDistributedRunReport:
    def test_build_groups_phases(self):
        metrics = ClusterMetrics(2)
        metrics.begin_round()
        metrics.record_compute(0, 1.0)
        metrics.end_round()
        net = SimulatedNetwork(2)
        with net.phase("reduce:embedding"):
            net.send(0, 1, 100)
        with net.phase("reduce:training"):
            net.send(0, 1, 100)
        with net.phase("broadcast:embedding"):
            net.send(1, 0, 50)
        report = DistributedRunReport.build(
            num_hosts=2,
            sync_rounds_per_epoch=3,
            epochs=1,
            plan="RepModel-Opt",
            combiner="mc",
            metrics=metrics,
            network=net,
            model=NetworkModel(),
        )
        assert set(report.bytes_by_phase) == {"reduce", "broadcast"}
        assert report.bytes_by_phase["reduce"] == 232  # 2 x (100 + 16 header)
        assert report.total_time_s > 0
        assert report.comm_messages == 3
